"""Program sampling and execution (paper Section IV-C).

Given a template and a fresh table, the sampler randomly populates
column-placeholders from the table's columns (respecting declared data
types) and value-placeholders from the chosen columns' cells, executes
the program, and discards invalid instantiations.  For logical forms the
labeler then produces balanced Supported/Refuted claims by either
filling the result slot with the true execution result or corrupting it.
"""

from repro.sampling.sampler import ProgramSampler, SampledProgram
from repro.sampling.filters import SampleFilter, default_filters
from repro.sampling.labeler import ClaimLabel, ClaimLabeler, LabeledClaim

__all__ = [
    "ProgramSampler",
    "SampledProgram",
    "SampleFilter",
    "default_filters",
    "ClaimLabel",
    "ClaimLabeler",
    "LabeledClaim",
]
