"""The random program sampler."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import profiling
from repro.errors import ReproError, SamplingError
from repro.programs.base import ExecutionResult, Program, ProgramKind, parse_program
from repro.rng import choice, sample_up_to
from repro.tables.table import Table
from repro.tables.values import Value, ValueType, format_number
from repro.templates.template import (
    Placeholder,
    PlaceholderKind,
    ProgramTemplate,
)

#: Sentinel filled into a result slot before the true result is known.
RESULT_SENTINEL = "__result__"

#: Characters that would break program syntax if they appeared in a value.
_FORBIDDEN_IN_VALUE = set("{};()'\"")


@dataclass(frozen=True)
class SampledProgram:
    """A concrete program instantiated from a template on a table.

    ``result`` is its execution outcome on that table; ``bindings`` maps
    placeholder names to the chosen surface strings (the evidence the
    paper notes is "exactly the evidence associated with the synthetic
    instance").
    """

    template: ProgramTemplate
    program: Program
    bindings: dict[str, str]
    result: ExecutionResult
    table: Table = field(repr=False, compare=False, default=None)

    @property
    def kind(self) -> ProgramKind:
        return self.template.kind

    @property
    def answer(self) -> list[str]:
        return self.result.denotation()


class ProgramSampler:
    """Instantiates templates on tables via random sampling.

    The strategy follows the paper exactly: first populate
    column-placeholders by sampling the table's columns (type-aware),
    then populate each value-placeholder from its column's cells.
    Result slots of logical forms are resolved by executing the
    enclosing predicate's first argument.
    """

    def __init__(self, rng: random.Random, max_attempts: int = 8):
        self._rng = rng
        self._max_attempts = max_attempts

    # -- public API ---------------------------------------------------------
    def sample(
        self, template: ProgramTemplate, table: Table
    ) -> SampledProgram:
        """One instantiation attempt; raises :class:`SamplingError` on failure."""
        last_error: Exception | None = None
        for _ in range(self._max_attempts):
            try:
                return self._try_once(template, table)
            except ReproError as error:
                last_error = error
        raise SamplingError(
            f"could not instantiate template {template.pattern!r} on table "
            f"{table.title!r}: {last_error}"
        )

    def try_sample(
        self, template: ProgramTemplate, table: Table
    ) -> SampledProgram | None:
        """Like :meth:`sample` but returns ``None`` instead of raising."""
        try:
            return self.sample(template, table)
        except ReproError:
            return None

    # -- internals ----------------------------------------------------------
    def _try_once(self, template: ProgramTemplate, table: Table) -> SampledProgram:
        bindings = self.bind_placeholders(template, table)
        result_slot = template.meta.get("result_slot")
        if result_slot is not None:
            bindings[result_slot] = RESULT_SENTINEL
        source = template.substitute(
            self._render_bindings(template, bindings)
        )
        program = parse_program(source, template.kind)
        if result_slot is not None:
            true_value = self._resolve_result(program, table)
            bindings[result_slot] = true_value
            source = template.substitute(
                self._render_bindings(template, bindings)
            )
            program = parse_program(source, template.kind)
        with profiling.stage("executor"):
            result = program.execute(table).require_non_empty()
        return SampledProgram(
            template=template,
            program=program,
            bindings=bindings,
            result=result,
            table=table,
        )

    def bind_placeholders(
        self, template: ProgramTemplate, table: Table
    ) -> dict[str, str]:
        """Random placeholder bindings (without result-slot resolution)."""
        bindings: dict[str, str] = {}
        result_slot = template.meta.get("result_slot")
        self._bind_columns(template, table, bindings)
        for placeholder in template.placeholders:
            if placeholder.name == result_slot:
                continue
            if placeholder.kind is PlaceholderKind.VALUE:
                bindings[placeholder.name] = self._pick_value(
                    table, bindings, placeholder, exclude=set(bindings.values())
                )
            elif placeholder.kind is PlaceholderKind.ROWNAME:
                bindings[placeholder.name] = self._pick_rowname(
                    table, exclude=set(bindings.values())
                )
            elif placeholder.kind is PlaceholderKind.ORDINAL:
                upper = max(1, min(5, table.n_rows))
                bindings[placeholder.name] = str(self._rng.randint(1, upper))
        return bindings

    def _bind_columns(
        self,
        template: ProgramTemplate,
        table: Table,
        bindings: dict[str, str],
    ) -> None:
        column_placeholders = template.column_placeholders
        chosen: set[str] = set()
        for placeholder in column_placeholders:
            candidates = self._column_candidates(table, placeholder, chosen)
            if not candidates:
                raise SamplingError(
                    f"no column of type {placeholder.value_type} available "
                    f"for {placeholder.name}"
                )
            name = choice(self._rng, candidates)
            bindings[placeholder.name] = name
            chosen.add(name)

    def _column_candidates(
        self, table: Table, placeholder: Placeholder, used: set[str]
    ) -> list[str]:
        names: list[str] = []
        for column in table.schema:
            if column.name in used:
                continue
            if placeholder.value_type is not None and column.type is not placeholder.value_type:
                continue
            if _is_clean(column.name):
                names.append(column.name)
        return names

    def _pick_value(
        self,
        table: Table,
        bindings: dict[str, str],
        placeholder: Placeholder,
        exclude: set[str],
    ) -> str:
        column = bindings.get(placeholder.column_ref or "")
        if column is None:
            raise SamplingError(
                f"value placeholder {placeholder.name} has unbound column "
                f"{placeholder.column_ref}"
            )
        candidates = [
            value.raw.strip()
            for value in table.distinct_values(column)
            if _is_clean(value.raw)
        ]
        fresh = [value for value in candidates if value not in exclude]
        pool = fresh or candidates
        if not pool:
            raise SamplingError(f"column {column!r} has no usable values")
        return choice(self._rng, pool)

    def _pick_rowname(self, table: Table, exclude: set[str]) -> str:
        names = [
            name
            for name in table.row_names()
            if _is_clean(name) and " of " not in name
        ]
        fresh = [name for name in names if name not in exclude]
        pool = fresh or names
        if not pool:
            raise SamplingError("table has no usable row names")
        return choice(self._rng, pool)

    def _render_bindings(
        self, template: ProgramTemplate, bindings: dict[str, str]
    ) -> dict[str, str]:
        """Quote bindings as required by the template's syntax."""
        rendered: dict[str, str] = {}
        for placeholder in template.placeholders:
            raw = bindings[placeholder.name]
            if template.kind is ProgramKind.SQL:
                rendered[placeholder.name] = self._render_sql(placeholder, raw)
            else:
                rendered[placeholder.name] = raw
        return rendered

    @staticmethod
    def _render_sql(placeholder: Placeholder, raw: str) -> str:
        if placeholder.kind is PlaceholderKind.COLUMN:
            return f"[{raw}]"
        if placeholder.kind in (PlaceholderKind.VALUE, PlaceholderKind.ROWNAME):
            from repro.tables.values import coerce_number

            if coerce_number(raw) is not None:
                return raw
            escaped = raw.replace("'", "''")
            return f"'{escaped}'"
        return raw

    def _resolve_result(self, program: Program, table: Table) -> str:
        """Execute the expression compared against a result sentinel."""
        from repro.programs.logic.parser import LogicNode, LogicProgram

        if not isinstance(program, LogicProgram):
            raise SamplingError("result slots are only valid in logical forms")
        target: LogicNode | None = None
        for node in program.root.walk():
            if (
                len(node.args) == 2
                and isinstance(node.args[1], str)
                and node.args[1].strip() == RESULT_SENTINEL
            ):
                target = node
                break
        if target is None:
            raise SamplingError("result sentinel not found in logical form")
        sub = target.args[0]
        if not isinstance(sub, LogicNode):
            raise SamplingError("result slot must compare against an expression")
        from repro.programs.logic.executor import execute_logic

        with profiling.stage("executor"):
            outcome = execute_logic(table, sub).require_non_empty()
        value = outcome.single
        if value.is_number:
            return format_number(value.as_number())
        return value.raw


def _is_clean(text: str) -> bool:
    """A value string that can be substituted into any DSL safely."""
    stripped = text.strip()
    if not stripped or len(stripped) > 64:
        return False
    return not (_FORBIDDEN_IN_VALUE & set(stripped))


def sample_many(
    sampler: ProgramSampler,
    templates: list[ProgramTemplate],
    table: Table,
    budget: int,
    rng: random.Random,
) -> list[SampledProgram]:
    """Draw up to ``budget`` valid sampled programs from random templates."""
    out: list[SampledProgram] = []
    if not templates:
        return out
    order = sample_up_to(rng, templates, len(templates))
    index = 0
    attempts = 0
    while len(out) < budget and attempts < budget * 4:
        template = order[index % len(order)]
        index += 1
        attempts += 1
        sampled = sampler.try_sample(template, table)
        if sampled is not None:
            out.append(sampled)
    return out
