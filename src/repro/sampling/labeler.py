"""Claim labeling: balanced Supported / Refuted synthesis.

The paper determines the root predicate's second argument from the
execution result "to obtain a true/false claim" (Section IV-C).  The
labeler implements both directions:

* **Supported** — keep the sampled program, whose result slot was filled
  with the true execution result (or whose execution already returned
  ``True``).
* **Refuted** — corrupt the claim minimally: replace the result-slot
  value with a wrong-but-plausible one from the same column, or swap the
  root operator for its dual (``greater``/``less``, ``most_eq``/
  ``most_not_eq``...), re-executing to certify the new truth value.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

from repro.errors import ReproError, SamplingError
from repro.programs.base import ProgramKind, parse_program
from repro.rng import choice
from repro.sampling.sampler import SampledProgram
from repro.tables.table import Table
from repro.tables.values import Value, format_number
from repro.templates.template import PlaceholderKind


class ClaimLabel(str, Enum):
    SUPPORTED = "supported"
    REFUTED = "refuted"
    UNKNOWN = "unknown"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class LabeledClaim:
    """A logical-form program paired with its certified label."""

    sample: SampledProgram
    label: ClaimLabel

    @property
    def program(self):
        return self.sample.program


class ClaimLabeler:
    """Turns executed logical forms into balanced labeled claims."""

    def __init__(self, rng: random.Random, refute_ratio: float = 0.5):
        if not 0.0 <= refute_ratio <= 1.0:
            raise ValueError("refute_ratio must be in [0, 1]")
        self._rng = rng
        self._refute_ratio = refute_ratio

    def label(self, sample: SampledProgram) -> LabeledClaim:
        """Produce one labeled claim, refuting with ``refute_ratio``."""
        if sample.kind is not ProgramKind.LOGIC:
            raise SamplingError("only logical forms can be labeled as claims")
        want_refuted = self._rng.random() < self._refute_ratio
        if not want_refuted:
            return self._supported(sample)
        refuted = self._refute(sample)
        if refuted is not None:
            return refuted
        return self._supported(sample)

    # -- internals ----------------------------------------------------------
    def _supported(self, sample: SampledProgram) -> LabeledClaim:
        truth = sample.result.truth
        if truth is None:
            raise SamplingError("claim program did not produce a truth value")
        label = ClaimLabel.SUPPORTED if truth else ClaimLabel.REFUTED
        return LabeledClaim(sample=sample, label=label)

    def _refute(self, sample: SampledProgram) -> LabeledClaim | None:
        strategies = [self._corrupt_result_slot, self._corrupt_binding]
        for strategy in strategies:
            try:
                claim = strategy(sample)
            except ReproError:
                claim = None
            if claim is not None:
                return claim
        return None

    def _corrupt_result_slot(self, sample: SampledProgram) -> LabeledClaim | None:
        slot = sample.template.meta.get("result_slot")
        if slot is None:
            return None
        current = sample.bindings[slot]
        replacement = self._wrong_value(sample, slot, current)
        if replacement is None:
            return None
        bindings = dict(sample.bindings)
        bindings[slot] = replacement
        source = sample.template.substitute(bindings)
        program = parse_program(source, ProgramKind.LOGIC)
        result = program.execute(sample.table)
        if result.truth is not False:
            return None  # corruption accidentally stayed true
        corrupted = SampledProgram(
            template=sample.template,
            program=program,
            bindings=bindings,
            result=result,
            table=sample.table,
        )
        return LabeledClaim(sample=corrupted, label=ClaimLabel.REFUTED)

    def _corrupt_binding(self, sample: SampledProgram) -> LabeledClaim | None:
        """Swap one value binding for a same-column distractor.

        Unlike flipping the root operator, this keeps the claim's NL —
        which is rendered *from the bindings* — consistent with the
        corrupted program, so the certified label is sound.
        """
        candidates = [
            placeholder
            for placeholder in sample.template.placeholders
            if placeholder.kind
            in (PlaceholderKind.VALUE, PlaceholderKind.ROWNAME, PlaceholderKind.ORDINAL)
            and placeholder.name != sample.template.meta.get("result_slot")
        ]
        self._rng.shuffle(candidates)
        for placeholder in candidates:
            current = sample.bindings[placeholder.name]
            replacement = self._binding_replacement(sample, placeholder, current)
            if replacement is None:
                continue
            bindings = dict(sample.bindings)
            bindings[placeholder.name] = replacement
            try:
                source = sample.template.substitute(bindings)
                program = parse_program(source, ProgramKind.LOGIC)
                result = program.execute(sample.table)
            except ReproError:
                continue
            if result.truth is not False:
                continue
            corrupted = SampledProgram(
                template=sample.template,
                program=program,
                bindings=bindings,
                result=result,
                table=sample.table,
            )
            return LabeledClaim(sample=corrupted, label=ClaimLabel.REFUTED)
        return None

    def _binding_replacement(
        self, sample: SampledProgram, placeholder, current: str
    ) -> str | None:
        table: Table = sample.table
        if placeholder.kind is PlaceholderKind.ORDINAL:
            upper = max(1, min(5, table.n_rows))
            options = [str(n) for n in range(1, upper + 1) if str(n) != current]
            return choice(self._rng, options) if options else None
        if placeholder.kind is PlaceholderKind.ROWNAME:
            names = [
                table.row_name(index)
                for index in range(table.n_rows)
                if table.row_name(index).strip().lower() != current.strip().lower()
                and _clean(table.row_name(index))
            ]
            return choice(self._rng, names) if names else None
        column = sample.bindings.get(placeholder.column_ref or "")
        if column is None or column not in table.schema:
            return None
        others = [
            value.raw.strip()
            for value in table.distinct_values(column)
            if value.raw.strip().lower() != current.strip().lower()
            and _clean(value.raw)
        ]
        return choice(self._rng, others) if others else None

    def _wrong_value(
        self, sample: SampledProgram, slot: str, current: str
    ) -> str | None:
        """A plausible-but-wrong replacement for the result-slot value."""
        table: Table = sample.table
        placeholder = next(
            (p for p in sample.template.placeholders if p.name == slot), None
        )
        current_value = Value.number(float(current)) if _is_float(current) else None
        if current_value is not None:
            # Perturb numbers: nearby but clearly different.
            base = current_value.as_number()
            delta = max(1.0, abs(base) * (0.1 + 0.4 * self._rng.random()))
            sign = 1 if self._rng.random() < 0.5 else -1
            return format_number(base + sign * delta)
        if placeholder is not None and placeholder.column_ref is not None:
            column = sample.bindings.get(placeholder.column_ref)
            if column is not None and column in table.schema:
                others = [
                    value.raw.strip()
                    for value in table.distinct_values(column)
                    if value.raw.strip().lower() != current.strip().lower()
                    and _clean(value.raw)
                ]
                if others:
                    return choice(self._rng, others)
        return None


def _is_float(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


def _clean(text: str) -> bool:
    return bool(text.strip()) and not (set("{};()'\"") & set(text))
