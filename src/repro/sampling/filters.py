"""Validity filters for sampled programs.

Algorithm 1 discards a program whose answer is empty; production-quality
synthesis needs a few more guards against degenerate instances (answers
that enumerate half the table, claims that are vacuously true because a
filter matched nothing, non-finite numbers).  Each filter is a small
predicate so pipelines can compose their own policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.programs.base import ProgramKind
from repro.sampling.sampler import SampledProgram


@dataclass(frozen=True)
class SampleFilter:
    """A named accept/reject predicate over sampled programs."""

    name: str
    accept: Callable[[SampledProgram], bool]

    def __call__(self, sample: SampledProgram) -> bool:
        return self.accept(sample)


def _non_empty(sample: SampledProgram) -> bool:
    return not sample.result.is_empty


def _bounded_answer(sample: SampledProgram) -> bool:
    return len(sample.result.values) <= 10


def _finite_numbers(sample: SampledProgram) -> bool:
    for value in sample.result.values:
        if value.is_number and not math.isfinite(value.as_number()):
            return False
    return True


def _touches_table(sample: SampledProgram) -> bool:
    """The reasoning must involve at least one table cell."""
    return bool(sample.result.highlighted_cells)


def _not_vacuous(sample: SampledProgram) -> bool:
    """Reject claims whose evidence set is a single cell *and* whose
    program is a multi-row reasoning type (a sign a filter matched
    nothing interesting)."""
    if sample.kind is not ProgramKind.LOGIC:
        return True
    if sample.template.category in ("lookup", "unique"):
        return True
    return len(sample.result.highlighted_cells) >= 2


def _reasonable_magnitude(sample: SampledProgram) -> bool:
    """Numbers beyond 1e12 read as garbage in generated text."""
    for value in sample.result.values:
        if value.is_number and abs(value.as_number()) > 1e12:
            return False
    return True


def default_filters() -> list[SampleFilter]:
    """The standard filter chain applied by all pipelines."""
    return [
        SampleFilter("non_empty", _non_empty),
        SampleFilter("bounded_answer", _bounded_answer),
        SampleFilter("finite_numbers", _finite_numbers),
        SampleFilter("touches_table", _touches_table),
        SampleFilter("not_vacuous", _not_vacuous),
        SampleFilter("reasonable_magnitude", _reasonable_magnitude),
    ]


def passes_all(sample: SampledProgram, filters: list[SampleFilter]) -> bool:
    """Whether ``sample`` survives the whole chain."""
    return all(check(sample) for check in filters)


def first_failure(
    sample: SampledProgram, filters: list[SampleFilter]
) -> str | None:
    """Name of the first filter that rejects ``sample`` (None == passes).

    Telemetry wants the *reason* a sample died, not just the verdict;
    filters run in chain order, so the first failure is the recorded one.
    """
    for check in filters:
        if not check(sample):
            return check.name
    return None
