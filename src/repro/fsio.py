"""Crash-safe filesystem primitives.

Everything the package persists — JSONL corpora, run reports, checkpoint
manifests — goes through the two helpers here so an interrupted process
(SIGKILL, OOM, power loss) can never leave a *partially written* file in
place of a good one.  The recipe is the classic POSIX one: write to a
sibling temp file in the same directory, flush + ``fsync``, then
``os.replace`` onto the destination (atomic on POSIX and on NTFS).

This module deliberately imports nothing from the rest of ``repro`` so
that low-level layers (:mod:`repro.io`, :mod:`repro.telemetry.report`,
:mod:`repro.runtime.checkpoint`) can all use it without import cycles.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

#: read granularity for whole-file digests (files are re-hashed on every
#: verified load, so stream instead of slurping multi-gigabyte corpora).
_DIGEST_CHUNK = 1 << 20


def sha256_file(path: str | Path) -> tuple[str, int]:
    """``(hex digest, byte count)`` of a file's exact on-disk content.

    The digest is over raw bytes (no newline or encoding normalization),
    so any single-byte change — data, separator, or trailing newline —
    changes it.
    """
    digest = hashlib.sha256()
    size = 0
    with Path(path).open("rb") as handle:
        while True:
            chunk = handle.read(_DIGEST_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
            size += len(chunk)
    return digest.hexdigest(), size


def sha256_text(text: str) -> str:
    """Hex SHA-256 of a string's UTF-8 bytes."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fsync_handle(handle: IO[str]) -> None:
    """Flush a text handle and push its bytes to stable storage."""
    handle.flush()
    os.fsync(handle.fileno())


@contextmanager
def atomic_writer(path: str | Path, encoding: str = "utf-8") -> Iterator[IO[str]]:
    """A text handle whose contents appear at ``path`` all-or-nothing.

    The handle writes to ``path + ".tmp"``; on clean exit the temp file
    is fsynced and atomically renamed over ``path``.  On an exception
    the temp file is removed and ``path`` is left exactly as it was —
    including not existing at all.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    handle = tmp.open("w", encoding=encoding)
    try:
        yield handle
        fsync_handle(handle)
    except BaseException:
        handle.close()
        tmp.unlink(missing_ok=True)
        raise
    else:
        handle.close()
        os.replace(tmp, path)


def atomic_write_text(
    path: str | Path, text: str, encoding: str = "utf-8"
) -> Path:
    """Atomically replace ``path`` with ``text``; returns the path."""
    path = Path(path)
    with atomic_writer(path, encoding=encoding) as handle:
        handle.write(text)
    return path


def atomic_write_bytes(path: str | Path, payload: bytes) -> Path:
    """Atomically replace ``path`` with ``payload`` (binary artifacts).

    Same temp-file + fsync + ``os.replace`` recipe as
    :func:`atomic_writer`, for binary payloads such as pickled model
    artifacts in the serving registry.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    handle = tmp.open("wb")
    try:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    except BaseException:
        handle.close()
        tmp.unlink(missing_ok=True)
        raise
    else:
        handle.close()
        os.replace(tmp, path)
    return path
