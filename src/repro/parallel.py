"""Seed-stable multiprocessing executor for the generation engine.

Generation is embarrassingly parallel across contexts *because* of the
determinism contract in :mod:`repro.pipelines.uctr`: context ``i`` draws
only from its own named RNG stream, so any scheduling of contexts onto
processes yields the same samples.  This module supplies the scheduling:

1. contexts are sharded into contiguous index chunks (several per
   worker, so a slow context does not idle the rest of the pool);
2. the fitted :class:`~repro.pipelines.uctr.GenerationState` is pickled
   **once** in the parent and unpickled **once per worker** by the pool
   initializer — spawn-safe, no reliance on fork-inherited globals;
3. each worker runs :func:`~repro.pipelines.uctr.generate_for_one_context`
   per assigned context and returns ``(index, samples)`` pairs plus a
   telemetry snapshot;
4. the parent places results back by context index (chunks may finish
   out of order) and folds worker telemetry into the caller's sink.

When ``workers <= 1``, there is at most one context, or the platform
offers no usable ``multiprocessing`` start method, the executor degrades
to the serial path — same code, same output, no pool.
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Sequence

from repro.pipelines.samples import ReasoningSample
from repro.pipelines.uctr import GenerationState, generate_for_one_context
from repro.tables.context import TableContext
from repro.telemetry import Telemetry

#: chunks handed out per worker; >1 smooths uneven per-context cost.
CHUNKS_PER_WORKER = 4

#: worker-side engine state, set once by :func:`_init_worker`.
_WORKER_STATE: GenerationState | None = None


def pick_start_method() -> str | None:
    """The preferred ``multiprocessing`` start method, or ``None``.

    ``fork`` is cheapest where available (POSIX); ``spawn`` works
    everywhere the state pickles — which :class:`GenerationState`
    guarantees.  ``None`` means the platform supports neither and the
    caller must run serially.
    """
    methods = multiprocessing.get_all_start_methods()
    for preferred in ("fork", "spawn"):
        if preferred in methods:
            return preferred
    return None


def shard_indices(count: int, workers: int) -> list[list[int]]:
    """Contiguous index chunks: ~``CHUNKS_PER_WORKER`` per worker.

    Contiguity keeps merge bookkeeping trivial and preserves whatever
    locality neighbouring contexts have (same synthetic domain, similar
    table shapes).
    """
    if count <= 0:
        return []
    target = max(1, min(count, workers * CHUNKS_PER_WORKER))
    base, extra = divmod(count, target)
    chunks: list[list[int]] = []
    start = 0
    for position in range(target):
        size = base + (1 if position < extra else 0)
        chunks.append(list(range(start, start + size)))
        start += size
    return [chunk for chunk in chunks if chunk]


def _init_worker(state_blob: bytes) -> None:
    """Pool initializer: unpickle the engine state once per worker."""
    global _WORKER_STATE
    _WORKER_STATE = pickle.loads(state_blob)


def _run_chunk(
    chunk: list[tuple[int, TableContext]],
) -> tuple[list[tuple[int, list[ReasoningSample]]], dict]:
    """Generate every (index, context) in one chunk inside a worker."""
    assert _WORKER_STATE is not None, "worker initialized without state"
    telemetry = Telemetry()
    results = [
        (
            index,
            generate_for_one_context(_WORKER_STATE, index, context, telemetry),
        )
        for index, context in chunk
    ]
    return results, telemetry.snapshot()


def _generate_serial(
    state: GenerationState,
    contexts: Sequence[TableContext],
    telemetry: Telemetry,
) -> list[list[ReasoningSample]]:
    return [
        generate_for_one_context(state, index, context, telemetry)
        for index, context in enumerate(contexts)
    ]


def generate_parallel(
    state: GenerationState,
    contexts: Sequence[TableContext],
    workers: int,
    telemetry: Telemetry,
) -> list[list[ReasoningSample]]:
    """Per-context sample lists, in context order, computed in parallel.

    The caller flattens the returned lists; their concatenation is
    byte-identical to the serial path for the same ``state``.  Any
    failure to stand up the pool (no start method, pickling refused by
    an exotic override, fd exhaustion) falls back to in-process serial
    generation and records a ``parallel/fallback:*`` drop so the run
    report shows what happened.
    """
    count = len(contexts)
    workers = max(1, min(workers, count))
    method = pick_start_method()
    if workers <= 1 or count <= 1 or method is None:
        if workers > 1 and method is None:
            telemetry.drop("parallel", "fallback:no_start_method")
        return _generate_serial(state, contexts, telemetry)
    try:
        state_blob = pickle.dumps(state)
    except Exception as error:  # pragma: no cover - exotic overrides only
        telemetry.drop("parallel", f"fallback:{type(error).__name__}")
        return _generate_serial(state, contexts, telemetry)
    chunks = [
        [(index, contexts[index]) for index in chunk]
        for chunk in shard_indices(count, workers)
    ]
    results: list[list[ReasoningSample] | None] = [None] * count
    context = multiprocessing.get_context(method)
    try:
        with context.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(state_blob,),
        ) as pool:
            for chunk_results, snapshot in pool.imap_unordered(
                _run_chunk, chunks
            ):
                telemetry.merge(snapshot)
                for index, samples in chunk_results:
                    results[index] = samples
    except (OSError, pickle.PicklingError) as error:
        telemetry.drop("parallel", f"fallback:{type(error).__name__}")
        return _generate_serial(state, contexts, telemetry)
    telemetry.increment("parallel", f"workers/{workers}")
    telemetry.increment("parallel", "chunks", len(chunks))
    missing = [index for index, value in enumerate(results) if value is None]
    for index in missing:  # pragma: no cover - defensive; pool lost a chunk
        results[index] = generate_for_one_context(
            state, index, contexts[index], telemetry
        )
    return results  # type: ignore[return-value]
