"""Fault-tolerant, seed-stable multiprocessing executor.

Generation is embarrassingly parallel across contexts *because* of the
determinism contract in :mod:`repro.pipelines.uctr`: context ``i`` draws
only from its own named RNG stream, so any scheduling of contexts onto
processes yields the same samples.  This module supplies the scheduling
— and keeps the run alive when pieces of it die:

1. contexts are sharded into contiguous index chunks (several per
   worker, so a slow context does not idle the rest of the pool);
2. the fitted :class:`~repro.pipelines.uctr.GenerationState` is pickled
   **once** in the parent and unpickled **once per worker** by the pool
   initializer — spawn-safe, no reliance on fork-inherited globals;
3. each worker runs every assigned context through
   :func:`repro.runtime.quarantine.run_context`: a context whose
   execution raises (after the retry policy is spent) is *quarantined*
   — structured record in telemetry, zero samples — instead of killing
   the chunk;
4. worker-process **death** (segfault, OOM kill, injected ``os._exit``)
   breaks the pool.  Blame is not guessable from a broken pool — every
   pending future looks dead — so the parent only *suspects* the chunk
   it was blocked on, requeues the bystanders uncharged, respawns the
   pool, and **probes** each suspect in isolation (a one-worker pool
   running only that chunk).  A probe failure is definitive: the chunk
   retries up to the policy's budget, then bisects to isolate the
   poisoned context, which is quarantined with reason ``worker_death``;
5. a per-context wall-clock **deadline** (``RetryPolicy.deadline``)
   bounds each chunk; on overrun the parent kills the pool and the
   chunk follows the same probe → retry → bisect → quarantine path
   with reason ``timeout``;
6. the parent places results back by context index and folds worker
   telemetry (counters *and* quarantine events) into the caller's sink,
   reporting each completed context through ``on_result`` so a
   checkpoint manager can persist progress as it happens.

When ``workers <= 1``, there is at most one runnable context, or the
platform offers no usable ``multiprocessing`` start method, the executor
degrades to the in-process serial path — same per-context code, same
output, same quarantine semantics, no pool.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import pickle
import time
from collections import deque
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.pipelines.samples import ReasoningSample
from repro.pipelines.uctr import GenerationState
from repro.runtime.quarantine import (
    QuarantineRecord,
    record_quarantine,
    run_context,
)
from repro.runtime.retry import RetryPolicy
from repro.tables.context import TableContext
from repro.telemetry import Telemetry

#: chunks handed out per worker; >1 smooths uneven per-context cost.
CHUNKS_PER_WORKER = 4

#: worker-side engine state, set once by :func:`_init_worker`.
_WORKER_STATE: GenerationState | None = None
_WORKER_POLICY: RetryPolicy | None = None

#: a completed-context callback: ``on_result(index, samples)``.
ResultCallback = Callable[[int, list[ReasoningSample]], None]


def pick_start_method() -> str | None:
    """The preferred ``multiprocessing`` start method, or ``None``.

    ``fork`` is cheapest where available (POSIX); ``spawn`` works
    everywhere the state pickles — which :class:`GenerationState`
    guarantees.  ``None`` means the platform supports neither and the
    caller must run serially.
    """
    methods = multiprocessing.get_all_start_methods()
    for preferred in ("fork", "spawn"):
        if preferred in methods:
            return preferred
    return None


def shard_indices(count: int, workers: int) -> list[list[int]]:
    """Contiguous index chunks: ~``CHUNKS_PER_WORKER`` per worker.

    Contiguity keeps merge bookkeeping trivial and preserves whatever
    locality neighbouring contexts have (same synthetic domain, similar
    table shapes).
    """
    if count <= 0:
        return []
    target = max(1, min(count, workers * CHUNKS_PER_WORKER))
    base, extra = divmod(count, target)
    chunks: list[list[int]] = []
    start = 0
    for position in range(target):
        size = base + (1 if position < extra else 0)
        chunks.append(list(range(start, start + size)))
        start += size
    return [chunk for chunk in chunks if chunk]


@dataclass
class _Chunk:
    """A unit of pool work: context indices plus its failure history."""

    indices: list[int]
    attempts: int = 0


def _init_worker(state_blob: bytes, policy: RetryPolicy) -> None:
    """Pool initializer: unpickle the engine state once per worker."""
    global _WORKER_STATE, _WORKER_POLICY
    _WORKER_STATE = pickle.loads(state_blob)
    _WORKER_POLICY = policy


def _run_chunk(
    chunk: list[tuple[int, TableContext]],
) -> tuple[list[tuple[int, list[ReasoningSample], bool]], dict]:
    """Execute one chunk in a worker; quarantine failures per context.

    Returns ``(index, samples, ok)`` triples — ``ok`` is False for a
    quarantined context (its structured record rides in the telemetry
    snapshot's events) — plus the chunk's telemetry snapshot.
    """
    assert _WORKER_STATE is not None, "worker initialized without state"
    telemetry = Telemetry()
    results = []
    for index, context in chunk:
        outcome = run_context(
            _WORKER_STATE, index, context, telemetry, _WORKER_POLICY,
            stage="worker",
        )
        results.append((index, outcome.samples, outcome.ok))
    return results, telemetry.snapshot()


def _generate_serial(
    state: GenerationState,
    contexts: Sequence[TableContext],
    telemetry: Telemetry,
    *,
    policy: RetryPolicy | None = None,
    on_result: ResultCallback | None = None,
    skip: Iterable[int] = (),
) -> list[list[ReasoningSample]]:
    """The in-process path: same quarantine semantics, no pool."""
    skip_set = set(skip)
    results: list[list[ReasoningSample]] = []
    for index, context in enumerate(contexts):
        if index in skip_set:
            results.append([])
            continue
        outcome = run_context(
            state, index, context, telemetry, policy, stage="serial"
        )
        results.append(outcome.samples)
        if outcome.ok and on_result is not None:
            on_result(index, outcome.samples)
    return results


def _kill_workers(executor: concurrent.futures.ProcessPoolExecutor) -> None:
    """Forcibly terminate a pool whose workers may be stuck or poisoned."""
    for process in list(getattr(executor, "_processes", {}).values()):
        if process.is_alive():
            process.terminate()
    executor.shutdown(wait=False, cancel_futures=True)


def _merge_chunk(
    chunk_results: list[tuple[int, list[ReasoningSample], bool]],
    snapshot: dict,
    results: list[list[ReasoningSample] | None],
    telemetry: Telemetry,
    on_result: ResultCallback | None,
) -> None:
    """Fold one completed chunk into the parent's results + telemetry."""
    telemetry.merge(snapshot)
    for index, samples, ok in chunk_results:
        if results[index] is not None:
            continue
        results[index] = samples
        if ok and on_result is not None:
            on_result(index, samples)


def _run_round(
    mp_context,
    workers: int,
    state_blob: bytes,
    policy: RetryPolicy,
    batch: list[_Chunk],
    contexts: Sequence[TableContext],
    results: list[list[ReasoningSample] | None],
    telemetry: Telemetry,
    on_result: ResultCallback | None,
) -> list[tuple[_Chunk, str]]:
    """One pool lifetime: submit ``batch``, harvest, report losses.

    Returns ``(chunk, reason)`` pairs for chunks whose results did not
    come back.  The chunk the parent was blocked on when the pool broke
    (or overran its deadline) carries the real reason
    (``worker_death``/``timeout``); bystanders whose pool died under
    them come back as ``requeue`` — they are not to blame.  A chunk
    whose future failed in a *healthy* pool is ``chunk_error:<type>``.
    """
    executor = concurrent.futures.ProcessPoolExecutor(
        max_workers=min(workers, len(batch)),
        mp_context=mp_context,
        initializer=_init_worker,
        initargs=(state_blob, policy),
    )
    started = time.monotonic()
    futures = [
        (
            executor.submit(
                _run_chunk, [(i, contexts[i]) for i in chunk.indices]
            ),
            chunk,
        )
        for chunk in batch
    ]
    lost: list[tuple[_Chunk, str]] = []
    harvested: set[int] = set()
    killed = False
    try:
        for position, (future, chunk) in enumerate(futures):
            deadline = policy.chunk_deadline(len(chunk.indices))
            try:
                if deadline is None:
                    chunk_results, snapshot = future.result()
                else:
                    # chunks queue behind one another; later waves get a
                    # proportionally larger allowance measured from the
                    # round start.  The probe round (single chunk) gives
                    # the exact per-chunk deadline.
                    waves = 1 + position // max(1, workers)
                    remaining = max(
                        0.0, started + deadline * waves - time.monotonic()
                    )
                    chunk_results, snapshot = future.result(
                        timeout=remaining
                    )
            except concurrent.futures.TimeoutError:
                lost.append((chunk, "timeout"))
                harvested.add(position)
                _kill_workers(executor)
                killed = True
                break
            except BrokenProcessPool:
                lost.append((chunk, "worker_death"))
                harvested.add(position)
                break
            except KeyboardInterrupt:
                _kill_workers(executor)
                killed = True
                raise
            except Exception as error:
                # the future failed in a healthy pool (result refused to
                # pickle, ...): definitively this chunk's fault.
                lost.append((chunk, f"chunk_error:{type(error).__name__}"))
                harvested.add(position)
                continue
            else:
                _merge_chunk(
                    chunk_results, snapshot, results, telemetry, on_result
                )
                harvested.add(position)
        # sweep: futures not harvested above either finished before the
        # pool went down (keep their results) or are blameless
        # bystanders of the breakage.
        for position, (future, chunk) in enumerate(futures):
            if position in harvested:
                continue
            done_ok = False
            if future.done() and not future.cancelled():
                try:
                    done_ok = future.exception() is None
                except concurrent.futures.CancelledError:
                    done_ok = False
            if done_ok:
                chunk_results, snapshot = future.result()
                _merge_chunk(
                    chunk_results, snapshot, results, telemetry, on_result
                )
            else:
                lost.append((chunk, "requeue"))
    finally:
        if not killed:
            executor.shutdown(wait=True, cancel_futures=True)
    return lost


def _charge_chunk(
    chunk: _Chunk,
    reason: str,
    destination: deque[_Chunk],
    policy: RetryPolicy,
    contexts: Sequence[TableContext],
    results: list[list[ReasoningSample] | None],
    telemetry: Telemetry,
) -> None:
    """Charge a definitively failed chunk: retry, bisect, or quarantine.

    Retries (and the halves of a bisection) go to ``destination`` — the
    suspect queue, so they keep running in isolation.  A single-context
    chunk out of attempts is quarantined with the failure reason.
    """
    chunk.attempts += 1
    if chunk.attempts < policy.max_attempts:
        telemetry.increment("retries", f"chunk/{reason}")
        destination.append(chunk)
    elif len(chunk.indices) > 1:
        telemetry.increment("retries", f"bisect/{reason}")
        mid = len(chunk.indices) // 2
        destination.append(_Chunk(chunk.indices[:mid]))
        destination.append(_Chunk(chunk.indices[mid:]))
    else:
        index = chunk.indices[0]
        record = QuarantineRecord(
            index=index,
            uid=contexts[index].uid,
            reason=reason,
            attempts=chunk.attempts,
            stage="parent",
        )
        record_quarantine(telemetry, record)
        results[index] = []


def _backfill_missing(
    state: GenerationState,
    contexts: Sequence[TableContext],
    results: list[list[ReasoningSample] | None],
    telemetry: Telemetry,
    policy: RetryPolicy | None = None,
    *,
    on_result: ResultCallback | None = None,
) -> list[int]:
    """Regenerate still-missing contexts in-process, with quarantine.

    The safety net under the pool driver: any index the rounds failed to
    fill (a driver bug, the round budget exhausted) is executed in the
    parent through the same retry/quarantine machinery — counted once
    under ``retries:backfill/missing_chunk``, never silently and never
    with unbounded re-execution.
    """
    missing = [i for i, value in enumerate(results) if value is None]
    for index in missing:
        telemetry.increment("retries", "backfill/missing_chunk")
        outcome = run_context(
            state, index, contexts[index], telemetry, policy, stage="parent"
        )
        results[index] = outcome.samples
        if outcome.ok and on_result is not None:
            on_result(index, outcome.samples)
    return missing


def generate_parallel(
    state: GenerationState,
    contexts: Sequence[TableContext],
    workers: int,
    telemetry: Telemetry,
    *,
    policy: RetryPolicy | None = None,
    on_result: ResultCallback | None = None,
    skip: Iterable[int] = (),
) -> list[list[ReasoningSample]]:
    """Per-context sample lists, in context order, computed in parallel.

    The caller flattens the returned lists; their concatenation is
    byte-identical to the serial path for the same ``state`` (a
    quarantined context contributes an empty list on both paths).

    ``skip`` names context indices already satisfied elsewhere (resumed
    from a checkpoint); they come back as empty lists for the caller to
    fill.  ``on_result`` fires in the parent for every *successfully*
    completed context, in completion order.  Any failure to stand up
    the pool (no start method, pickling refused, fd exhaustion) falls
    back to in-process serial generation and records a
    ``parallel/fallback:*`` drop so the run report shows what happened.
    """
    policy = policy or RetryPolicy()
    count = len(contexts)
    skip_set = set(skip)
    todo = [index for index in range(count) if index not in skip_set]
    workers = max(1, min(workers, len(todo)))
    method = pick_start_method()
    if workers <= 1 or len(todo) <= 1 or method is None:
        if workers > 1 and method is None:
            telemetry.drop("parallel", "fallback:no_start_method")
        return _generate_serial(
            state, contexts, telemetry,
            policy=policy, on_result=on_result, skip=skip_set,
        )
    try:
        state_blob = pickle.dumps(state)
    except Exception as error:  # pragma: no cover - exotic overrides only
        telemetry.drop("parallel", f"fallback:{type(error).__name__}")
        return _generate_serial(
            state, contexts, telemetry,
            policy=policy, on_result=on_result, skip=skip_set,
        )
    results: list[list[ReasoningSample] | None] = [None] * count
    for index in skip_set:
        results[index] = []
    pending: deque[_Chunk] = deque(
        _Chunk([todo[position] for position in positions])
        for positions in shard_indices(len(todo), workers)
    )
    suspects: deque[_Chunk] = deque()
    initial_chunks = len(pending)
    mp_context = multiprocessing.get_context(method)
    # Round budget.  Every broken batch round permanently moves one chunk
    # to the suspect queue, and every suspect resolves within
    # max_attempts probes per node of its bisection tree (≤ 2·contexts
    # nodes), so this cap is unreachable without a driver bug — it only
    # guards against looping forever, since leftovers finish in-process.
    max_rounds = 4 + 2 * initial_chunks + 2 * policy.max_attempts * (
        initial_chunks + len(todo)
    )
    rounds = 0
    while (pending or suspects) and rounds < max_rounds:
        rounds += 1
        if pending:
            batch = list(pending)
            pending.clear()
            round_workers = workers
        else:
            batch = [suspects.popleft()]
            round_workers = 1
        losses = _run_round(
            mp_context, round_workers, state_blob, policy, batch,
            contexts, results, telemetry, on_result,
        )
        probing = len(batch) == 1 and round_workers == 1
        for chunk, reason in losses:
            if reason == "requeue":
                telemetry.increment("retries", "chunk/requeue")
                pending.append(chunk)
            elif probing or reason.startswith("chunk_error"):
                # blame is definitive: a probe round has no bystanders,
                # and a chunk_error came from a healthy pool.
                _charge_chunk(
                    chunk, reason, suspects, policy, contexts, results,
                    telemetry,
                )
            else:
                # broken batch round: the blocked-on chunk is only a
                # suspect — isolate it to establish blame.
                telemetry.increment("retries", f"suspect/{reason}")
                suspects.append(chunk)
    for chunk in list(pending) + list(suspects):
        # round budget spent: finish in-process with full quarantine
        # semantics rather than dropping work.
        telemetry.increment("retries", "chunk/rounds_exhausted")
        for index in chunk.indices:
            if results[index] is None:
                outcome = run_context(
                    state, index, contexts[index], telemetry, policy,
                    stage="parent",
                )
                results[index] = outcome.samples
                if outcome.ok and on_result is not None:
                    on_result(index, outcome.samples)
    telemetry.increment("parallel", f"workers/{workers}")
    telemetry.increment("parallel", "chunks", initial_chunks)
    telemetry.increment("parallel", "rounds", rounds)
    _backfill_missing(
        state, contexts, results, telemetry, policy, on_result=on_result
    )
    return results  # type: ignore[return-value]
