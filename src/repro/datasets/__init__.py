"""Benchmark substrate: synthetic stand-ins for the four datasets.

The paper evaluates on FEVEROUS, TAT-QA, WikiSQL, and SEM-TAB-FACTS.
Those corpora are not downloadable offline, so this package synthesizes
seeded datasets with the same *shape* — domains, evidence-type mixture,
label/question-type distributions (Table II), topical structure (for the
Figure 1 topic-shift experiment), and paragraph text written in an
extractable style so the Text-To-Table operator has real work to do.

Gold questions/claims are produced with a separate "human" phrasing bank
(:mod:`repro.datasets.humanize`) so the supervised upper bound sees
wordings the UCTR synthetic data does not copy verbatim.
"""

from repro.datasets.base import Benchmark, DatasetSplit, SplitName
from repro.datasets.feverous import FeverousConfig, make_feverous
from repro.datasets.tatqa import TatQAConfig, make_tatqa
from repro.datasets.wikisql import WikiSQLConfig, make_wikisql
from repro.datasets.semtabfacts import SemTabFactsConfig, make_semtabfacts
from repro.datasets.tabfact import TabFactConfig, make_tabfact
from repro.datasets.statistics import benchmark_statistics

__all__ = [
    "Benchmark",
    "DatasetSplit",
    "SplitName",
    "FeverousConfig",
    "make_feverous",
    "TatQAConfig",
    "make_tatqa",
    "WikiSQLConfig",
    "make_wikisql",
    "SemTabFactsConfig",
    "make_semtabfacts",
    "TabFactConfig",
    "make_tabfact",
    "benchmark_statistics",
]
