"""Benchmark and split abstractions."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

from repro.errors import DatasetError
from repro.pipelines.samples import ReasoningSample, TaskType
from repro.tables.context import TableContext


class SplitName(str, Enum):
    TRAIN = "train"
    DEV = "dev"
    TEST = "test"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class DatasetSplit:
    """One split: its unlabeled contexts and its gold samples."""

    name: SplitName
    contexts: tuple[TableContext, ...]
    gold: tuple[ReasoningSample, ...]

    def __len__(self) -> int:
        return len(self.gold)

    def __iter__(self) -> Iterator[ReasoningSample]:
        return iter(self.gold)


@dataclass(frozen=True)
class Benchmark:
    """A synthetic benchmark with train/dev/test splits.

    ``task`` is the benchmark's native task; ``domain`` mirrors Table II
    (Wikipedia / Finance / Science).  The *unsupervised* setting uses
    ``split.contexts`` (tables + text, no labels); the supervised
    setting additionally uses ``split.gold``.
    """

    name: str
    task: TaskType
    domain: str
    splits: dict[str, DatasetSplit] = field(default_factory=dict)

    def split(self, name: SplitName | str) -> DatasetSplit:
        key = SplitName(name).value
        if key not in self.splits:
            raise DatasetError(f"benchmark {self.name!r} has no split {key!r}")
        return self.splits[key]

    @property
    def train(self) -> DatasetSplit:
        return self.split(SplitName.TRAIN)

    @property
    def dev(self) -> DatasetSplit:
        return self.split(SplitName.DEV)

    @property
    def test(self) -> DatasetSplit:
        return self.split(SplitName.TEST)

    @property
    def all_contexts(self) -> list[TableContext]:
        out: list[TableContext] = []
        for key in ("train", "dev", "test"):
            if key in self.splits:
                out.extend(self.splits[key].contexts)
        return out

    @property
    def n_tables(self) -> int:
        return len(self.all_contexts)

    @property
    def total_samples(self) -> int:
        return sum(len(split) for split in self.splits.values())
