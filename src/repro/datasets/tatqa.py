"""TAT-QA-like benchmark: financial QA over hybrid table-text evidence."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import Benchmark, DatasetSplit, SplitName
from repro.datasets.gold import GoldAnnotator
from repro.datasets.synth.finance import make_finance_context
from repro.pipelines.samples import ReasoningSample, TaskType
from repro.programs.base import ProgramKind
from repro.rng import make_rng, spawn
from repro.tables.context import TableContext


@dataclass(frozen=True)
class TatQAConfig:
    """Shape of the synthetic TAT-QA stand-in (low-resource domain).

    Question types follow Table II: arithmetic questions dominate
    (~42%), spans next, counting rare; evidence splits between table,
    text, and combined.
    """

    train_contexts: int = 70
    dev_contexts: int = 30
    test_contexts: int = 30
    samples_per_context: int = 4
    text_fraction: float = 0.24
    joint_fraction: float = 0.31
    #: probability a table/joint question is arithmetic (vs SQL span).
    arithmetic_fraction: float = 0.55
    seed: int = 202


def make_tatqa(config: TatQAConfig | None = None) -> Benchmark:
    """Build the TAT-QA-like benchmark."""
    config = config or TatQAConfig()
    rng = make_rng(config.seed)
    annotator = GoldAnnotator(
        rng=spawn(rng, "gold"),
        task=TaskType.QUESTION_ANSWERING,
        program_kinds=(ProgramKind.SQL, ProgramKind.ARITH),
    )
    splits: dict[str, DatasetSplit] = {}
    sizes = {
        SplitName.TRAIN: config.train_contexts,
        SplitName.DEV: config.dev_contexts,
        SplitName.TEST: config.test_contexts,
    }
    for split_name, n_contexts in sizes.items():
        contexts: list[TableContext] = []
        gold: list[ReasoningSample] = []
        context_rng = spawn(rng, f"contexts-{split_name}")
        for index in range(n_contexts):
            context = make_finance_context(
                context_rng, uid=f"tat-{split_name}-{index}"
            )
            context = TableContext(
                table=context.table,
                paragraphs=context.paragraphs,
                uid=context.uid,
                meta={**context.meta, "split": split_name.value},
            )
            contexts.append(context)
            gold.extend(_annotate(annotator, context, config))
        splits[split_name.value] = DatasetSplit(
            name=split_name, contexts=tuple(contexts), gold=tuple(gold)
        )
    return Benchmark(
        name="tatqa",
        task=TaskType.QUESTION_ANSWERING,
        domain="finance",
        splits=splits,
    )


def _annotate(
    annotator: GoldAnnotator, context: TableContext, config: TatQAConfig
) -> list[ReasoningSample]:
    out: list[ReasoningSample] = []
    for serial in range(config.samples_per_context):
        uid = f"{context.uid}-g{serial}"
        roll = annotator.rng.random()
        kind = (
            ProgramKind.ARITH
            if annotator.rng.random() < config.arithmetic_fraction
            else ProgramKind.SQL
        )
        sample = None
        if roll < config.text_fraction:
            sample = annotator.text_sample(context, uid)
        elif roll < config.text_fraction + config.joint_fraction:
            sample = annotator.joint_sample(context, uid, kind=kind)
        if sample is None:
            sample = annotator.table_sample(context, uid, kind=kind)
        if sample is not None:
            out.append(sample)
    return out
