"""TABFACT-like corpus: large-scale general-domain table verification.

TABFACT (Chen et al., 2019) is the transfer-learning source of the
paper's TAPAS-Transfer baseline (Table V): 117k human claims over 16k
Wikipedia tables, two-way labels, *table-only* evidence.  This stand-in
mirrors that shape — Wikipedia-domain tables, Supported/Refuted claims,
no text evidence — at CPU scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import Benchmark, DatasetSplit, SplitName
from repro.datasets.gold import GoldAnnotator
from repro.datasets.synth.wikipedia import make_wiki_context
from repro.pipelines.samples import ReasoningSample, TaskType
from repro.programs.base import ProgramKind
from repro.rng import make_rng, spawn
from repro.tables.context import TableContext


@dataclass(frozen=True)
class TabFactConfig:
    """Shape of the synthetic TABFACT stand-in.

    Larger than every benchmark (it is the pre-training corpus), with
    a single ``train`` split — transfer experiments never evaluate on
    it.
    """

    train_contexts: int = 180
    claims_per_context: int = 5
    seed: int = 505


def make_tabfact(config: TabFactConfig | None = None) -> Benchmark:
    """Build the TABFACT-like transfer corpus."""
    config = config or TabFactConfig()
    rng = make_rng(config.seed)
    annotator = GoldAnnotator(
        rng=spawn(rng, "gold"),
        task=TaskType.FACT_VERIFICATION,
        program_kinds=(ProgramKind.LOGIC,),
    )
    contexts: list[TableContext] = []
    gold: list[ReasoningSample] = []
    context_rng = spawn(rng, "contexts")
    for index in range(config.train_contexts):
        context = make_wiki_context(context_rng, uid=f"tabfact-{index}")
        # TABFACT evidence is the table alone.
        context = TableContext(
            table=context.table,
            paragraphs=(),
            uid=context.uid,
            meta={"domain": "wikipedia", "topic": context.meta.get("topic"),
                  "split": "train"},
        )
        contexts.append(context)
        for serial in range(config.claims_per_context):
            sample = annotator.table_sample(
                context, f"{context.uid}-g{serial}"
            )
            if sample is not None:
                gold.append(sample)
    split = DatasetSplit(
        name=SplitName.TRAIN, contexts=tuple(contexts), gold=tuple(gold)
    )
    return Benchmark(
        name="tabfact",
        task=TaskType.FACT_VERIFICATION,
        domain="wikipedia",
        splits={"train": split},
    )
