"""Gold annotation machinery shared by the four benchmark builders.

A :class:`GoldAnnotator` plays the human annotator: it writes questions
or claims against a context with *human* phrasing (``humanize``), over
three evidence modalities — table-only, text-only (from the context's
text records), and joint table-text (via a table expansion, so answering
requires bridging modalities).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.humanize import realize_human
from repro.errors import ReproError
from repro.operators.text_to_table import TextToTable
from repro.pipelines.samples import EvidenceType, ReasoningSample, TaskType
from repro.programs.base import ProgramKind
from repro.rng import choice
from repro.sampling.filters import default_filters, passes_all
from repro.sampling.labeler import ClaimLabel, ClaimLabeler
from repro.sampling.sampler import ProgramSampler
from repro.tables.context import TableContext
from repro.tables.values import coerce_number, format_number
from repro.templates.pools import pool_for_kind

_TEXT_QUESTION_FORMS = [
    "according to the text , what is the {column} for {name} ?",
    "what {column} does the passage report for {name} ?",
    "as stated in the text , what was the {column} of {name} ?",
]

_TEXT_CLAIM_FORMS = [
    "the passage states that the {column} for {name} is {value}",
    "according to the text , {name} has a {column} of {value}",
]

_UNKNOWN_CLAIM_FORMS = [
    "the {column} for {name} is {value}",
    "{name} records a {column} of {value}",
]


@dataclass
class GoldAnnotator:
    """Writes gold samples for one benchmark."""

    rng: random.Random
    task: TaskType
    program_kinds: tuple[ProgramKind, ...]

    def __post_init__(self) -> None:
        self._sampler = ProgramSampler(self.rng)
        self._labeler = ClaimLabeler(self.rng)
        self._filters = default_filters()
        self._expander = TextToTable()
        self._templates = {
            kind: list(pool_for_kind(kind)) for kind in self.program_kinds
        }

    # -- table evidence -----------------------------------------------------
    def table_sample(
        self, context: TableContext, uid: str, kind: ProgramKind | None = None
    ) -> ReasoningSample | None:
        """A gold sample whose evidence is the table alone."""
        kind = kind or choice(self.rng, list(self.program_kinds))
        sampled = self._draw(kind, context.table)
        if sampled is None:
            return None
        if self.task is TaskType.FACT_VERIFICATION:
            claim = self._labeler.label(sampled)
            return ReasoningSample(
                uid=uid,
                task=self.task,
                context=context,
                sentence=realize_human(claim.sample, self.rng),
                label=claim.label,
                evidence_type=EvidenceType.TABLE,
                evidence_cells=claim.sample.result.highlighted_cells,
                provenance={"source": "gold", "kind": kind.value,
                            "category": sampled.template.category},
            )
        return ReasoningSample(
            uid=uid,
            task=self.task,
            context=context,
            sentence=realize_human(sampled, self.rng),
            answer=tuple(sampled.answer),
            evidence_type=EvidenceType.TABLE,
            evidence_cells=sampled.result.highlighted_cells,
            provenance={"source": "gold", "kind": kind.value,
                        "category": sampled.template.category},
        )

    # -- text evidence --------------------------------------------------------
    def text_sample(self, context: TableContext, uid: str) -> ReasoningSample | None:
        """A gold sample answerable from the context's text records."""
        records = context.meta.get("text_records") or []
        if not records:
            return None
        record = choice(self.rng, records)
        name_column = context.table.row_name_column or context.table.column_names[0]
        name = record.get(name_column)
        fields = [
            (column, value)
            for column, value in record.items()
            if column != name_column
        ]
        if name is None or not fields:
            return None
        column, value = choice(self.rng, fields)
        if self.task is TaskType.FACT_VERIFICATION:
            shown, label = self._maybe_corrupt(value)
            sentence = choice(self.rng, _TEXT_CLAIM_FORMS).format(
                column=column, name=name, value=shown
            )
            return ReasoningSample(
                uid=uid,
                task=self.task,
                context=context,
                sentence=sentence,
                label=label,
                evidence_type=EvidenceType.TEXT,
                provenance={"source": "gold", "kind": "text_lookup"},
            )
        sentence = choice(self.rng, _TEXT_QUESTION_FORMS).format(
            column=column, name=name
        )
        return ReasoningSample(
            uid=uid,
            task=self.task,
            context=context,
            sentence=sentence,
            answer=(str(value),),
            evidence_type=EvidenceType.TEXT,
            provenance={"source": "gold", "kind": "text_lookup"},
        )

    # -- joint evidence ---------------------------------------------------------
    def joint_sample(
        self, context: TableContext, uid: str, kind: ProgramKind | None = None
    ) -> ReasoningSample | None:
        """A gold sample requiring both the table and the text."""
        try:
            expansion = self._expander.expand_all(context)
        except ReproError:
            return None
        new_rows = set(expansion.new_row_indices)
        kind = kind or choice(self.rng, list(self.program_kinds))
        for _ in range(6):
            sampled = self._draw(kind, expansion.expanded_table)
            if sampled is None:
                continue
            rows = {row for row, _ in sampled.result.highlighted_cells}
            if not (rows & new_rows) or rows <= new_rows:
                continue
            evidence = frozenset(
                (row, column)
                for row, column in sampled.result.highlighted_cells
                if row not in new_rows
            )
            if self.task is TaskType.FACT_VERIFICATION:
                claim = self._labeler.label(sampled)
                return ReasoningSample(
                    uid=uid,
                    task=self.task,
                    context=context,
                    sentence=realize_human(claim.sample, self.rng),
                    label=claim.label,
                    evidence_type=EvidenceType.TABLE_TEXT,
                    evidence_cells=evidence,
                    provenance={"source": "gold", "kind": kind.value,
                                "category": sampled.template.category},
                )
            return ReasoningSample(
                uid=uid,
                task=self.task,
                context=context,
                sentence=realize_human(sampled, self.rng),
                answer=tuple(sampled.answer),
                evidence_type=EvidenceType.TABLE_TEXT,
                evidence_cells=evidence,
                provenance={"source": "gold", "kind": kind.value,
                            "category": sampled.template.category},
            )
        return None

    # -- unknown claims (SEM-TAB-FACTS / FEVEROUS NEI) ---------------------------
    def unknown_claim(
        self, context: TableContext, uid: str, absent_name: str
    ) -> ReasoningSample | None:
        """A claim about an entity in neither the table nor the text."""
        if self.task is not TaskType.FACT_VERIFICATION:
            return None
        table = context.table
        if table.find_row_by_name(absent_name) is not None:
            return None
        if absent_name.lower() in context.text.lower():
            return None
        numeric = table.numeric_column_names()
        if not numeric:
            return None
        column = choice(self.rng, numeric)
        value = format_number(float(self.rng.randint(1, 5000)))
        sentence = choice(self.rng, _UNKNOWN_CLAIM_FORMS).format(
            column=column, name=absent_name, value=value
        )
        return ReasoningSample(
            uid=uid,
            task=self.task,
            context=context,
            sentence=sentence,
            label=ClaimLabel.UNKNOWN,
            evidence_type=EvidenceType.TABLE,
            provenance={"source": "gold", "kind": "unknown"},
        )

    # -- internals -----------------------------------------------------------
    def _draw(self, kind: ProgramKind, table):
        templates = self._templates.get(kind, [])
        if not templates:
            return None
        for _ in range(6):
            template = choice(self.rng, templates)
            sampled = self._sampler.try_sample(template, table)
            if sampled is not None and passes_all(sampled, self._filters):
                return sampled
        return None

    def _maybe_corrupt(self, value: str) -> tuple[str, ClaimLabel]:
        """Half the text claims are corrupted into Refuted."""
        if self.rng.random() < 0.5:
            return str(value), ClaimLabel.SUPPORTED
        number = coerce_number(str(value))
        if number is not None:
            delta = max(1.0, abs(number) * (0.2 + 0.5 * self.rng.random()))
            sign = 1 if self.rng.random() < 0.5 else -1
            return format_number(number + sign * delta), ClaimLabel.REFUTED
        return f"not {value}", ClaimLabel.REFUTED
