"""Seeded vocabularies for dataset synthesis.

Plain word lists, combined combinatorially by the generators; kept in
one module so tests can assert coverage and generators stay readable.
"""

from __future__ import annotations

import random

from repro.rng import choice

FIRST_NAMES = [
    "james", "mary", "robert", "patricia", "john", "jennifer", "michael",
    "linda", "david", "elizabeth", "william", "susan", "richard", "jessica",
    "joseph", "sarah", "thomas", "karen", "carlos", "nancy", "daniel",
    "lisa", "matthew", "betty", "anthony", "helen", "mark", "sandra",
    "kenji", "amara", "priya", "diego", "ingrid", "yusuf", "mei", "omar",
]

LAST_NAMES = [
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "tanaka", "okafor", "patel", "silva", "larsen", "haddad", "chen",
]

CITIES = [
    "springfield", "riverton", "lakeside", "fairview", "greenville",
    "bristol", "georgetown", "salem", "madison", "clinton", "arlington",
    "ashland", "burlington", "clayton", "dover", "easton", "franklin",
    "glendale", "hudson", "kingston", "lebanon", "milton", "newport",
    "oxford", "princeton", "quincy", "richmond", "sheffield", "troy",
    "union city", "vernon", "westfield", "york",
]

COUNTRIES = [
    "atlantia", "borduria", "carpathia", "deltora", "elbonia", "florin",
    "genovia", "hyrkania", "illyria", "jotunheim", "krakozhia", "latveria",
    "moldavia", "novistrana", "orsinia", "pottsylvania", "qumar",
    "ruritania", "sylvania", "tomainia", "urkesh", "valverde", "wadiya",
    "zamunda",
]

TEAMS = [
    "hawks", "bulls", "heat", "lakers", "celtics", "pistons", "rockets",
    "spurs", "kings", "suns", "jazz", "magic", "wizards", "pacers",
    "raptors", "nuggets", "clippers", "grizzlies", "hornets", "pelicans",
]

PARTIES = [
    "unity party", "labor alliance", "green coalition", "national front",
    "liberal union", "reform movement", "progress bloc", "heritage party",
]

DEPARTMENTS = [
    "interior", "defense", "finance", "education", "health", "transport",
    "agriculture", "justice", "energy", "culture", "labor", "environment",
]

ALBUM_WORDS = [
    "midnight", "echoes", "horizon", "gravity", "mirage", "ember",
    "cascade", "aurora", "voltage", "harbor", "monsoon", "prism",
    "satellite", "wildfire", "labyrinth", "tundra",
]

FILM_WORDS = [
    "shadow", "crown", "river", "storm", "garden", "empire", "signal",
    "harvest", "frontier", "obsidian", "paper", "silent", "golden",
    "iron", "velvet", "hollow",
]

GENRES = ["drama", "comedy", "action", "thriller", "documentary", "romance"]

LINE_ITEMS = [
    "revenue", "cost of sales", "gross profit", "operating expenses",
    "operating income", "net income", "total assets", "total liabilities",
    "stockholders equity", "cash and equivalents", "accounts receivable",
    "inventory", "deferred revenue", "long-term debt", "interest expense",
    "income tax expense", "research and development", "capital expenditures",
    "free cash flow", "goodwill",
]

COMPOUNDS = [
    "compound a", "compound b", "compound c", "compound d", "compound e",
    "sample 1", "sample 2", "sample 3", "sample 4", "sample 5",
    "catalyst x", "catalyst y", "catalyst z", "alloy i", "alloy ii",
    "polymer p1", "polymer p2", "strain alpha", "strain beta",
    "strain gamma",
]

MEASUREMENTS = [
    "yield", "purity", "melting point", "reaction time", "conversion rate",
    "selectivity", "density", "viscosity", "absorbance", "particle size",
    "tensile strength", "conductivity", "recovery", "accuracy",
]

CONDITIONS = [
    "baseline", "treatment", "control", "heated", "cooled", "catalyzed",
    "diluted", "concentrated", "aged", "fresh",
]

#: topics for the WikiSQL-like benchmark (Figure 1 uses this split).
WIKI_TOPICS = ["sports", "politics", "music", "film", "geography"]


def person_name(rng: random.Random) -> str:
    return f"{choice(rng, FIRST_NAMES)} {choice(rng, LAST_NAMES)}"


def album_title(rng: random.Random) -> str:
    return f"{choice(rng, ALBUM_WORDS)} {choice(rng, ALBUM_WORDS)}"


def film_title(rng: random.Random) -> str:
    return f"the {choice(rng, FILM_WORDS)} {choice(rng, FILM_WORDS)}"


def distinct(rng: random.Random, maker, count: int, max_tries: int = 200) -> list[str]:
    """``count`` distinct strings from a maker function."""
    seen: set[str] = set()
    out: list[str] = []
    tries = 0
    while len(out) < count and tries < max_tries:
        tries += 1
        candidate = maker(rng)
        if candidate not in seen:
            seen.add(candidate)
            out.append(candidate)
    while len(out) < count:  # fall back to suffixing
        out.append(f"{maker(rng)} {len(out)}")
    return out
