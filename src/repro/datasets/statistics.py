"""Dataset statistics in the shape of the paper's Table II."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.datasets.base import Benchmark
from repro.pipelines.samples import TaskType


@dataclass(frozen=True)
class BenchmarkStatistics:
    """Aggregate statistics of one benchmark (Table II row)."""

    name: str
    domain: str
    task: str
    total_samples: int
    n_tables: int
    n_contexts_with_text: int
    evidence_counts: dict[str, int] = field(default_factory=dict)
    label_counts: dict[str, int] = field(default_factory=dict)
    question_type_counts: dict[str, int] = field(default_factory=dict)

    def as_row(self) -> dict[str, object]:
        return {
            "Dataset": self.name,
            "Domain": self.domain,
            "Total Samples": self.total_samples,
            "Tables": self.n_tables,
            "Evidence": dict(self.evidence_counts),
            "Labels/Question Types": dict(self.label_counts)
            or dict(self.question_type_counts),
        }


def benchmark_statistics(benchmark: Benchmark) -> BenchmarkStatistics:
    """Compute Table II-style statistics for ``benchmark``."""
    evidence = Counter()
    labels = Counter()
    question_types = Counter()
    for split in benchmark.splits.values():
        for sample in split.gold:
            evidence[sample.evidence_type.value] += 1
            if sample.task is TaskType.FACT_VERIFICATION:
                labels[sample.label.value] += 1
            else:
                question_types[_question_type(sample.sentence)] += 1
    with_text = sum(
        1
        for split in benchmark.splits.values()
        for context in split.contexts
        if context.has_text
    )
    return BenchmarkStatistics(
        name=benchmark.name,
        domain=benchmark.domain,
        task=benchmark.task.value,
        total_samples=benchmark.total_samples,
        n_tables=benchmark.n_tables,
        n_contexts_with_text=with_text,
        evidence_counts=dict(evidence),
        label_counts=dict(labels),
        question_type_counts=dict(question_types),
    )


def _question_type(question: str) -> str:
    """First interrogative word, WikiSQL-style ("What", "How many"...)."""
    lowered = question.lower()
    if lowered.startswith("how many") or " how many " in lowered:
        return "how many"
    for word in ("what", "which", "who", "when", "where", "how", "name",
                 "list", "tell", "give", "count", "is", "does", "did"):
        if lowered.startswith(word):
            return word
    return "other"
