"""FEVEROUS-like benchmark: Wikipedia fact verification over table+text."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import Benchmark, DatasetSplit, SplitName
from repro.datasets.gold import GoldAnnotator
from repro.datasets.synth.wikipedia import make_wiki_context
from repro.pipelines.samples import ReasoningSample, TaskType
from repro.programs.base import ProgramKind
from repro.rng import make_rng, spawn
from repro.tables.context import TableContext


@dataclass(frozen=True)
class FeverousConfig:
    """Shape of the synthetic FEVEROUS stand-in.

    The real dataset is data-rich (28k tables); this stand-in keeps the
    ratio to the low-resource benchmarks (TAT-QA / SEM-TAB-FACTS) so the
    augmentation experiment (Table VII) faces the same contrast.
    """

    train_contexts: int = 140
    dev_contexts: int = 45
    test_contexts: int = 45
    samples_per_context: int = 4
    #: evidence mixture (sentence, table, combined) per Table II.
    text_fraction: float = 0.40
    joint_fraction: float = 0.25
    seed: int = 101


def make_feverous(config: FeverousConfig | None = None) -> Benchmark:
    """Build the FEVEROUS-like benchmark."""
    config = config or FeverousConfig()
    rng = make_rng(config.seed)
    annotator = GoldAnnotator(
        rng=spawn(rng, "gold"),
        task=TaskType.FACT_VERIFICATION,
        program_kinds=(ProgramKind.LOGIC,),
    )
    splits: dict[str, DatasetSplit] = {}
    sizes = {
        SplitName.TRAIN: config.train_contexts,
        SplitName.DEV: config.dev_contexts,
        SplitName.TEST: config.test_contexts,
    }
    for split_name, n_contexts in sizes.items():
        contexts: list[TableContext] = []
        gold: list[ReasoningSample] = []
        context_rng = spawn(rng, f"contexts-{split_name}")
        for index in range(n_contexts):
            context = make_wiki_context(
                context_rng, uid=f"fev-{split_name}-{index}"
            )
            context = TableContext(
                table=context.table,
                paragraphs=context.paragraphs,
                uid=context.uid,
                meta={**context.meta, "split": split_name.value},
            )
            contexts.append(context)
            gold.extend(_annotate(annotator, context, config))
        splits[split_name.value] = DatasetSplit(
            name=split_name, contexts=tuple(contexts), gold=tuple(gold)
        )
    return Benchmark(
        name="feverous",
        task=TaskType.FACT_VERIFICATION,
        domain="wikipedia",
        splits=splits,
    )


def _annotate(
    annotator: GoldAnnotator, context: TableContext, config: FeverousConfig
) -> list[ReasoningSample]:
    out: list[ReasoningSample] = []
    for serial in range(config.samples_per_context):
        uid = f"{context.uid}-g{serial}"
        roll = annotator.rng.random()
        sample = None
        if roll < config.text_fraction:
            sample = annotator.text_sample(context, uid)
        elif roll < config.text_fraction + config.joint_fraction:
            sample = annotator.joint_sample(context, uid)
        if sample is None:
            sample = annotator.table_sample(context, uid)
        if sample is not None:
            out.append(sample)
    return out
