"""SEM-TAB-FACTS-like benchmark: scientific fact verification on tables."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets import naming
from repro.datasets.base import Benchmark, DatasetSplit, SplitName
from repro.datasets.gold import GoldAnnotator
from repro.datasets.synth.science import make_science_context
from repro.pipelines.samples import ReasoningSample, TaskType
from repro.programs.base import ProgramKind
from repro.rng import choice, make_rng, spawn
from repro.tables.context import TableContext


@dataclass(frozen=True)
class SemTabFactsConfig:
    """Shape of the synthetic SEM-TAB-FACTS stand-in.

    The smallest benchmark (1,085 tables in the paper); three-way labels
    with a small Unknown share, claims over scientific tables.
    """

    train_contexts: int = 45
    dev_contexts: int = 25
    test_contexts: int = 25
    samples_per_context: int = 4
    unknown_fraction: float = 0.06
    seed: int = 404


def make_semtabfacts(config: SemTabFactsConfig | None = None) -> Benchmark:
    """Build the SEM-TAB-FACTS-like benchmark."""
    config = config or SemTabFactsConfig()
    rng = make_rng(config.seed)
    annotator = GoldAnnotator(
        rng=spawn(rng, "gold"),
        task=TaskType.FACT_VERIFICATION,
        program_kinds=(ProgramKind.LOGIC,),
    )
    splits: dict[str, DatasetSplit] = {}
    sizes = {
        SplitName.TRAIN: config.train_contexts,
        SplitName.DEV: config.dev_contexts,
        SplitName.TEST: config.test_contexts,
    }
    for split_name, n_contexts in sizes.items():
        contexts: list[TableContext] = []
        gold: list[ReasoningSample] = []
        context_rng = spawn(rng, f"contexts-{split_name}")
        for index in range(n_contexts):
            context = make_science_context(
                context_rng, uid=f"stf-{split_name}-{index}"
            )
            context = TableContext(
                table=context.table,
                paragraphs=context.paragraphs,
                uid=context.uid,
                meta={**context.meta, "split": split_name.value},
            )
            contexts.append(context)
            gold.extend(_annotate(annotator, context, config))
        splits[split_name.value] = DatasetSplit(
            name=split_name, contexts=tuple(contexts), gold=tuple(gold)
        )
    return Benchmark(
        name="semtabfacts",
        task=TaskType.FACT_VERIFICATION,
        domain="science",
        splits=splits,
    )


def _annotate(
    annotator: GoldAnnotator, context: TableContext, config: SemTabFactsConfig
) -> list[ReasoningSample]:
    out: list[ReasoningSample] = []
    for serial in range(config.samples_per_context):
        uid = f"{context.uid}-g{serial}"
        sample = None
        if annotator.rng.random() < config.unknown_fraction:
            absent = choice(annotator.rng, naming.COMPOUNDS)
            sample = annotator.unknown_claim(context, uid, absent)
        if sample is None:
            sample = annotator.table_sample(context, uid)
        if sample is not None:
            out.append(sample)
    return out
