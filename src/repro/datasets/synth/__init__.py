"""Domain-specific table/context generators used by the benchmarks."""

from repro.datasets.synth.wikipedia import make_wiki_context
from repro.datasets.synth.finance import make_finance_context
from repro.datasets.synth.science import make_science_context

__all__ = [
    "make_wiki_context",
    "make_finance_context",
    "make_science_context",
]
