"""Financial-report contexts in the style of TAT-QA's evidence.

Tables are line-item × fiscal-year matrices; paragraphs describe a few
table rows plus line items that appear *only* in the text (TAT-QA's
text-evidence questions, and the expansion operator's raw material).
"""

from __future__ import annotations

import random

from repro.datasets import naming
from repro.rng import sample_up_to
from repro.tables.context import Paragraph, TableContext
from repro.tables.table import Table


def make_finance_context(rng: random.Random, uid: str = "") -> TableContext:
    """One financial-report table with narrative text."""
    n_items = rng.randint(4, 7)
    n_years = rng.randint(2, 3)
    last_year = rng.randint(2014, 2021)
    years = [str(last_year - offset) for offset in range(n_years)]
    items = sample_up_to(rng, naming.LINE_ITEMS, n_items + 2)
    table_items, text_items = items[:n_items], items[n_items:]
    rows = []
    for item in table_items:
        base = rng.randint(80, 9000)
        cells = [item]
        for offset in range(n_years):
            drift = 1.0 + rng.uniform(-0.25, 0.35) * (offset + 1)
            cells.append(str(max(10, round(base * drift))))
        rows.append(cells)
    table = Table.from_rows(
        ["item"] + years,
        rows,
        title="consolidated financial data",
        row_name_column="item",
    )
    sentences: list[str] = []
    text_records: list[dict[str, str]] = []
    # Narrative recap of a couple of table rows.
    for row_index in rng.sample(range(table.n_rows), k=min(2, table.n_rows)):
        item = table.row_name(row_index)
        year = years[rng.randrange(len(years))]
        value = table.cell(row_index, year).raw
        sentences.append(f"For {item} , the {year} is {value} .")
    # Line items only present in the text.
    for item in text_items:
        record: dict[str, str] = {"item": item}
        clauses = []
        for year in years:
            value = str(rng.randint(40, 5000))
            record[year] = value
            clauses.append(f"the {year} is {value}")
        sentences.append(f"For {item} , " + " and ".join(clauses) + " .")
        text_records.append(record)
    paragraphs = (
        (Paragraph(text=" ".join(sentences), source="context"),)
        if sentences
        else ()
    )
    return TableContext(
        table=table,
        paragraphs=paragraphs,
        uid=uid or f"fin-{rng.randrange(10**9)}",
        meta={
            "domain": "finance",
            "topic": "finance",
            "years": years,
            "text_records": text_records,
        },
    )
