"""Scientific-article contexts in the style of SEM-TAB-FACTS evidence.

Tables are sample × measurement matrices from synthetic experiments;
captions and short paragraphs carry units and conditions.  The science
vocabulary is deliberately alien to the Wikipedia domain so transfer
experiments (TAPAS-Transfer, Table V) face a genuine domain gap.
"""

from __future__ import annotations

import random

from repro.datasets import naming
from repro.rng import choice, sample_up_to
from repro.tables.context import Paragraph, TableContext
from repro.tables.table import Table


def make_science_context(rng: random.Random, uid: str = "") -> TableContext:
    """One scientific-results table with a caption paragraph."""
    n_samples = rng.randint(3, 7)
    n_measures = rng.randint(2, 4)
    samples = sample_up_to(rng, naming.COMPOUNDS, n_samples + 1)
    measures = sample_up_to(rng, naming.MEASUREMENTS, n_measures)
    condition = choice(rng, naming.CONDITIONS)
    rows = []
    for sample_name in samples[:n_samples]:
        cells = [sample_name]
        for _ in measures:
            cells.append(f"{rng.uniform(0.5, 99.5):.1f}")
        rows.append(cells)
    table = Table.from_rows(
        ["sample"] + measures,
        rows,
        title=f"results under {condition} conditions",
        row_name_column="sample",
    )
    text_records: list[dict[str, str]] = []
    sentences = [
        f"Table reports measurements obtained under {condition} conditions ."
    ]
    # One sample described only in the running text.
    extra = samples[n_samples:]
    for sample_name in extra:
        record: dict[str, str] = {"sample": sample_name}
        clauses = []
        for measure in measures[:2]:
            value = f"{rng.uniform(0.5, 99.5):.1f}"
            record[measure] = value
            clauses.append(f"the {measure} is {value}")
        sentences.append(f"For {sample_name} , " + " and ".join(clauses) + " .")
        text_records.append(record)
    return TableContext(
        table=table,
        paragraphs=(Paragraph(text=" ".join(sentences), source="caption"),),
        uid=uid or f"sci-{rng.randrange(10**9)}",
        meta={
            "domain": "science",
            "topic": "science",
            "condition": condition,
            "text_records": text_records,
        },
    )
