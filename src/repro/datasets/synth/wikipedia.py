"""Wikipedia-style tables: sports, politics, music, film, geography.

Each context carries a relational table, one or two surrounding
paragraphs written in the extractable clause style, and
``meta["text_records"]`` — records asserted only in the text (the raw
material for Text-To-Table expansion and for gold text-evidence
questions).
"""

from __future__ import annotations

import random
from typing import Callable

from repro.datasets import naming
from repro.rng import choice
from repro.tables.context import Paragraph, TableContext
from repro.tables.table import Table


def make_wiki_context(
    rng: random.Random, topic: str | None = None, uid: str = ""
) -> TableContext:
    """One Wikipedia-like table context of the given (or random) topic."""
    topic = topic or choice(rng, naming.WIKI_TOPICS)
    maker = _TOPIC_MAKERS[topic]
    table, records = maker(rng)
    paragraphs, text_records = _write_paragraphs(rng, table, records)
    return TableContext(
        table=table,
        paragraphs=tuple(paragraphs),
        uid=uid or f"wiki-{topic}-{rng.randrange(10**9)}",
        meta={"domain": "wikipedia", "topic": topic, "text_records": text_records},
    )


# -- topic table makers --------------------------------------------------------

def _sports(rng: random.Random) -> tuple[Table, list[dict[str, str]]]:
    n = rng.randint(4, 8)
    players = naming.distinct(rng, naming.person_name, n + 2)
    rows = []
    for player in players[:n]:
        rows.append(
            [
                player,
                choice(rng, naming.TEAMS),
                str(rng.randint(2, 40)),
                str(rng.randint(1, 15)),
                str(rng.randint(1, 14)),
            ]
        )
    table = Table.from_rows(
        ["player", "team", "points", "rebounds", "assists"],
        rows,
        title="player statistics",
        row_name_column="player",
    )
    extra = [
        {
            "player": player,
            "team": choice(rng, naming.TEAMS),
            "points": str(rng.randint(2, 40)),
            "rebounds": str(rng.randint(1, 15)),
        }
        for player in players[n:]
    ]
    return table, extra


def _politics(rng: random.Random) -> tuple[Table, list[dict[str, str]]]:
    n = rng.randint(4, 8)
    departments = list(naming.DEPARTMENTS)
    rng.shuffle(departments)
    rows = []
    for department in departments[:n]:
        rows.append(
            [
                department,
                naming.person_name(rng),
                choice(rng, naming.PARTIES),
                str(rng.randint(3, 60)),
                str(rng.randint(1990, 2022)),
            ]
        )
    table = Table.from_rows(
        ["department", "minister", "party", "total deputies", "since"],
        rows,
        title="cabinet composition",
        row_name_column="department",
    )
    extra = [
        {
            "department": department,
            "minister": naming.person_name(rng),
            "total deputies": str(rng.randint(3, 60)),
        }
        for department in departments[n : n + 2]
    ]
    return table, extra


def _music(rng: random.Random) -> tuple[Table, list[dict[str, str]]]:
    n = rng.randint(4, 8)
    albums = naming.distinct(rng, naming.album_title, n + 2)
    rows = []
    for album in albums[:n]:
        rows.append(
            [
                album,
                naming.person_name(rng),
                str(rng.randint(1985, 2022)),
                str(rng.randint(50, 9000)),
                str(rng.randint(1, 100)),
            ]
        )
    table = Table.from_rows(
        ["album", "artist", "year", "sales", "peak position"],
        rows,
        title="discography",
        row_name_column="album",
    )
    extra = [
        {
            "album": album,
            "artist": naming.person_name(rng),
            "sales": str(rng.randint(50, 9000)),
        }
        for album in albums[n:]
    ]
    return table, extra


def _film(rng: random.Random) -> tuple[Table, list[dict[str, str]]]:
    n = rng.randint(4, 8)
    films = naming.distinct(rng, naming.film_title, n + 2)
    rows = []
    for film in films[:n]:
        rows.append(
            [
                film,
                naming.person_name(rng),
                choice(rng, naming.GENRES),
                str(rng.randint(1970, 2022)),
                str(rng.randint(1, 900)),
            ]
        )
    table = Table.from_rows(
        ["film", "director", "genre", "year", "gross"],
        rows,
        title="filmography",
        row_name_column="film",
    )
    extra = [
        {
            "film": film,
            "director": naming.person_name(rng),
            "gross": str(rng.randint(1, 900)),
        }
        for film in films[n:]
    ]
    return table, extra


def _geography(rng: random.Random) -> tuple[Table, list[dict[str, str]]]:
    n = rng.randint(4, 8)
    cities = list(naming.CITIES)
    rng.shuffle(cities)
    rows = []
    for city in cities[:n]:
        rows.append(
            [
                city,
                choice(rng, naming.COUNTRIES),
                str(rng.randint(20, 9000)),
                str(rng.randint(10, 2000)),
                str(rng.randint(1, 2800)),
            ]
        )
    table = Table.from_rows(
        ["city", "country", "population", "area", "elevation"],
        rows,
        title="cities overview",
        row_name_column="city",
    )
    extra = [
        {
            "city": city,
            "country": choice(rng, naming.COUNTRIES),
            "population": str(rng.randint(20, 9000)),
        }
        for city in cities[n : n + 2]
    ]
    return table, extra


_TOPIC_MAKERS: dict[str, Callable] = {
    "sports": _sports,
    "politics": _politics,
    "music": _music,
    "film": _film,
    "geography": _geography,
}


# -- paragraph writer ----------------------------------------------------------

def _write_paragraphs(
    rng: random.Random, table: Table, extra_records: list[dict[str, str]]
) -> tuple[list[Paragraph], list[dict[str, str]]]:
    """Describe 1-2 table rows plus the extra (text-only) records."""
    sentences: list[str] = []
    name_column = table.row_name_column or table.column_names[0]
    described_rows = rng.sample(
        range(table.n_rows), k=min(2, table.n_rows)
    )
    for row_index in described_rows:
        name = table.row_name(row_index)
        clauses = []
        for column in table.column_names:
            if column == name_column:
                continue
            cell = table.cell(row_index, column)
            if cell.is_null or rng.random() < 0.4:
                continue
            clauses.append(f"the {column} is {cell.raw}")
        if clauses:
            sentences.append(f"For {name} , " + " and ".join(clauses) + " .")
    kept_records: list[dict[str, str]] = []
    for record in extra_records:
        name = record.get(name_column, "")
        clauses = [
            f"the {column} is {value}"
            for column, value in record.items()
            if column != name_column
        ]
        if name and clauses:
            sentences.append(f"For {name} , " + " and ".join(clauses) + " .")
            kept_records.append(record)
    if not sentences:
        return [], []
    return [Paragraph(text=" ".join(sentences), source="context")], kept_records
