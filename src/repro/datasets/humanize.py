"""Human phrasing bank for gold annotation.

Gold questions and claims must not share their surface wording with the
UCTR grammar, otherwise the unsupervised model would see the supervised
distribution verbatim and the paper's supervised/unsupervised gap would
vanish.  This bank provides annotator-style paraphrases per template
pattern; patterns without an entry fall back to the grammar (some
overlap is realistic — annotators also write plain sentences).
"""

from __future__ import annotations

import random

from repro.nlgen.grammar import RealizationGrammar, fill_skeleton
from repro.rng import choice
from repro.sampling.sampler import SampledProgram

HUMAN_SKELETONS: dict[str, list[str]] = {
    "select c1 from w where c2 = val1": [
        "tell me the {c1} whose {c2} equals {val1}",
        "{val1} corresponds to which {c1} ?",
        "when the {c2} shows {val1}, what does the {c1} column show ?",
    ],
    "select c1 , c2 from w where c3 = val1": [
        "list both the {c1} and {c2} recorded against {val1}",
    ],
    "select c1 from w order by c2 desc limit 1": [
        "out of all entries, which {c1} tops the {c2} ranking ?",
        "who or what leads in {c2} among the {c1} column ?",
    ],
    "select c1 from w order by c2 asc limit 1": [
        "out of all entries, which {c1} sits at the bottom of the {c2} ranking ?",
        "which {c1} trails everyone in {c2} ?",
    ],
    "select c1 from w where c2 = val1 order by c3 desc limit 1": [
        "restricted to {c2} {val1}, which {c1} leads in {c3} ?",
    ],
    "select c1 from w order by c2 desc limit n1": [
        "name the leading {n1} entries of {c1} ranked on {c2}",
    ],
    "select c1 from w where c2 > val1": [
        "which {c1} exceed {val1} in {c2} ?",
    ],
    "select c1 from w where c2 < val1": [
        "which {c1} fall short of {val1} in {c2} ?",
    ],
    "select count ( * ) from w where c1 = val1": [
        "count the entries whose {c1} reads {val1}",
        "what is the tally of rows showing {val1} under {c1} ?",
    ],
    "select count ( * ) from w where c1 > val1": [
        "count the entries exceeding {val1} in {c1}",
    ],
    "select count ( * ) from w where c1 < val1": [
        "count the entries under {val1} in {c1}",
    ],
    "select count ( distinct c1 ) from w": [
        "how many distinct values appear under {c1} ?",
    ],
    "select count ( * ) from w where c1 = val1 and c2 = val2": [
        "count the rows pairing {c1} {val1} with {c2} {val2}",
    ],
    "select sum ( c1 ) from w": [
        "adding every row, what does {c1} come to ?",
    ],
    "select sum ( c1 ) from w where c2 = val1": [
        "adding the rows for {val1}, what does {c1} come to ?",
    ],
    "select avg ( c1 ) from w": [
        "taking all rows together, what is the typical {c1} ?",
    ],
    "select avg ( c1 ) from w where c2 = val1": [
        "for {val1}, what is the typical {c1} ?",
    ],
    "select max ( c1 ) from w": [
        "what is the single largest {c1} recorded ?",
    ],
    "select min ( c1 ) from w": [
        "what is the single smallest {c1} recorded ?",
    ],
    "select max ( c1 ) from w where c2 = val1": [
        "what is the peak {c1} seen for {val1} ?",
    ],
    "select max ( c1 ) - min ( c1 ) from w": [
        "how far apart are the extremes of {c1} ?",
    ],
    "select c1 from w where c2 = val1 and c3 = val2": [
        "find the {c1} matching both {c2} {val1} and {c3} {val2}",
    ],
    "select c1 from w where c2 = val1 and c3 > val2": [
        "find the {c1} with {c2} {val1} whose {c3} tops {val2}",
    ],
    # logical forms -> human claims
    "eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; val2 }": [
        "according to the table, {val1} shows {val2} under {c2}",
        "the entry {val1} lists its {c2} as {val2}",
    ],
    "eq { count { filter_eq { all_rows ; c1 ; val1 } } ; n1 }": [
        "exactly {n1} entries carry the {c1} {val1}",
        "the {c1} {val1} shows up {n1} times overall",
    ],
    "eq { count { filter_greater { all_rows ; c1 ; val1 } } ; n1 }": [
        "exactly {n1} entries top {val1} in {c1}",
    ],
    "eq { count { filter_less { all_rows ; c1 ; val1 } } ; n1 }": [
        "exactly {n1} entries stay under {val1} in {c1}",
    ],
    "eq { hop { argmax { all_rows ; c1 } ; c2 } ; val1 }": [
        "{val1} tops the table in {c1}",
        "no entry beats {val1} on {c1}",
    ],
    "eq { hop { argmin { all_rows ; c1 } ; c2 } ; val1 }": [
        "{val1} sits last in {c1}",
        "no entry ranks below {val1} on {c1}",
    ],
    "eq { max { all_rows ; c1 } ; val1 }": [
        "{val1} is the peak value of {c1}",
    ],
    "eq { min { all_rows ; c1 } ; val1 }": [
        "{val1} is the floor value of {c1}",
    ],
    "greater { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; "
    "hop { filter_eq { all_rows ; c1 ; val2 } ; c2 } }": [
        "{val1} outranks {val2} on {c2}",
        "on {c2}, {val1} comes out ahead of {val2}",
    ],
    "less { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; "
    "hop { filter_eq { all_rows ; c1 ; val2 } ; c2 } }": [
        "{val1} trails {val2} on {c2}",
    ],
    "round_eq { sum { all_rows ; c1 } ; val1 }": [
        "summing every row, {c1} lands near {val1}",
    ],
    "round_eq { avg { all_rows ; c1 } ; val1 }": [
        "the typical {c1} sits near {val1}",
    ],
    "most_eq { all_rows ; c1 ; val1 }": [
        "{val1} dominates the {c1} column",
    ],
    "all_eq { all_rows ; c1 ; val1 }": [
        "without exception, {c1} reads {val1}",
    ],
    "most_greater { all_rows ; c1 ; val1 }": [
        "the bulk of entries top {val1} in {c1}",
    ],
    "most_less { all_rows ; c1 ; val1 }": [
        "the bulk of entries stay under {val1} in {c1}",
    ],
    "all_greater { all_rows ; c1 ; val1 }": [
        "without exception, {c1} tops {val1}",
    ],
    "only { filter_eq { all_rows ; c1 ; val1 } }": [
        "{val1} is unique within the {c1} column",
    ],
    "eq { nth_max { all_rows ; c1 ; n1 } ; val1 }": [
        "{val1} ranks {n1} from the top on {c1}",
    ],
    "eq { hop { nth_argmax { all_rows ; c1 ; n1 } ; c2 } ; val1 }": [
        "counting down the {c1} ranking, spot {n1} belongs to {val1}",
    ],
    "eq { hop { nth_argmin { all_rows ; c1 ; n1 } ; c2 } ; val1 }": [
        "counting up from the bottom of the {c1} ranking, spot {n1} belongs to {val1}",
    ],
    "and { eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; val2 } ; "
    "eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c3 } ; val3 } }": [
        "{val1} pairs a {c2} of {val2} with a {c3} of {val3}",
    ],
    "round_eq { diff { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; "
    "hop { filter_eq { all_rows ; c1 ; val2 } ; c2 } } ; val3 }": [
        "the gap in {c2} between {val1} and {val2} is close to {val3}",
    ],
    # arithmetic -> human questions
    "subtract ( the val1 of c1 , the val2 of c1 )": [
        "how much bigger is the {c1} for {val1} compared with {val2} ?",
    ],
    "subtract ( the val1 of c1 , the val1 of c2 )": [
        "how did {val1} move between {c2} and {c1} ?",
    ],
    "subtract ( the val1 of c1 , the val2 of c1 ) , "
    "divide ( #0 , the val2 of c1 )": [
        "in percentage terms, how do {val1} and {val2} differ on {c1} ?",
    ],
    "subtract ( the val1 of c1 , the val1 of c2 ) , "
    "divide ( #0 , the val1 of c2 )": [
        "what was the percentage change in {val1} between {c2} and {c1} ?",
        "expressed as a percentage, how did {val1} move from {c2} to {c1} ?",
    ],
    "divide ( the val1 of c1 , the val2 of c1 )": [
        "relative to {val2}, how many times larger is {val1} on {c1} ?",
    ],
    "divide ( the val1 of c1 , table_sum ( c1 ) )": [
        "out of the overall {c1}, what fraction belongs to {val1} ?",
    ],
    "add ( the val1 of c1 , the val2 of c1 )": [
        "taken together, what do {val1} and {val2} amount to in {c1} ?",
    ],
    "add ( the val1 of c1 , the val2 of c1 ) , divide ( #0 , const_2 )": [
        "averaging {val1} and {val2}, what is the {c1} ?",
    ],
    "add ( the val1 of c1 , the val1 of c2 )": [
        "combining {c1} and {c2}, what is the total {val1} ?",
    ],
    "table_sum ( c1 )": [
        "summed over every line, what is {c1} ?",
    ],
    "table_average ( c1 )": [
        "averaged over every line, what is {c1} ?",
    ],
    "table_max ( c1 )": [
        "which value peaks the {c1} column ?",
    ],
    "table_min ( c1 )": [
        "which value bottoms the {c1} column ?",
    ],
    "subtract ( table_max ( c1 ) , table_min ( c1 ) )": [
        "how wide is the spread of {c1} ?",
    ],
    "greater ( the val1 of c1 , the val2 of c1 )": [
        "does {val1} beat {val2} on {c1} ?",
    ],
    "greater ( the val1 of c1 , the val1 of c2 )": [
        "comparing {c1} against {c2}, did {val1} go up ?",
    ],
    "divide ( the val1 of c1 , the val1 of c2 ) , "
    "subtract ( #0 , const_1 )": [
        "at what rate did {val1} expand between {c2} and {c1} ?",
    ],
    "divide ( the val1 of c1 , the val2 of c1 ) , "
    "multiply ( #0 , const_100 )": [
        "as a percent of {val2} , where does the {c1} of {val1} stand ?",
    ],
    "divide ( the val1 of c1 , the val1 of c2 ) , "
    "exp ( #0 , const_0_5 ) , subtract ( #1 , const_1 )": [
        "over the two periods {c2} to {c1} , what compound rate did "
        "{val1} post ?",
    ],
}


def realize_human(sample: SampledProgram, rng: random.Random) -> str:
    """Annotator-style NL for a sampled program."""
    options = HUMAN_SKELETONS.get(sample.template.pattern)
    if options and rng.random() < 0.85:
        return fill_skeleton(choice(rng, options), sample.bindings)
    return RealizationGrammar().realize(sample, rng)
