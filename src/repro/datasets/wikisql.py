"""WikiSQL-like benchmark: Wikipedia table QA via SQL-shaped questions."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets import naming
from repro.datasets.base import Benchmark, DatasetSplit, SplitName
from repro.datasets.gold import GoldAnnotator
from repro.datasets.synth.wikipedia import make_wiki_context
from repro.pipelines.samples import ReasoningSample, TaskType
from repro.programs.base import ProgramKind
from repro.rng import choice, make_rng, spawn
from repro.tables.context import TableContext


@dataclass(frozen=True)
class WikiSQLConfig:
    """Shape of the synthetic WikiSQL stand-in (data-rich, table-only).

    ``topics`` gives the topical structure the Figure 1 topic-shift
    experiment trains/evaluates across.
    """

    train_contexts: int = 150
    dev_contexts: int = 45
    test_contexts: int = 45
    samples_per_context: int = 4
    topics: tuple[str, ...] = tuple(naming.WIKI_TOPICS)
    seed: int = 303


def make_wikisql(config: WikiSQLConfig | None = None) -> Benchmark:
    """Build the WikiSQL-like benchmark."""
    config = config or WikiSQLConfig()
    rng = make_rng(config.seed)
    annotator = GoldAnnotator(
        rng=spawn(rng, "gold"),
        task=TaskType.QUESTION_ANSWERING,
        program_kinds=(ProgramKind.SQL,),
    )
    splits: dict[str, DatasetSplit] = {}
    sizes = {
        SplitName.TRAIN: config.train_contexts,
        SplitName.DEV: config.dev_contexts,
        SplitName.TEST: config.test_contexts,
    }
    for split_name, n_contexts in sizes.items():
        contexts: list[TableContext] = []
        gold: list[ReasoningSample] = []
        context_rng = spawn(rng, f"contexts-{split_name}")
        for index in range(n_contexts):
            topic = choice(context_rng, list(config.topics))
            context = make_wiki_context(
                context_rng, topic=topic, uid=f"wsql-{split_name}-{index}"
            )
            # WikiSQL evidence is the table alone; drop the paragraphs.
            context = TableContext(
                table=context.table,
                paragraphs=(),
                uid=context.uid,
                meta={"domain": "wikipedia", "topic": topic,
                      "split": split_name.value},
            )
            contexts.append(context)
            for serial in range(config.samples_per_context):
                sample = annotator.table_sample(
                    context, f"{context.uid}-g{serial}", kind=ProgramKind.SQL
                )
                if sample is not None:
                    gold.append(sample)
        splits[split_name.value] = DatasetSplit(
            name=split_name, contexts=tuple(contexts), gold=tuple(gold)
        )
    return Benchmark(
        name="wikisql",
        task=TaskType.QUESTION_ANSWERING,
        domain="wikipedia",
        splits=splits,
    )
