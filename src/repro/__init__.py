"""UCTR: a Unified framework for Unsupervised Complex Tabular Reasoning.

Reproduction of Li et al., "Toward a Unified Framework for Unsupervised
Complex Tabular Reasoning" (ICDE 2023).  The package synthesizes
complex tabular-reasoning training data — questions and claims with
multi-cell logic — from *unlabeled* tables and their surrounding text,
then trains downstream reasoning models on it.

Quickstart::

    from repro import UCTR, UCTRConfig
    from repro.datasets import make_wikisql

    bench = make_wikisql()
    framework = UCTR(UCTRConfig(program_kinds=("sql",)))
    framework.fit(list(bench.train.contexts))
    samples = framework.generate(list(bench.train.contexts))

Package layout:

* :mod:`repro.tables` — tables, typed values, table-text contexts.
* :mod:`repro.programs` — the three executable DSLs (SQL, logical
  forms, arithmetic expressions).
* :mod:`repro.templates` — program templates with typed placeholders.
* :mod:`repro.sampling` — random program sampling, filtering, labeling.
* :mod:`repro.nlgen` — the trainable NL-Generator.
* :mod:`repro.operators` — Table-To-Text and Text-To-Table.
* :mod:`repro.pipelines` — table-only / splitting / expansion pipelines
  and the :class:`UCTR` facade.
* :mod:`repro.telemetry` — generation counters, timers, and JSON
  run-reports.
* :mod:`repro.parallel` — seed-stable multiprocess generation executor
  behind ``UCTR.generate(workers=...)``.
* :mod:`repro.datasets` — synthetic benchmark stand-ins.
* :mod:`repro.models` — downstream verifiers and QA models.
* :mod:`repro.train` / :mod:`repro.eval` — training plans and metrics.
* :mod:`repro.experiments` — regenerates every paper table and figure.
"""

from repro.errors import ReproError
from repro.pipelines import (
    EvidenceType,
    ReasoningSample,
    TaskType,
    UCTR,
    UCTRConfig,
)
from repro.programs import ProgramKind, execute_program, parse_program
from repro.tables import Table, TableContext

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "EvidenceType",
    "ReasoningSample",
    "TaskType",
    "UCTR",
    "UCTRConfig",
    "ProgramKind",
    "execute_program",
    "parse_program",
    "Table",
    "TableContext",
    "__version__",
]
