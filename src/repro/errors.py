"""Exception hierarchy for the UCTR reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at pipeline boundaries.  The data
generation pipeline (paper Algorithm 1) treats most program-level errors
as *filter signals*: a program that fails to parse, sample, or execute is
simply discarded, mirroring the paper's "if the execution result is empty,
we discard this program" rule.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class TableError(ReproError):
    """Errors in the table substrate (bad schema, unknown column...)."""


class SchemaError(TableError):
    """A table schema is inconsistent (duplicate columns, ragged rows...)."""


class ColumnNotFoundError(TableError):
    """A referenced column does not exist in the table."""

    def __init__(self, column: str, available: list[str] | None = None):
        self.column = column
        self.available = list(available or [])
        detail = f"column {column!r} not found"
        if self.available:
            detail += f" (available: {', '.join(self.available)})"
        super().__init__(detail)


class ValueParseError(TableError):
    """A raw cell string could not be parsed into the requested type."""


class ProgramError(ReproError):
    """Base class for program (SQL / logical form / arithmetic) errors."""


class ProgramParseError(ProgramError):
    """A program string could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class ProgramExecutionError(ProgramError):
    """A syntactically valid program failed during execution."""


class ProgramTypeError(ProgramExecutionError):
    """An operator received an argument of the wrong runtime type."""


class EmptyResultError(ProgramExecutionError):
    """Execution produced an empty result; the sample must be discarded."""


class TemplateError(ReproError):
    """Errors in template abstraction or placeholder bookkeeping."""


class SamplingError(ReproError):
    """A program template could not be instantiated on a given table."""


class GenerationError(ReproError):
    """The NL-Generator could not realize a program as natural language."""


class OperatorError(ReproError):
    """Table-To-Text / Text-To-Table operator failures."""


class MessyTableError(ReproError):
    """Unknown corruption operator or profile (:mod:`repro.messy`).

    Note the *sanitizer* never raises: this error only guards the
    perturbation side, where an unknown profile name is a caller bug.
    """


class DatasetError(ReproError):
    """Errors in dataset synthesis or loading."""


class FileFormatError(DatasetError):
    """A persisted file is malformed (truncated line, invalid JSON...).

    ``path`` and ``line_number`` pin the offending location so a corrupt
    multi-gigabyte corpus can be repaired instead of regenerated.
    """

    def __init__(
        self,
        message: str,
        path: str | None = None,
        line_number: int | None = None,
    ):
        self.path = path
        self.line_number = line_number
        if path is not None and line_number is not None:
            message = f"{path}:{line_number}: {message}"
        elif path is not None:
            message = f"{path}: {message}"
        super().__init__(message)


class IntegrityError(DatasetError):
    """A persisted corpus fails its integrity manifest.

    Raised at *load* time when the sidecar manifest written by
    :func:`repro.io.save_samples`/:func:`repro.io.save_contexts` does not
    match the data file — a flipped bit, a truncated tail, a record-count
    drift, or a manifest that is itself corrupt or missing (in
    ``integrity="require"`` mode).  Catching it one stage downstream is
    the whole point: a poisoned corpus surfaces here, not as a weird
    metric three stages later.
    """

    def __init__(self, message: str, path: str | None = None):
        self.path = path
        if path is not None:
            message = f"{path}: {message}"
        super().__init__(message)


class StoreError(ReproError):
    """Errors in the table corpus store (:mod:`repro.store`).

    Covers *logical* misuse — unknown doc ids, opening a directory that
    is not a store, querying before an index exists, a stale index whose
    shard fingerprints no longer match the store manifest.  *Physical*
    damage (flipped bytes, truncated shards, dropped manifests) raises
    :class:`IntegrityError`, exactly as it does for corpora and model
    artifacts.
    """


class ExecutorError(ReproError):
    """The parallel execution runtime broke an internal invariant."""


class QuarantinedContextError(ExecutorError):
    """A context was quarantined and the caller asked for strict mode.

    Carries enough structure (``index``, ``uid``, ``reason``) for a
    supervisor to decide whether to drop the context or abort the run.
    """

    def __init__(self, index: int, uid: str, reason: str, detail: str = ""):
        self.index = index
        self.uid = uid
        self.reason = reason
        self.detail = detail
        message = f"context {index} ({uid!r}) quarantined: {reason}"
        if detail:
            message += f" — {detail}"
        super().__init__(message)


class CheckpointError(ReproError):
    """A checkpoint directory is missing, corrupt, or from another run."""


class ModelError(ReproError):
    """Errors in model construction, training, or inference."""


class ServeError(ReproError):
    """Errors in the online inference subsystem (:mod:`repro.serve`)."""


class RegistryError(ServeError):
    """A model registry lookup failed (unknown model, version, task)."""


class OverloadedError(ServeError):
    """The serving engine's admission queue is full.

    The 429 of the serving stack: the request was *not* enqueued and
    the engine did no work for it.  ``retry_after`` is the engine's
    estimate (in seconds) of when capacity frees up, suitable for an
    HTTP ``Retry-After`` header or a client-side backoff
    (:func:`repro.runtime.retry.run_with_retry` treats this like any
    retryable fault).
    """

    def __init__(self, message: str, retry_after: float = 0.05):
        self.retry_after = max(0.0, retry_after)
        super().__init__(message)


class EngineStoppedError(ServeError):
    """A request was submitted to a stopped or draining engine."""


class DeadlineExceededError(ServeError):
    """A request's end-to-end deadline budget ran out before compute.

    The 504 of the serving stack: raised *up front* — at pool dispatch
    or engine admission — when the remaining budget is already below
    the replica's recent p50 compute time, so no work is done only to
    be thrown away.  ``remaining_s`` is what was left of the budget and
    ``estimate_s`` the compute estimate that ruled it insufficient
    (``None`` when the budget was simply gone).
    """

    def __init__(
        self,
        message: str,
        remaining_s: float = 0.0,
        estimate_s: float | None = None,
    ):
        self.remaining_s = remaining_s
        self.estimate_s = estimate_s
        super().__init__(message)


class EvaluationError(ReproError):
    """Errors computing evaluation metrics."""
