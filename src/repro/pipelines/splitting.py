"""Table-Splitting pipeline (paper Section III-A, upper half of Fig. 3).

Execute a program on the full table, move one highlighted row into a
generated sentence via Table-To-Text, and emit a joint table-text sample
whose evidence spans the sub-table *and* the sentence.  When every
highlighted cell lives in the moved row, the sample degrades gracefully
to text-only evidence — these are kept and tagged, matching TAT-QA's
``Text`` answer source.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.operators.table_to_text import TableToText
from repro.pipelines.base import PipelineTools, task_for_kind
from repro.pipelines.samples import EvidenceType, ReasoningSample, TaskType
from repro.programs.base import ProgramKind
from repro.tables.context import TableContext


class SplittingPipeline:
    """Generate joint table-text samples by splitting the table."""

    name = "splitting"

    def __init__(
        self,
        tools: PipelineTools,
        kinds: tuple[ProgramKind, ...],
        operator: TableToText | None = None,
    ):
        self._tools = tools
        self._kinds = tuple(kinds)
        self._operator = operator or TableToText()

    def generate(
        self, context: TableContext, budget: int
    ) -> list[ReasoningSample]:
        out: list[ReasoningSample] = []
        attempts = 0
        while len(out) < budget and attempts < budget * 6:
            attempts += 1
            sample = self._one(context, len(out))
            if sample is not None:
                out.append(sample)
        self._tools.telemetry.shortfall(
            self.name, budget - len(out), "attempts_exhausted"
        )
        return out

    def _one(self, context: TableContext, serial: int) -> ReasoningSample | None:
        rng = self._tools.rng
        telemetry = self._tools.telemetry
        kind = self._kinds[rng.randrange(len(self._kinds))]
        sampled = self._tools.draw_program(kind, context.table, self.name)
        if sampled is None:
            return None
        task = task_for_kind(kind)
        label = None
        if task is TaskType.FACT_VERIFICATION:
            claim = self._tools.label_claim(sampled)
            sampled, label = claim.sample, claim.label
        try:
            split = self._operator.split(
                context.table, sampled.result.highlighted_cells, rng
            )
        except ReproError:
            telemetry.reject(self.name, "split_failed")
            return None
        if not self._round_trips(context, split, sampled):
            telemetry.reject(self.name, "round_trip_failed")
            return None
        telemetry.success(self.name, kind.value)
        sentence = self._tools.verbalize(sampled)
        moved_row = split.row_index
        rows_touched = {row for row, _ in sampled.result.highlighted_cells}
        if rows_touched <= {moved_row}:
            evidence_type = EvidenceType.TEXT
        else:
            evidence_type = EvidenceType.TABLE_TEXT
        # Evidence cells shift down past the removed row in the sub-table.
        remapped = frozenset(
            (row - 1 if row > moved_row else row, column)
            for row, column in sampled.result.highlighted_cells
            if row != moved_row
        )
        new_context = TableContext(
            table=split.sub_table,
            paragraphs=(),
            uid=context.uid,
            meta=dict(context.meta),
        ).add_paragraph(split.sentence, source="table_to_text")
        return ReasoningSample(
            uid=f"{context.uid}-split-{serial}",
            task=task,
            context=new_context,
            sentence=sentence,
            answer=tuple(sampled.answer) if task is TaskType.QUESTION_ANSWERING else (),
            label=label,
            evidence_type=evidence_type,
            evidence_cells=remapped,
            provenance={
                "pipeline": self.name,
                "program_kind": sampled.kind.value,
                "category": sampled.template.category,
                "pattern": sampled.template.pattern,
                "program": sampled.program.source,
                "moved_row": moved_row,
            },
        )

    def _round_trips(self, context, split, sampled) -> bool:
        """The generated sentence must give back the evidence it took.

        A split is only useful when a reader (human or extractor) can
        recover the moved row's highlighted cells from the sentence;
        otherwise the question becomes unanswerable and the sample is
        label noise.  We check with the same extractor the models use.
        """
        from repro.operators.text_to_table import RecordExtractor

        table = context.table
        name_column = table.row_name_column or table.column_names[0]
        extractor = RecordExtractor(table.column_names)
        record = extractor.extract_record(split.sentence, name_column)
        for row, column in sampled.result.highlighted_cells:
            if row != split.row_index or column == name_column:
                continue
            extracted = record.get(column)
            if extracted is None:
                return False
            if not extracted.equals(table.cell(row, column)):
                return False
        return True
