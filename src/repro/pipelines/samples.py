"""Reasoning sample types shared by generation pipelines and datasets."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.sampling.labeler import ClaimLabel
from repro.tables.context import TableContext


class TaskType(str, Enum):
    """The two reasoning tasks the paper evaluates."""

    QUESTION_ANSWERING = "qa"
    FACT_VERIFICATION = "verification"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class EvidenceType(str, Enum):
    """Which modality the reasoning needs (Table VIII's "Data Source")."""

    TABLE = "table"
    TEXT = "text"
    TABLE_TEXT = "table-text"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ReasoningSample:
    """One (synthetic or gold) tabular reasoning training instance.

    For question answering, ``answer`` holds the denotation strings and
    ``label`` is ``None``; for fact verification, ``label`` holds the
    claim verdict and ``answer`` is empty.  ``evidence_cells`` is the
    gold evidence set used by the FEVEROUS score.
    """

    uid: str
    task: TaskType
    context: TableContext
    sentence: str  # the question or the claim
    answer: tuple[str, ...] = ()
    label: ClaimLabel | None = None
    evidence_type: EvidenceType = EvidenceType.TABLE
    evidence_cells: frozenset[tuple[int, str]] = frozenset()
    provenance: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.task is TaskType.FACT_VERIFICATION and self.label is None:
            raise ValueError("verification samples need a label")
        if self.task is TaskType.QUESTION_ANSWERING and not self.answer:
            raise ValueError("QA samples need an answer")

    @property
    def table(self):
        return self.context.table

    @property
    def text(self) -> str:
        return self.context.text

    def to_json(self) -> dict[str, Any]:
        return {
            "uid": self.uid,
            "task": self.task.value,
            "sentence": self.sentence,
            "answer": list(self.answer),
            "label": self.label.value if self.label else None,
            "evidence_type": self.evidence_type.value,
            "evidence_cells": sorted(list(cell) for cell in self.evidence_cells),
            "context": self.context.to_json(),
            "provenance": dict(self.provenance),
        }

    @staticmethod
    def from_json(payload: dict[str, Any]) -> "ReasoningSample":
        label = payload.get("label")
        return ReasoningSample(
            uid=payload["uid"],
            task=TaskType(payload["task"]),
            context=TableContext.from_json(payload["context"]),
            sentence=payload["sentence"],
            answer=tuple(payload.get("answer", [])),
            label=ClaimLabel(label) if label else None,
            evidence_type=EvidenceType(payload.get("evidence_type", "table")),
            evidence_cells=frozenset(
                (int(row), column)
                for row, column in payload.get("evidence_cells", [])
            ),
            provenance=dict(payload.get("provenance", {})),
        )
