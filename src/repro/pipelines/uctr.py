"""The UCTR facade: one object, Algorithm 1 end to end.

Typical use::

    config = UCTRConfig(program_kinds=("logic",), seed=7)
    framework = UCTR(config)
    framework.fit(contexts)          # trains the NL-Generators
    samples = framework.generate(contexts)

``fit`` builds the program↔NL parallel corpora on the *unlabeled* tables
and trains one NL-Generator per program kind — the offline equivalent of
fine-tuning BART/GPT-2 on SQUALL / Logic2Text / FinQA.  ``generate``
then runs the enabled pipelines over every context.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.nlgen.corpus import build_parallel_corpus
from repro.nlgen.model import NLGenerator, NLGeneratorConfig
from repro.pipelines.base import PipelineTools
from repro.pipelines.expansion import ExpansionPipeline
from repro.pipelines.samples import ReasoningSample
from repro.pipelines.splitting import SplittingPipeline
from repro.pipelines.table_only import TableOnlyPipeline
from repro.programs.base import ProgramKind
from repro.rng import make_rng, spawn
from repro.tables.context import TableContext


@dataclass(frozen=True)
class UCTRConfig:
    """Configuration of the unified framework.

    ``program_kinds`` selects the DSLs (the paper picks per benchmark:
    logic for FEVEROUS/SEM-TAB-FACTS, SQL for WikiSQL, SQL+arith for
    TAT-QA).  ``use_table_to_text`` / ``use_text_to_table`` toggle the
    joint-evidence operators (both off == the "w/o T2T" ablation).
    """

    program_kinds: tuple[str, ...] = ("logic",)
    use_table_to_text: bool = True
    use_text_to_table: bool = True
    samples_per_context: int = 4
    #: fraction of the per-context budget routed to joint pipelines.
    joint_fraction: float = 0.4
    nl_noise_rate: float = 0.05
    corpus_pairs_per_table: int = 4
    seed: int = 0

    def kinds(self) -> tuple[ProgramKind, ...]:
        return tuple(ProgramKind(kind) for kind in self.program_kinds)


class UCTR:
    """Unsupervised Complex Tabular Reasoning data generator."""

    def __init__(
        self,
        config: UCTRConfig | None = None,
        template_overrides: dict[ProgramKind, list] | None = None,
    ):
        self.config = config or UCTRConfig()
        self._rng = make_rng(self.config.seed)
        self._generators: dict[ProgramKind, NLGenerator] = {}
        self._tools: PipelineTools | None = None
        self._template_overrides = dict(template_overrides or {})

    # -- training ---------------------------------------------------------
    def fit(self, contexts: list[TableContext]) -> "UCTR":
        """Train the NL-Generators on corpora built from these tables."""
        corpus_rng = spawn(self._rng, "nl-corpus")
        tables = [context.table for context in contexts]
        nl_config = NLGeneratorConfig(noise_rate=self.config.nl_noise_rate)
        for kind in self.config.kinds():
            pairs = build_parallel_corpus(
                kind,
                tables,
                corpus_rng,
                pairs_per_table=self.config.corpus_pairs_per_table,
            )
            self._generators[kind] = NLGenerator(nl_config).train(pairs)
        self._tools = PipelineTools(
            rng=spawn(self._rng, "pipelines"),
            generators=self._generators,
            template_overrides=self._template_overrides,
        )
        return self

    @property
    def generators(self) -> dict[ProgramKind, NLGenerator]:
        return dict(self._generators)

    # -- generation ---------------------------------------------------------
    def generate(
        self, contexts: list[TableContext], budget: int | None = None
    ) -> list[ReasoningSample]:
        """Run Algorithm 1 over every context.

        ``budget`` caps the total number of emitted samples; by default
        every context contributes ``samples_per_context``.
        """
        tools = self._require_tools()
        kinds = self.config.kinds()
        table_only = TableOnlyPipeline(tools, kinds)
        splitting = (
            SplittingPipeline(tools, kinds)
            if self.config.use_table_to_text
            else None
        )
        expansion = (
            ExpansionPipeline(tools, kinds)
            if self.config.use_text_to_table
            else None
        )
        out: list[ReasoningSample] = []
        per_context = self.config.samples_per_context
        joint = [p for p in (splitting, expansion) if p is not None]
        joint_budget = (
            round(per_context * self.config.joint_fraction) if joint else 0
        )
        flat_budget = per_context - joint_budget
        for context in contexts:
            if budget is not None and len(out) >= budget:
                break
            out.extend(table_only.generate(context, flat_budget))
            remaining = joint_budget
            for index, pipeline in enumerate(joint):
                share = remaining // (len(joint) - index)
                produced = pipeline.generate(context, share)
                out.extend(produced)
                remaining -= share
                shortfall = share - len(produced)
                if shortfall > 0:
                    # Joint generation can fail (no text, unsplittable
                    # table); keep the volume up with table-only samples.
                    out.extend(table_only.generate(context, shortfall))
        if budget is not None:
            out = out[:budget]
        return out

    def generate_for_context(
        self, context: TableContext, budget: int
    ) -> list[ReasoningSample]:
        """Convenience: Algorithm 1 on a single context."""
        return self.generate([context], budget=budget)

    def _require_tools(self) -> PipelineTools:
        if self._tools is None:
            raise RuntimeError("call fit() before generate()")
        return self._tools
