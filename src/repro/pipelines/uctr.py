"""The UCTR facade: one object, Algorithm 1 end to end.

Typical use::

    config = UCTRConfig(program_kinds=("logic",), seed=7)
    framework = UCTR(config)
    framework.fit(contexts)          # trains the NL-Generators
    samples = framework.generate(contexts, workers=4)

``fit`` builds the program↔NL parallel corpora on the *unlabeled* tables
and trains one NL-Generator per program kind — the offline equivalent of
fine-tuning BART/GPT-2 on SQUALL / Logic2Text / FinQA.  ``generate``
then runs the enabled pipelines over every context.

Determinism contract
--------------------
Each context is generated from its **own named RNG stream**,
``rng_from_key(pipeline_key, "context", str(index))``, where
``pipeline_key`` is fixed at :meth:`UCTR.fit` time and ``index`` is the
context's position in the ``generate`` call.  Contexts therefore neither
see nor perturb each other's randomness, which is what makes the output
independent of *how* the work is scheduled: ``workers=1`` and
``workers=N`` produce byte-identical sample lists for a fixed seed (the
parallel executor in :mod:`repro.parallel` merges worker results back
into context order).  Telemetry recording draws no randomness either, so
instrumented and bare runs also match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro import profiling
from repro.nlgen.corpus import build_parallel_corpus
from repro.nlgen.model import NLGenerator, NLGeneratorConfig
from repro.pipelines.base import PipelineTools
from repro.pipelines.expansion import ExpansionPipeline
from repro.pipelines.samples import ReasoningSample
from repro.pipelines.splitting import SplittingPipeline
from repro.pipelines.table_only import TableOnlyPipeline
from repro.programs.base import ProgramKind
from repro.rng import make_rng, rng_from_key, spawn, spawn_key
from repro.tables.context import TableContext
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.retry import RetryPolicy


@dataclass(frozen=True)
class UCTRConfig:
    """Configuration of the unified framework.

    ``program_kinds`` selects the DSLs (the paper picks per benchmark:
    logic for FEVEROUS/SEM-TAB-FACTS, SQL for WikiSQL, SQL+arith for
    TAT-QA).  ``use_table_to_text`` / ``use_text_to_table`` toggle the
    joint-evidence operators (both off == the "w/o T2T" ablation).
    """

    program_kinds: tuple[str, ...] = ("logic",)
    use_table_to_text: bool = True
    use_text_to_table: bool = True
    samples_per_context: int = 4
    #: fraction of the per-context budget routed to joint pipelines.
    joint_fraction: float = 0.4
    nl_noise_rate: float = 0.05
    corpus_pairs_per_table: int = 4
    #: corruption profile from :mod:`repro.messy` applied to each context
    #: before generation (None == clean).  Part of the config, so it is
    #: baked into checkpoint fingerprints: a perturbed run can never be
    #: resumed from (or spliced into) a clean run's checkpoint.
    perturb: str | None = None
    seed: int = 0

    def kinds(self) -> tuple[ProgramKind, ...]:
        return tuple(ProgramKind(kind) for kind in self.program_kinds)


@dataclass(frozen=True)
class GenerationState:
    """Everything Algorithm 1 needs for one context, picklable.

    This is the unit :mod:`repro.parallel` ships to worker processes:
    the config, the *fitted* NL-Generators, template overrides, and the
    ``pipeline_key`` that roots every per-context RNG stream.  It is
    deliberately free of open handles and RNG objects so one pickle per
    worker rehydrates the full engine.
    """

    config: UCTRConfig
    generators: dict[ProgramKind, NLGenerator]
    template_overrides: dict[ProgramKind, list] = field(default_factory=dict)
    pipeline_key: str = ""


def generate_for_one_context(
    state: GenerationState,
    index: int,
    context: TableContext,
    telemetry: Telemetry,
) -> list[ReasoningSample]:
    """Algorithm 1 on a single context, on its own RNG stream.

    This module-level function is the worker-side entry point of the
    parallel executor; the serial path in :meth:`UCTR.generate` calls
    the very same code, which is why the two agree sample-for-sample.
    """
    config = state.config
    if config.perturb is not None:
        from repro.messy import perturb_context

        # Perturbation draws from its own named stream (keyed off the
        # pipeline key and the context's position), so enabling it does
        # not shift the generation streams — and the perturbed run is as
        # schedule-independent as the clean one.
        context = perturb_context(
            context, f"{state.pipeline_key}:messy:{index}", config.perturb
        )
    tools = PipelineTools(
        rng=rng_from_key(state.pipeline_key, "context", str(index)),
        generators=dict(state.generators),
        template_overrides=dict(state.template_overrides),
        telemetry=telemetry,
    )
    kinds = config.kinds()
    table_only = TableOnlyPipeline(tools, kinds)
    splitting = (
        SplittingPipeline(tools, kinds) if config.use_table_to_text else None
    )
    expansion = (
        ExpansionPipeline(tools, kinds) if config.use_text_to_table else None
    )
    joint = [p for p in (splitting, expansion) if p is not None]
    per_context = config.samples_per_context
    joint_budget = round(per_context * config.joint_fraction) if joint else 0
    flat_budget = per_context - joint_budget

    out: list[ReasoningSample] = []
    flat_emitted = 0
    try:
        with telemetry.timer("pipeline/table_only"):
            flat = table_only.generate(context, flat_budget)
        flat_emitted += len(flat)
        out.extend(flat)
        remaining = joint_budget
        for position, pipeline in enumerate(joint):
            share = remaining // (len(joint) - position)
            with telemetry.timer(f"pipeline/{pipeline.name}"):
                produced = pipeline.generate(context, share)
            out.extend(produced)
            remaining -= share
            shortfall = share - len(produced)
            if shortfall > 0:
                # Joint generation can fail (no text, unsplittable
                # table); keep the volume up with table-only samples,
                # continuing the uid serial so backfill never collides.
                with telemetry.timer("pipeline/table_only"):
                    backfill = table_only.generate(
                        context, shortfall, start=flat_emitted
                    )
                flat_emitted += len(backfill)
                out.extend(backfill)
    finally:
        # Profile stages flush into this context's sink even on failure
        # — under retry that sink is the attempt's scratch telemetry, so
        # a failed attempt's profile is discarded with its counters.
        profiling.flush_into(telemetry)
    return out


class UCTR:
    """Unsupervised Complex Tabular Reasoning data generator."""

    def __init__(
        self,
        config: UCTRConfig | None = None,
        template_overrides: dict[ProgramKind, list] | None = None,
    ):
        self.config = config or UCTRConfig()
        self._rng = make_rng(self.config.seed)
        self._generators: dict[ProgramKind, NLGenerator] = {}
        self._pipeline_key: str | None = None
        self._template_overrides = dict(template_overrides or {})
        self._last_telemetry: Telemetry | None = None

    # -- training ---------------------------------------------------------
    def fit(self, contexts: list[TableContext]) -> "UCTR":
        """Train the NL-Generators on corpora built from these tables."""
        corpus_rng = spawn(self._rng, "nl-corpus")
        tables = [context.table for context in contexts]
        nl_config = NLGeneratorConfig(noise_rate=self.config.nl_noise_rate)
        # Corpus building executes programs too; the "fit" stage keeps
        # that time distinguishable from generation-phase executor time
        # in a profiled run ("fit/executor" vs "sampler/executor").
        with profiling.stage("fit"):
            for kind in self.config.kinds():
                pairs = build_parallel_corpus(
                    kind,
                    tables,
                    corpus_rng,
                    pairs_per_table=self.config.corpus_pairs_per_table,
                )
                self._generators[kind] = NLGenerator(nl_config).train(pairs)
        self._pipeline_key = spawn_key(self._rng, "pipelines")
        return self

    @property
    def generators(self) -> dict[ProgramKind, NLGenerator]:
        return dict(self._generators)

    @property
    def last_telemetry(self) -> Telemetry | None:
        """The telemetry sink of the most recent ``generate`` call."""
        return self._last_telemetry

    def generation_state(self) -> GenerationState:
        """The picklable engine state (requires :meth:`fit` first)."""
        return GenerationState(
            config=self.config,
            generators=dict(self._generators),
            template_overrides=dict(self._template_overrides),
            pipeline_key=self._require_fitted(),
        )

    # -- generation ---------------------------------------------------------
    def generate(
        self,
        contexts: list[TableContext],
        budget: int | None = None,
        workers: int = 1,
        telemetry: Telemetry | None = None,
        *,
        retry: "RetryPolicy | None" = None,
        checkpoint_dir: "str | Path | None" = None,
        resume_from: "str | Path | None" = None,
        checkpoint_every: int = 16,
        strict_quarantine: bool = False,
        perturb: str | None = None,
    ) -> list[ReasoningSample]:
        """Run Algorithm 1 over every context, fault-tolerantly.

        ``budget`` caps the total number of emitted samples; by default
        every context contributes ``samples_per_context``.  ``workers``
        > 1 fans contexts out to worker processes via
        :mod:`repro.parallel`; the merged output is byte-identical to
        the serial path for a fixed seed.  Pass a ``telemetry`` sink to
        accumulate across calls; otherwise a fresh one is created and
        exposed as :attr:`last_telemetry`.

        A context whose execution fails — an exception surviving the
        ``retry`` policy, a worker killed under it, a blown deadline —
        is *quarantined*: it contributes zero samples and a structured
        record in ``telemetry.events("quarantine")`` (and the run
        report), and the run continues.  ``strict_quarantine=True``
        raises :class:`~repro.errors.QuarantinedContextError` instead.

        ``perturb`` names a corruption profile from :mod:`repro.messy`
        ("light", "cells", "heavy"...) applied to each context before
        generation — the messy-table training/robustness arm.  It
        overrides ``config.perturb`` for this call and participates in
        the checkpoint fingerprint like any other config field.

        ``checkpoint_dir`` streams every completed context to disk
        (append + fsync, atomically-replaced manifest) so a crashed or
        killed run loses at most the contexts in flight.
        ``resume_from`` replays a checkpoint: completed contexts are
        loaded byte-identically, previously quarantined ones stay
        quarantined, and only the remainder is generated.  On
        ``KeyboardInterrupt`` a final partial checkpoint is written
        before the interrupt propagates.
        """
        from repro.errors import CheckpointError, QuarantinedContextError
        from repro.runtime import (
            CheckpointManager,
            QuarantineRecord,
            RetryPolicy,
            load_checkpoint,
            record_quarantine,
            run_context,
            run_fingerprint,
        )

        state = self.generation_state()
        if perturb is not None:
            from dataclasses import replace

            state = replace(
                state, config=replace(state.config, perturb=perturb)
            )
        if state.config.perturb is not None:
            from repro.messy import profile_operators

            # Fail fast on an unknown profile name — before the
            # fingerprint is computed and before any worker forks.
            profile_operators(state.config.perturb)
        telemetry = telemetry if telemetry is not None else Telemetry()
        self._last_telemetry = telemetry
        # Flush stages recorded before this run (fit-phase corpus
        # building) into this run's sink exactly once, *before* any
        # worker processes fork — a forked worker inheriting unflushed
        # parent stats would ship a duplicate copy with its first
        # per-context flush.
        profiling.flush_into(telemetry)
        policy = retry if retry is not None else RetryPolicy()
        fingerprint = run_fingerprint(state, contexts)

        results: list[list[ReasoningSample] | None] = [None] * len(contexts)
        loaded = None
        if resume_from is not None:
            loaded = load_checkpoint(resume_from)
            if loaded.fingerprint != fingerprint:
                raise CheckpointError(
                    "checkpoint at "
                    f"{resume_from} belongs to a different run "
                    f"({loaded.fingerprint} != {fingerprint}); refusing "
                    "to splice unrelated samples"
                )
            for index, samples in loaded.completed.items():
                if 0 <= index < len(contexts):
                    results[index] = samples
            for record in loaded.quarantined:
                record_quarantine(telemetry, record)
                if 0 <= record.index < len(contexts):
                    results[record.index] = []

        manager = None
        if checkpoint_dir is not None:
            manager = CheckpointManager(
                checkpoint_dir,
                fingerprint=fingerprint,
                total=len(contexts),
                every=checkpoint_every,
            )
            same_dir = resume_from is not None and Path(
                resume_from
            ).resolve() == Path(checkpoint_dir).resolve()
            manager.open(seed_from=loaded if same_dir else None)
            if loaded is not None and not same_dir:
                for index, samples in loaded.completed.items():
                    manager.record(index, samples)
                for record in loaded.quarantined:
                    manager.quarantine(record)

        def on_result(index: int, samples: list[ReasoningSample]) -> None:
            if manager is not None:
                manager.record(index, samples)

        def file_quarantines() -> None:
            if manager is not None:
                for payload in telemetry.events("quarantine"):
                    manager.quarantine(QuarantineRecord.from_json(payload))

        try:
            with telemetry.timer("generate"):
                done = {
                    index
                    for index, value in enumerate(results)
                    if value is not None
                }
                remaining = len(contexts) - len(done)
                if workers > 1 and remaining > 1:
                    from repro.parallel import generate_parallel

                    computed = generate_parallel(
                        state, contexts, workers, telemetry,
                        policy=policy, on_result=on_result, skip=done,
                    )
                    for index, produced in enumerate(computed):
                        if results[index] is None:
                            results[index] = produced
                else:
                    produced_so_far = sum(
                        len(value) for value in results if value is not None
                    )
                    for index, context in enumerate(contexts):
                        if results[index] is not None:
                            continue
                        if budget is not None and produced_so_far >= budget:
                            break
                        outcome = run_context(
                            state, index, context, telemetry, policy,
                            stage="serial",
                        )
                        results[index] = outcome.samples
                        produced_so_far += len(outcome.samples)
                        if outcome.ok:
                            on_result(index, outcome.samples)
        except KeyboardInterrupt:
            if manager is not None:
                file_quarantines()
                manager.finalize(
                    telemetry=telemetry.snapshot(), partial=True
                )
            raise
        if manager is not None:
            file_quarantines()
            manager.finalize(telemetry=telemetry.snapshot(), partial=False)
        out: list[ReasoningSample] = []
        for value in results:
            if value is not None:
                out.extend(value)
        if budget is not None:
            out = out[:budget]
        for sample in out:
            telemetry.emitted(sample.provenance.get("pipeline", "unknown"))
        if strict_quarantine:
            records = telemetry.events("quarantine")
            if records:
                first = records[0]
                raise QuarantinedContextError(
                    index=first.get("index", -1),
                    uid=first.get("uid", ""),
                    reason=first.get("reason", "exception"),
                    detail=first.get("detail", ""),
                )
        return out

    def generate_for_context(
        self,
        context: TableContext,
        budget: int | None = None,
        *,
        context_index: int = 0,
        telemetry: Telemetry | None = None,
    ) -> list[ReasoningSample]:
        """Algorithm 1 on a single context.

        ``context_index`` names the RNG stream: passing the context's
        position in a batch reproduces exactly the samples that
        ``generate`` would emit for it (this is what the parallel
        workers rely on).
        """
        state = self.generation_state()
        telemetry = telemetry if telemetry is not None else Telemetry()
        self._last_telemetry = telemetry
        out = generate_for_one_context(state, context_index, context, telemetry)
        if budget is not None:
            out = out[:budget]
        for sample in out:
            telemetry.emitted(sample.provenance.get("pipeline", "unknown"))
        return out

    def _require_fitted(self) -> str:
        if self._pipeline_key is None:
            raise RuntimeError("call fit() before generate()")
        return self._pipeline_key
