"""Table-Expansion pipeline (paper Section III-B, lower half of Fig. 3).

Extract a record from the context's text via Text-To-Table, merge it
into the table, then run programs on the *expanded* table.  Samples
whose reasoning touches the text-derived row genuinely require both
modalities; the emitted context keeps the *original* table and text, so
the trained model must itself bridge them.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.operators.text_to_table import FullExpansion, TextToTable
from repro.pipelines.base import PipelineTools, task_for_kind
from repro.pipelines.samples import EvidenceType, ReasoningSample, TaskType
from repro.programs.base import ProgramKind
from repro.tables.context import TableContext


class ExpansionPipeline:
    """Generate joint table-text samples by expanding the table."""

    name = "expansion"

    def __init__(
        self,
        tools: PipelineTools,
        kinds: tuple[ProgramKind, ...],
        operator: TextToTable | None = None,
    ):
        self._tools = tools
        self._kinds = tuple(kinds)
        self._operator = operator or TextToTable()

    def generate(
        self, context: TableContext, budget: int
    ) -> list[ReasoningSample]:
        telemetry = self._tools.telemetry
        try:
            expansion = self._operator.expand_all(context)
        except ReproError:
            telemetry.drop(self.name, "expansion_failed")
            telemetry.shortfall(self.name, budget, "expansion_failed")
            return []
        out: list[ReasoningSample] = []
        attempts = 0
        while len(out) < budget and attempts < budget * 6:
            attempts += 1
            sample = self._one(context, expansion, len(out))
            if sample is not None:
                out.append(sample)
        telemetry.shortfall(
            self.name, budget - len(out), "attempts_exhausted"
        )
        return out

    def _one(
        self, context: TableContext, expansion: FullExpansion, serial: int
    ) -> ReasoningSample | None:
        rng = self._tools.rng
        telemetry = self._tools.telemetry
        kind = self._kinds[rng.randrange(len(self._kinds))]
        sampled = self._tools.draw_program(
            kind, expansion.expanded_table, self.name
        )
        if sampled is None:
            return None
        rows_touched = {row for row, _ in sampled.result.highlighted_cells}
        new_rows = set(expansion.new_row_indices)
        if not (rows_touched & new_rows):
            # The program never looked at a text-derived row; that is a
            # plain table sample, which the table-only pipeline covers.
            telemetry.reject(self.name, "no_text_row_touched")
            return None
        task = task_for_kind(kind)
        label = None
        if task is TaskType.FACT_VERIFICATION:
            claim = self._tools.label_claim(sampled)
            sampled, label = claim.sample, claim.label
        telemetry.success(self.name, kind.value)
        sentence = self._tools.verbalize(sampled)
        evidence_cells = frozenset(
            (row, column)
            for row, column in sampled.result.highlighted_cells
            if row not in new_rows
        )
        return ReasoningSample(
            uid=f"{context.uid}-expand-{serial}",
            task=task,
            context=context,  # original table + original text
            sentence=sentence,
            answer=tuple(sampled.answer) if task is TaskType.QUESTION_ANSWERING else (),
            label=label,
            evidence_type=EvidenceType.TABLE_TEXT,
            evidence_cells=evidence_cells,
            provenance={
                "pipeline": self.name,
                "program_kind": sampled.kind.value,
                "category": sampled.template.category,
                "pattern": sampled.template.pattern,
                "program": sampled.program.source,
                "expansion_sentences": list(expansion.source_sentences),
                "expansion_rows": list(expansion.new_row_indices),
            },
        )
