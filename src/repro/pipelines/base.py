"""Shared machinery for the generation pipelines."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro import profiling
from repro.nlgen.model import NLGenerator
from repro.programs.base import ProgramKind
from repro.sampling.filters import SampleFilter, default_filters, first_failure
from repro.sampling.labeler import ClaimLabeler, LabeledClaim
from repro.sampling.sampler import ProgramSampler, SampledProgram
from repro.pipelines.samples import TaskType
from repro.tables.table import Table
from repro.telemetry import Telemetry
from repro.templates.pools import pool_for_kind
from repro.templates.template import ProgramTemplate


@dataclass
class PipelineTools:
    """Everything a pipeline needs, bundled so configs stay small.

    ``generators`` maps program kinds to trained NL-Generators; a kind
    without an entry falls back to the realization grammar at the call
    site via :class:`NLGenerator`'s own back-off.  ``template_overrides``
    replaces the built-in pool for a kind — used by the auto-program
    generation extension.  ``telemetry`` receives attempt/reject/success
    accounting from :meth:`draw_program` and the pipelines; recording
    never draws randomness, so it cannot perturb generation.
    """

    rng: random.Random
    generators: dict[ProgramKind, NLGenerator]
    sampler: ProgramSampler = None  # type: ignore[assignment]
    labeler: ClaimLabeler = None  # type: ignore[assignment]
    filters: list[SampleFilter] = field(default_factory=default_filters)
    template_overrides: dict[ProgramKind, list[ProgramTemplate]] = field(
        default_factory=dict
    )
    telemetry: Telemetry = field(default_factory=Telemetry)

    def __post_init__(self) -> None:
        if self.sampler is None:
            self.sampler = ProgramSampler(self.rng)
        if self.labeler is None:
            self.labeler = ClaimLabeler(self.rng)
        self._template_cache: dict[ProgramKind, tuple[ProgramTemplate, ...]] = {}

    def templates(self, kind: ProgramKind) -> Sequence[ProgramTemplate]:
        """The template pool for ``kind``, as a cached immutable tuple.

        Overrides are snapshotted on first use; replace the whole
        ``template_overrides`` dict (and rebuild the tools) to change
        pools mid-run — the hot path assumes the pool is stable.
        """
        cached = self._template_cache.get(kind)
        if cached is None:
            override = self.template_overrides.get(kind)
            pool = override if override is not None else pool_for_kind(kind)
            cached = tuple(pool)
            self._template_cache[kind] = cached
        return cached

    def draw_program(
        self, kind: ProgramKind, table: Table, pipeline: str = "adhoc"
    ) -> SampledProgram | None:
        """One filtered sampled program, or ``None``.

        Every call is an *attempt* under ``pipeline``; a ``None`` return
        records exactly one reject reason, so per-pipeline attempts
        always reconcile as successes + rejects.
        """
        self.telemetry.attempt(pipeline, kind.value)
        templates = self.templates(kind)
        if not templates:
            self.telemetry.reject(pipeline, "no_templates")
            return None
        template = templates[self.rng.randrange(len(templates))]
        with profiling.stage("sampler"):
            sample = self.sampler.try_sample(template, table)
        if sample is None:
            self.telemetry.reject(pipeline, "sampling_failed")
            return None
        with profiling.stage("filters"):
            failed = first_failure(sample, self.filters)
        if failed is not None:
            self.telemetry.reject(pipeline, f"filter:{failed}")
            return None
        return sample

    def verbalize(self, sample: SampledProgram) -> str:
        with profiling.stage("nlgen"):
            generator = self.generators.get(sample.kind)
            if generator is None:
                from repro.nlgen.grammar import realize

                return realize(sample, self.rng)
            return generator.generate(sample, self.rng)

    def label_claim(self, sample: SampledProgram) -> LabeledClaim:
        return self.labeler.label(sample)


def task_for_kind(kind: ProgramKind) -> TaskType:
    """Logical forms make claims; SQL/arithmetic make questions."""
    if kind is ProgramKind.LOGIC:
        return TaskType.FACT_VERIFICATION
    return TaskType.QUESTION_ANSWERING
