"""UCTR data-generation pipelines (paper Section III + Algorithm 1).

* :mod:`repro.pipelines.table_only` — homogeneous samples from the table
  alone (the "w/o T2T" ablation of the paper).
* :mod:`repro.pipelines.splitting` — Table-Splitting: one highlighted row
  becomes a sentence, the rest stays tabular.
* :mod:`repro.pipelines.expansion` — Table-Expansion: a record extracted
  from the surrounding text joins the table before program execution.
* :mod:`repro.pipelines.uctr` — the unified facade combining them.
"""

from repro.pipelines.samples import (
    EvidenceType,
    ReasoningSample,
    TaskType,
)
from repro.pipelines.table_only import TableOnlyPipeline
from repro.pipelines.splitting import SplittingPipeline
from repro.pipelines.expansion import ExpansionPipeline
from repro.pipelines.uctr import UCTR, UCTRConfig

__all__ = [
    "EvidenceType",
    "ReasoningSample",
    "TaskType",
    "TableOnlyPipeline",
    "SplittingPipeline",
    "ExpansionPipeline",
    "UCTR",
    "UCTRConfig",
]
