"""Homogeneous pipeline: synthetic samples over the table alone."""

from __future__ import annotations

from repro.pipelines.base import PipelineTools, task_for_kind
from repro.pipelines.samples import EvidenceType, ReasoningSample, TaskType
from repro.programs.base import ProgramKind
from repro.sampling.labeler import ClaimLabel
from repro.tables.context import TableContext


class TableOnlyPipeline:
    """Generate table-only reasoning samples (no T2T operators).

    This is the UCTR ``w/o T2T`` configuration of Tables III/VIII: the
    Program-Executor and NL-Generator run on the raw table, and the
    sample's evidence is purely tabular.
    """

    name = "table_only"

    def __init__(self, tools: PipelineTools, kinds: tuple[ProgramKind, ...]):
        self._tools = tools
        self._kinds = tuple(kinds)

    def generate(
        self, context: TableContext, budget: int, start: int = 0
    ) -> list[ReasoningSample]:
        """Up to ``budget`` samples from one context.

        ``start`` offsets the uid serial — callers that invoke this
        pipeline more than once per context (the UCTR facade backfills
        joint-pipeline shortfalls with table-only samples) pass the
        number already emitted so uids stay unique.
        """
        out: list[ReasoningSample] = []
        attempts = 0
        while len(out) < budget and attempts < budget * 5:
            attempts += 1
            kind = self._kinds[self._tools.rng.randrange(len(self._kinds))]
            sample = self._tools.draw_program(kind, context.table, self.name)
            if sample is None:
                continue
            task = task_for_kind(kind)
            if task is TaskType.FACT_VERIFICATION:
                claim = self._tools.label_claim(sample)
                sentence = self._tools.verbalize(claim.sample)
                out.append(
                    ReasoningSample(
                        uid=f"{context.uid}-tab-{start + len(out)}",
                        task=task,
                        context=context.with_paragraphs([]),
                        sentence=sentence,
                        label=claim.label,
                        evidence_type=EvidenceType.TABLE,
                        evidence_cells=claim.sample.result.highlighted_cells,
                        provenance=self._provenance(claim.sample),
                    )
                )
            else:
                sentence = self._tools.verbalize(sample)
                out.append(
                    ReasoningSample(
                        uid=f"{context.uid}-tab-{start + len(out)}",
                        task=task,
                        context=context.with_paragraphs([]),
                        sentence=sentence,
                        answer=tuple(sample.answer),
                        evidence_type=EvidenceType.TABLE,
                        evidence_cells=sample.result.highlighted_cells,
                        provenance=self._provenance(sample),
                    )
                )
            self._tools.telemetry.success(self.name, kind.value)
        self._tools.telemetry.shortfall(
            self.name, budget - len(out), "attempts_exhausted"
        )
        return out

    def _provenance(self, sample) -> dict:
        return {
            "pipeline": self.name,
            "program_kind": sample.kind.value,
            "category": sample.template.category,
            "pattern": sample.template.pattern,
            "program": sample.program.source,
        }
