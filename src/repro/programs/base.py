"""Shared program abstractions: kinds, results, and the dispatch API.

The paper's Program-Executor module (Section IV-A, Eq. 4) is a function
``f(T, Prog) -> O``.  Here that is :func:`execute_program`, which
dispatches on :class:`ProgramKind` to the three concrete executors.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from functools import lru_cache
from typing import TYPE_CHECKING

from repro.errors import EmptyResultError, ProgramParseError
from repro.tables.values import Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tables.table import Table


class ProgramKind(str, Enum):
    """Which DSL a program belongs to."""

    SQL = "sql"
    LOGIC = "logic"
    ARITH = "arith"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing a program on a table.

    ``values`` is the denotation (one or more cells / computed numbers;
    a single boolean for logical forms).  ``highlighted_cells`` records
    the ``(row_index, column_name)`` pairs that the execution touched —
    the paper's "highlighted cells", which drive the Table-To-Text
    operator's choice of row and the FEVEROUS-score evidence set.
    """

    values: tuple[Value, ...]
    highlighted_cells: frozenset[tuple[int, str]] = frozenset()
    truth: bool | None = None

    @property
    def is_empty(self) -> bool:
        return not self.values and self.truth is None

    @property
    def single(self) -> Value:
        """The sole value, for programs expected to be scalar."""
        if len(self.values) != 1:
            raise EmptyResultError(
                f"expected exactly one value, got {len(self.values)}"
            )
        return self.values[0]

    def denotation(self) -> list[str]:
        """Raw strings of the result values (denotation-accuracy form)."""
        if self.truth is not None and not self.values:
            return ["true" if self.truth else "false"]
        return [value.raw for value in self.values]

    def require_non_empty(self) -> "ExecutionResult":
        """Raise :class:`EmptyResultError` if there is no denotation.

        Mirrors Algorithm 1's filter: "if ans is empty then continue".
        """
        if self.is_empty:
            raise EmptyResultError("program produced an empty result")
        return self


@dataclass(frozen=True)
class Program(ABC):
    """A parsed, executable program."""

    source: str = field(default="", compare=False)

    @property
    @abstractmethod
    def kind(self) -> ProgramKind:
        """Which DSL this program belongs to."""

    @abstractmethod
    def execute(self, table: "Table") -> ExecutionResult:
        """Run the program against ``table``."""

    @abstractmethod
    def tokens(self) -> list[str]:
        """Canonical token stream (NL-Generator input)."""

    def canonical(self) -> str:
        """Canonical single-line text form."""
        return " ".join(self.tokens())


@lru_cache(maxsize=4096)
def _parse_program_cached(text: str, kind: ProgramKind) -> Program:
    if kind is ProgramKind.SQL:
        from repro.programs.sql import parse_sql

        return parse_sql(text)
    if kind is ProgramKind.LOGIC:
        from repro.programs.logic import parse_logic

        return parse_logic(text)
    if kind is ProgramKind.ARITH:
        from repro.programs.arith import parse_arith

        return parse_arith(text)
    raise ProgramParseError(f"unknown program kind: {kind!r}")


def parse_program(text: str, kind: ProgramKind | str) -> Program:
    """Parse ``text`` in the DSL named by ``kind``.

    Memoized: parsing is a pure function of the source text and every
    AST node is a frozen dataclass, so identical sources share one
    program instance.  The sampler re-parses each result-slot template
    twice and the labeler re-parses claim variants, which makes this a
    hot path during generation.  Parse *errors* are never cached — the
    failing path re-raises from the parser each time.
    """
    return _parse_program_cached(text, ProgramKind(kind))


def execute_program(table: "Table", program: Program) -> ExecutionResult:
    """The paper's Program-Executor: ``f(T, Prog) -> O``."""
    return program.execute(table)
