"""Evaluator for logical forms."""

from __future__ import annotations

from repro.errors import ProgramExecutionError, ProgramTypeError
from repro.programs.base import ExecutionResult
from repro.programs.logic.ops import OPERATORS, EvalContext, RowsView
from repro.programs.logic.parser import LogicNode
from repro.tables.table import Table
from repro.tables.values import Value, parse_value


def execute_logic(table: Table, root: LogicNode) -> ExecutionResult:
    """Execute a logical form; the root must produce a truth value.

    Non-boolean roots (e.g. a bare ``count``) are also accepted for
    sampler introspection — their result lands in ``values`` with
    ``truth=None``.
    """
    ctx = EvalContext(table=table)
    result = _evaluate(ctx, root)
    highlighted = frozenset(ctx.highlighted)
    if isinstance(result, bool):
        return ExecutionResult(
            values=(), highlighted_cells=highlighted, truth=result
        )
    if isinstance(result, Value):
        return ExecutionResult(
            values=(result,), highlighted_cells=highlighted
        )
    if isinstance(result, RowsView):
        names = [result.table.row_name(index) for index in result.indices]
        values = tuple(parse_value(name) for name in names)
        return ExecutionResult(values=values, highlighted_cells=highlighted)
    raise ProgramExecutionError(
        f"logical form produced unsupported result {type(result).__name__}"
    )


def _evaluate(ctx: EvalContext, node: LogicNode | str):
    if isinstance(node, str):
        return _literal(ctx, node)
    spec = OPERATORS.get(node.op)
    if spec is None:
        raise ProgramExecutionError(f"unknown operator {node.op!r}")
    if len(node.args) != spec.arity:
        raise ProgramTypeError(
            f"{node.op} expects {spec.arity} arguments, got {len(node.args)}"
        )
    args = [_evaluate(ctx, arg) for arg in node.args]
    # Column-name arguments arrive as parsed Values via _literal; the
    # operator impls accept str or Value, so re-expose raw strings for
    # the positions that name columns.
    return spec.fn(ctx, *args)


def _literal(ctx: EvalContext, text: str):
    stripped = text.strip()
    if stripped.lower() == "all_rows":
        return RowsView.all_rows(ctx.table)
    if stripped in ctx.table.schema:
        # Column names stay strings so operators can index the schema.
        return stripped
    return parse_value(stripped)
