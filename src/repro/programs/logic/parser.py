"""Parser for the brace-and-semicolon logical-form syntax."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProgramParseError
from repro.programs.base import ExecutionResult, Program, ProgramKind
from repro.programs.logic.ops import OPERATORS


@dataclass(frozen=True)
class LogicNode:
    """One application node: ``op { arg1 ; arg2 ; ... }``.

    Leaf arguments are stored as plain strings (column names, literal
    values, or the special token ``all_rows``).
    """

    op: str
    args: tuple["LogicNode | str", ...] = field(default_factory=tuple)

    def tokens(self) -> list[str]:
        out = [self.op, "{"]
        for index, arg in enumerate(self.args):
            if index:
                out.append(";")
            if isinstance(arg, LogicNode):
                out.extend(arg.tokens())
            else:
                out.append(arg)
        out.append("}")
        return out

    def text(self) -> str:
        return " ".join(self.tokens())

    def walk(self):
        """Yield every node in the tree, pre-order."""
        yield self
        for arg in self.args:
            if isinstance(arg, LogicNode):
                yield from arg.walk()

    def leaf_strings(self) -> list[str]:
        """All leaf string arguments, left to right."""
        out: list[str] = []
        for arg in self.args:
            if isinstance(arg, LogicNode):
                out.extend(arg.leaf_strings())
            else:
                out.append(arg)
        return out


class _Scanner:
    """Splits the source into ``{``, ``}``, ``;`` and bare chunks."""

    def __init__(self, text: str):
        self.text = text
        self.position = 0

    def next_token(self) -> tuple[str, str] | None:
        while self.position < len(self.text) and self.text[self.position].isspace():
            self.position += 1
        if self.position >= len(self.text):
            return None
        char = self.text[self.position]
        if char in "{};":
            self.position += 1
            return ("punct", char)
        start = self.position
        while (
            self.position < len(self.text)
            and self.text[self.position] not in "{};"
        ):
            self.position += 1
        return ("chunk", self.text[start : self.position].strip())


class _Parser:
    def __init__(self, text: str):
        self._scanner = _Scanner(text)
        self._lookahead: tuple[str, str] | None = None
        self._advance()

    def _advance(self) -> tuple[str, str] | None:
        token = self._lookahead
        self._lookahead = self._scanner.next_token()
        return token

    def parse(self) -> LogicNode:
        node = self._application()
        if self._lookahead is not None:
            raise ProgramParseError(
                f"trailing input after logical form: {self._lookahead[1]!r}",
                self._scanner.position,
            )
        if not isinstance(node, LogicNode):
            raise ProgramParseError("a logical form must be an application")
        return node

    def _application(self) -> LogicNode | str:
        token = self._advance()
        if token is None:
            raise ProgramParseError("unexpected end of logical form")
        kind, text = token
        if kind != "chunk" or not text:
            raise ProgramParseError(f"expected an operator or literal, got {text!r}")
        if self._lookahead is not None and self._lookahead == ("punct", "{"):
            op = text.strip().lower()
            if op not in OPERATORS:
                raise ProgramParseError(f"unknown operator {text!r}")
            self._advance()  # consume "{"
            args: list[LogicNode | str] = []
            if self._lookahead == ("punct", "}"):
                self._advance()
                return self._finish(op, args)
            while True:
                args.append(self._argument())
                token = self._advance()
                if token is None:
                    raise ProgramParseError("unterminated application, missing '}'")
                if token == ("punct", "}"):
                    return self._finish(op, args)
                if token != ("punct", ";"):
                    raise ProgramParseError(
                        f"expected ';' or '}}', got {token[1]!r}"
                    )
        return text

    def _finish(self, op: str, args: list["LogicNode | str"]) -> LogicNode:
        expected = OPERATORS[op].arity
        if len(args) != expected:
            raise ProgramParseError(
                f"{op} expects {expected} arguments, got {len(args)}"
            )
        return LogicNode(op=op, args=tuple(args))

    def _argument(self) -> LogicNode | str:
        if self._lookahead is None:
            raise ProgramParseError("unexpected end of logical form in argument")
        return self._application()


class LogicProgram(Program):
    """A parsed logical form conforming to :class:`Program`."""

    def __init__(self, root: LogicNode, source: str = ""):
        super().__init__(source=source or root.text())
        object.__setattr__(self, "root", root)

    @property
    def kind(self) -> ProgramKind:
        return ProgramKind.LOGIC

    def execute(self, table) -> ExecutionResult:
        from repro.programs.logic.executor import execute_logic

        return execute_logic(table, self.root)

    def tokens(self) -> list[str]:
        return self.root.tokens()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LogicProgram) and self.root == other.root

    def __hash__(self) -> int:
        return hash(("logic", self.root))


def parse_logic(text: str) -> LogicProgram:
    """Parse a logical-form string into a :class:`LogicProgram`."""
    root = _Parser(text).parse()
    return LogicProgram(root=root, source=text)
