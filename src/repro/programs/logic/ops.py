"""Operator inventory and runtime types for logical forms.

The runtime manipulates four kinds of values:

* :class:`RowsView` — an ordered subset of table rows (with provenance),
* :class:`~repro.tables.values.Value` — one cell or computed scalar,
* ``bool`` — truth values produced by predicates,
* ``str``/``float`` literals from the program text.

Each operator is described by an :class:`OperatorSpec` carrying its
signature category, which the sampler and NL grammar both read.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ProgramExecutionError, ProgramTypeError
from repro.tables.table import Table
from repro.tables.values import Value


@dataclass(frozen=True)
class RowsView:
    """An ordered subset of a table's rows, tracking source indices."""

    table: Table
    indices: tuple[int, ...]

    @staticmethod
    def all_rows(table: Table) -> "RowsView":
        return RowsView(table=table, indices=tuple(range(table.n_rows)))

    @property
    def n_rows(self) -> int:
        return len(self.indices)

    def column_cells(self, column: str) -> list[tuple[int, Value]]:
        """(source row index, cell) pairs for a column within this view.

        Reads the table's cached columnar view, so repeated operator
        evaluations over the same table index into one flat cell array
        instead of chasing row tuples.
        """
        cells = self.table.columnar().vector(column).cells
        return [(row_index, cells[row_index]) for row_index in self.indices]

    def subset(self, kept: list[int]) -> "RowsView":
        return RowsView(table=self.table, indices=tuple(kept))


@dataclass
class EvalContext:
    """Mutable execution state: the table plus highlighted-cell log."""

    table: Table
    highlighted: set[tuple[int, str]] = field(default_factory=set)

    def touch(self, row_index: int, column: str) -> None:
        name = self.table.schema.column(column).name
        self.highlighted.add((row_index, name))


@dataclass(frozen=True)
class OperatorSpec:
    """Metadata + implementation for one logical-form operator.

    ``category`` drives template abstraction and the NL grammar:
    filter / aggregate / superlative / comparative / majority / unique /
    ordinal / arithmetic / predicate / hop / count.
    """

    name: str
    category: str
    arity: int
    returns: str  # "rows" | "value" | "bool" | "number"
    fn: Callable[..., object]


def _require_rows(value: object, op: str) -> RowsView:
    if not isinstance(value, RowsView):
        raise ProgramTypeError(f"{op} expects a row set, got {type(value).__name__}")
    return value


def _as_value(value: object, op: str) -> Value:
    if isinstance(value, Value):
        return value
    if isinstance(value, (int, float)):
        return Value.number(float(value))
    if isinstance(value, str):
        from repro.tables.values import parse_value

        return parse_value(value)
    raise ProgramTypeError(f"{op} expects a value, got {type(value).__name__}")


def _as_number(value: object, op: str) -> float:
    try:
        return _as_value(value, op).as_number()
    except ProgramTypeError:
        raise
    except Exception as error:
        raise ProgramTypeError(f"{op} expects a number: {error}") from error


def _as_text(value: object, op: str) -> str:
    if isinstance(value, Value):
        return value.raw
    if isinstance(value, str):
        return value
    raise ProgramTypeError(f"{op} expects text, got {type(value).__name__}")


def _cmp_eq(cell: Value, target: Value) -> bool:
    return cell.equals(target)


def _numeric_pairs(
    ctx: EvalContext, rows: RowsView, column: str, op: str
) -> list[tuple[int, float]]:
    pairs: list[tuple[int, float]] = []
    for row_index, cell in rows.column_cells(column):
        if cell.is_null:
            continue
        ctx.touch(row_index, column)
        try:
            pairs.append((row_index, cell.as_number()))
        except Exception as error:
            raise ProgramTypeError(
                f"{op}: column {column!r} has non-numeric cell {cell.raw!r}"
            ) from error
    return pairs


# --------------------------------------------------------------------------
# Operator implementations.  Every fn takes (ctx, *args).
# --------------------------------------------------------------------------

def _filter_factory(name: str, keep: Callable[[Value, Value], bool], numeric: bool):
    def impl(ctx: EvalContext, rows: object, column: object, target: object):
        view = _require_rows(rows, name)
        column_name = _as_text(column, name)
        target_value = _as_value(target, name)
        kept: list[int] = []
        for row_index, cell in view.column_cells(column_name):
            if cell.is_null:
                continue
            if numeric:
                try:
                    ok = keep(
                        Value.number(cell.as_number()),
                        Value.number(target_value.as_number()),
                    )
                except Exception:
                    continue
            else:
                ok = keep(cell, target_value)
            if ok:
                kept.append(row_index)
                ctx.touch(row_index, column_name)
        return view.subset(kept)

    return impl


def _filter_all(ctx: EvalContext, rows: object, column: object):
    """Rows whose cell in ``column`` is non-null (Logic2Text filter_all)."""
    view = _require_rows(rows, "filter_all")
    column_name = _as_text(column, "filter_all")
    kept = []
    for row_index, cell in view.column_cells(column_name):
        if not cell.is_null:
            kept.append(row_index)
            ctx.touch(row_index, column_name)
    return view.subset(kept)


def _count(ctx: EvalContext, rows: object):
    view = _require_rows(rows, "count")
    return Value.number(view.n_rows)


def _only(ctx: EvalContext, rows: object):
    view = _require_rows(rows, "only")
    return view.n_rows == 1


def _hop(ctx: EvalContext, rows: object, column: object):
    view = _require_rows(rows, "hop")
    column_name = _as_text(column, "hop")
    if view.n_rows == 0:
        raise ProgramExecutionError("hop on an empty row set")
    row_index, cell = view.column_cells(column_name)[0]
    ctx.touch(row_index, column_name)
    return cell


def _agg_factory(name: str, reducer: Callable[[list[float]], float]):
    def impl(ctx: EvalContext, rows: object, column: object):
        view = _require_rows(rows, name)
        column_name = _as_text(column, name)
        pairs = _numeric_pairs(ctx, view, column_name, name)
        if not pairs:
            raise ProgramExecutionError(f"{name} over empty/non-numeric column")
        return Value.number(reducer([number for _, number in pairs]))

    return impl


def _arg_extreme_factory(name: str, pick_max: bool):
    def impl(ctx: EvalContext, rows: object, column: object):
        view = _require_rows(rows, name)
        column_name = _as_text(column, name)
        pairs = _numeric_pairs(ctx, view, column_name, name)
        if not pairs:
            raise ProgramExecutionError(f"{name} over empty/non-numeric column")
        chooser = max if pick_max else min
        best_index, _ = chooser(pairs, key=lambda pair: pair[1])
        return view.subset([best_index])

    return impl


def _nth_extreme_factory(name: str, pick_max: bool, return_rows: bool):
    def impl(ctx: EvalContext, rows: object, column: object, n: object):
        view = _require_rows(rows, name)
        column_name = _as_text(column, name)
        rank = int(_as_number(n, name))
        pairs = _numeric_pairs(ctx, view, column_name, name)
        if rank < 1 or rank > len(pairs):
            raise ProgramExecutionError(
                f"{name}: rank {rank} out of range for {len(pairs)} rows"
            )
        ordered = sorted(pairs, key=lambda pair: pair[1], reverse=pick_max)
        row_index, number = ordered[rank - 1]
        if return_rows:
            return view.subset([row_index])
        return Value.number(number)

    return impl


def _eq(ctx: EvalContext, left: object, right: object):
    return _cmp_eq(_as_value(left, "eq"), _as_value(right, "eq"))


def _not_eq(ctx: EvalContext, left: object, right: object):
    return not _cmp_eq(_as_value(left, "not_eq"), _as_value(right, "not_eq"))


def _round_eq(ctx: EvalContext, left: object, right: object):
    a = _as_number(left, "round_eq")
    b = _as_number(right, "round_eq")
    tolerance = max(abs(b) * 0.05, 0.5)
    return abs(a - b) <= tolerance


def _greater(ctx: EvalContext, left: object, right: object):
    return _as_number(left, "greater") > _as_number(right, "greater")


def _less(ctx: EvalContext, left: object, right: object):
    return _as_number(left, "less") < _as_number(right, "less")


def _diff(ctx: EvalContext, left: object, right: object):
    return Value.number(_as_number(left, "diff") - _as_number(right, "diff"))


def _add(ctx: EvalContext, left: object, right: object):
    return Value.number(_as_number(left, "add") + _as_number(right, "add"))


def _and(ctx: EvalContext, left: object, right: object):
    if not isinstance(left, bool) or not isinstance(right, bool):
        raise ProgramTypeError("and expects boolean arguments")
    return left and right


def _or(ctx: EvalContext, left: object, right: object):
    if not isinstance(left, bool) or not isinstance(right, bool):
        raise ProgramTypeError("or expects boolean arguments")
    return left or right


def _not(ctx: EvalContext, operand: object):
    if not isinstance(operand, bool):
        raise ProgramTypeError("not expects a boolean argument")
    return not operand


def _majority_factory(name: str, keep: Callable[[Value, Value], bool], mode: str,
                      numeric: bool):
    def impl(ctx: EvalContext, rows: object, column: object, target: object):
        view = _require_rows(rows, name)
        column_name = _as_text(column, name)
        target_value = _as_value(target, name)
        cells = [
            (row_index, cell)
            for row_index, cell in view.column_cells(column_name)
            if not cell.is_null
        ]
        if not cells:
            raise ProgramExecutionError(f"{name} over an empty column")
        hits = 0
        for row_index, cell in cells:
            ctx.touch(row_index, column_name)
            try:
                if numeric:
                    ok = keep(
                        Value.number(cell.as_number()),
                        Value.number(target_value.as_number()),
                    )
                else:
                    ok = keep(cell, target_value)
            except Exception:
                ok = False
            if ok:
                hits += 1
        if mode == "all":
            return hits == len(cells)
        return hits * 2 > len(cells)

    return impl


_GT = lambda cell, target: cell.as_number() > target.as_number()  # noqa: E731
_LT = lambda cell, target: cell.as_number() < target.as_number()  # noqa: E731
_GE = lambda cell, target: cell.as_number() >= target.as_number()  # noqa: E731
_LE = lambda cell, target: cell.as_number() <= target.as_number()  # noqa: E731
_NE = lambda cell, target: not cell.equals(target)  # noqa: E731


def _build_operators() -> dict[str, OperatorSpec]:
    specs = [
        # filters: rows x column x value -> rows
        OperatorSpec("filter_eq", "filter", 3, "rows",
                     _filter_factory("filter_eq", _cmp_eq, numeric=False)),
        OperatorSpec("filter_not_eq", "filter", 3, "rows",
                     _filter_factory("filter_not_eq", _NE, numeric=False)),
        OperatorSpec("filter_greater", "filter", 3, "rows",
                     _filter_factory("filter_greater", _GT, numeric=True)),
        OperatorSpec("filter_less", "filter", 3, "rows",
                     _filter_factory("filter_less", _LT, numeric=True)),
        OperatorSpec("filter_greater_eq", "filter", 3, "rows",
                     _filter_factory("filter_greater_eq", _GE, numeric=True)),
        OperatorSpec("filter_less_eq", "filter", 3, "rows",
                     _filter_factory("filter_less_eq", _LE, numeric=True)),
        OperatorSpec("filter_all", "filter", 2, "rows", _filter_all),
        # counting & uniqueness
        OperatorSpec("count", "count", 1, "value", _count),
        OperatorSpec("only", "unique", 1, "bool", _only),
        # hop
        OperatorSpec("hop", "hop", 2, "value", _hop),
        # aggregation: rows x column -> value
        OperatorSpec("max", "aggregate", 2, "value", _agg_factory("max", max)),
        OperatorSpec("min", "aggregate", 2, "value", _agg_factory("min", min)),
        OperatorSpec("sum", "aggregate", 2, "value", _agg_factory("sum", sum)),
        OperatorSpec("avg", "aggregate", 2, "value",
                     _agg_factory("avg", lambda xs: sum(xs) / len(xs))),
        # superlatives
        OperatorSpec("argmax", "superlative", 2, "rows",
                     _arg_extreme_factory("argmax", pick_max=True)),
        OperatorSpec("argmin", "superlative", 2, "rows",
                     _arg_extreme_factory("argmin", pick_max=False)),
        # ordinal
        OperatorSpec("nth_max", "ordinal", 3, "value",
                     _nth_extreme_factory("nth_max", True, return_rows=False)),
        OperatorSpec("nth_min", "ordinal", 3, "value",
                     _nth_extreme_factory("nth_min", False, return_rows=False)),
        OperatorSpec("nth_argmax", "ordinal", 3, "rows",
                     _nth_extreme_factory("nth_argmax", True, return_rows=True)),
        OperatorSpec("nth_argmin", "ordinal", 3, "rows",
                     _nth_extreme_factory("nth_argmin", False, return_rows=True)),
        # predicates
        OperatorSpec("eq", "predicate", 2, "bool", _eq),
        OperatorSpec("not_eq", "predicate", 2, "bool", _not_eq),
        OperatorSpec("round_eq", "predicate", 2, "bool", _round_eq),
        OperatorSpec("greater", "comparative", 2, "bool", _greater),
        OperatorSpec("less", "comparative", 2, "bool", _less),
        # arithmetic on scalars
        OperatorSpec("diff", "arithmetic", 2, "value", _diff),
        OperatorSpec("add", "arithmetic", 2, "value", _add),
        # boolean connectives
        OperatorSpec("and", "connective", 2, "bool", _and),
        OperatorSpec("or", "connective", 2, "bool", _or),
        OperatorSpec("not", "connective", 1, "bool", _not),
        # majority
        OperatorSpec("all_eq", "majority", 3, "bool",
                     _majority_factory("all_eq", _cmp_eq, "all", numeric=False)),
        OperatorSpec("all_not_eq", "majority", 3, "bool",
                     _majority_factory("all_not_eq", _NE, "all", numeric=False)),
        OperatorSpec("all_greater", "majority", 3, "bool",
                     _majority_factory("all_greater", _GT, "all", numeric=True)),
        OperatorSpec("all_less", "majority", 3, "bool",
                     _majority_factory("all_less", _LT, "all", numeric=True)),
        OperatorSpec("most_eq", "majority", 3, "bool",
                     _majority_factory("most_eq", _cmp_eq, "most", numeric=False)),
        OperatorSpec("most_not_eq", "majority", 3, "bool",
                     _majority_factory("most_not_eq", _NE, "most", numeric=False)),
        OperatorSpec("most_greater", "majority", 3, "bool",
                     _majority_factory("most_greater", _GT, "most", numeric=True)),
        OperatorSpec("most_less", "majority", 3, "bool",
                     _majority_factory("most_less", _LT, "most", numeric=True)),
    ]
    return {spec.name: spec for spec in specs}


#: Registry of every logical-form operator, keyed by name.
OPERATORS: dict[str, OperatorSpec] = _build_operators()

#: Operators whose result is the claim's truth value (valid roots).
BOOLEAN_ROOTS = frozenset(
    name for name, spec in OPERATORS.items() if spec.returns == "bool"
)
