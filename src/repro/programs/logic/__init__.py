"""Logic2Text-style logical forms for fact-verification claims.

Syntax is function application with braces and semicolons::

    eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; val2 }

Arguments are nested applications, the ``all_rows`` view, column names,
or literal values.  The operator inventory covers the paper's reasoning
types (Section II-C): count, superlative (argmax/argmin, nth variants),
comparative (greater/less, row_greater/row_less), aggregation
(sum/avg/max/min), majority (most_* / all_*), unique (only), and ordinal
(nth_max / nth_argmax ...).
"""

from repro.programs.logic.ops import OPERATORS, OperatorSpec, RowsView
from repro.programs.logic.parser import LogicProgram, parse_logic
from repro.programs.logic.executor import execute_logic

__all__ = [
    "OPERATORS",
    "OperatorSpec",
    "RowsView",
    "LogicProgram",
    "parse_logic",
    "execute_logic",
]
