"""Auto program generation: random well-typed logical-form synthesis.

The paper's future work proposes "an auto program-generation method
based on the existing data distributions" to replace the fixed template
pools.  This module implements it for logical forms: it composes
operators from the registry into novel type-correct trees, guided by a
category distribution (uniform by default, or estimated from an
existing template pool / sample corpus), executes them for validity,
and abstracts the survivors into reusable
:class:`~repro.templates.template.ProgramTemplate` objects.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.programs.base import ProgramKind
from repro.programs.logic.parser import LogicNode, LogicProgram, parse_logic
from repro.rng import choice, weighted_choice
from repro.tables.table import Table
from repro.tables.values import format_number
from repro.templates.extract import abstract_program, dedup_templates
from repro.templates.template import ProgramTemplate

#: row-set producers usable as the inner expression of a claim.
_ROW_PRODUCERS = (
    "filter_eq",
    "filter_not_eq",
    "filter_greater",
    "filter_less",
)

#: claim shapes the generator can emit, with their reasoning category.
_CLAIM_SHAPES = (
    "lookup",       # eq(hop(rows, col), value)
    "count",        # eq(count(rows), n)
    "superlative",  # eq(hop(argmax/argmin(rows, num), col), value)
    "aggregation",  # round_eq(sum/avg(rows, num), value)
    "majority",     # most_*/all_*(rows, col, value)
    "unique",       # only(rows)
    "comparative",  # greater/less(hop(r1, num), hop(r2, num))
    "ordinal",      # eq(nth_max(rows, num, k), value)
    "conjunction",  # and(claim, claim)
)


@dataclass(frozen=True)
class AutoGenConfig:
    """Knobs for the auto generator."""

    max_depth: int = 2          # nesting depth of row-set filters
    attempts_per_program: int = 6
    #: probability weights per claim shape; ``None`` means uniform.
    shape_weights: dict[str, float] | None = None


@dataclass
class AutoProgramGenerator:
    """Synthesizes executable logical forms directly from a table."""

    rng: random.Random
    config: AutoGenConfig = field(default_factory=AutoGenConfig)

    # -- public API ---------------------------------------------------------
    def generate(self, table: Table) -> LogicProgram | None:
        """One valid program on ``table``, or ``None`` after retries."""
        for _ in range(self.config.attempts_per_program):
            try:
                source = self._claim(table)
                program = parse_logic(source)
                result = program.execute(table)
            except ReproError:
                continue
            if result.truth is None:
                continue
            return program
        return None

    def generate_many(self, table: Table, budget: int) -> list[LogicProgram]:
        out: list[LogicProgram] = []
        for _ in range(budget * 2):
            if len(out) >= budget:
                break
            program = self.generate(table)
            if program is not None:
                out.append(program)
        return out

    def induce_templates(
        self, tables: list[Table], per_table: int = 8
    ) -> list[ProgramTemplate]:
        """Mine a deduplicated template pool from generated programs."""
        templates: list[ProgramTemplate] = []
        for table in tables:
            for program in self.generate_many(table, per_table):
                try:
                    template = abstract_program(
                        program, table, source="autogen"
                    )
                except ReproError:
                    continue
                templates.append(template)
        return dedup_templates(templates)

    @staticmethod
    def shape_weights_from_pool(
        templates: list[ProgramTemplate],
    ) -> dict[str, float]:
        """Estimate the category distribution of an existing pool.

        This is the "based on the existing data distributions" part: a
        corpus of templates (or abstracted gold programs) sets how often
        each claim shape is generated.
        """
        counts = Counter(
            template.category
            for template in templates
            if template.category in _CLAIM_SHAPES
        )
        total = sum(counts.values())
        if total == 0:
            return {}
        return {shape: counts[shape] / total for shape in counts}

    # -- claim synthesis ------------------------------------------------------
    def _claim(self, table: Table) -> str:
        shapes = list(_CLAIM_SHAPES)
        if self.config.shape_weights:
            weights = [
                self.config.shape_weights.get(shape, 0.0) for shape in shapes
            ]
            if sum(weights) > 0:
                shape = weighted_choice(self.rng, shapes, weights)
            else:
                shape = choice(self.rng, shapes)
        else:
            shape = choice(self.rng, shapes)
        builder = getattr(self, f"_shape_{shape}")
        return builder(table)

    def _rows(self, table: Table, depth: int | None = None) -> str:
        """A random row-set expression (possibly nested filters)."""
        depth = self.config.max_depth if depth is None else depth
        if depth <= 0 or self.rng.random() < 0.4:
            return "all_rows"
        inner = self._rows(table, depth - 1)
        op = choice(self.rng, list(_ROW_PRODUCERS))
        if op in ("filter_eq", "filter_not_eq"):
            column = self._any_column(table)
            value = self._value_of(table, column)
        else:
            column = self._numeric_column(table)
            value = self._value_of(table, column)
        return f"{op} {{ {inner} ; {column} ; {value} }}"

    # individual claim shapes ----------------------------------------------
    def _shape_lookup(self, table: Table) -> str:
        rows = self._rows(table)
        column = self._any_column(table)
        value = self._value_of(table, column)
        return f"eq {{ hop {{ {rows} ; {column} }} ; {value} }}"

    def _shape_count(self, table: Table) -> str:
        rows = self._rows(table)
        n = self.rng.randint(0, max(1, table.n_rows))
        return f"eq {{ count {{ {rows} }} ; {n} }}"

    def _shape_superlative(self, table: Table) -> str:
        rows = self._rows(table)
        arg = choice(self.rng, ["argmax", "argmin"])
        numeric = self._numeric_column(table)
        out = self._any_column(table)
        value = self._value_of(table, out)
        return (
            f"eq {{ hop {{ {arg} {{ {rows} ; {numeric} }} ; {out} }} ; "
            f"{value} }}"
        )

    def _shape_aggregation(self, table: Table) -> str:
        rows = self._rows(table)
        agg = choice(self.rng, ["sum", "avg", "max", "min"])
        numeric = self._numeric_column(table)
        value = self._value_of(table, numeric)
        return f"round_eq {{ {agg} {{ {rows} ; {numeric} }} ; {value} }}"

    def _shape_majority(self, table: Table) -> str:
        op = choice(
            self.rng,
            ["most_eq", "all_eq", "most_greater", "most_less",
             "all_greater", "all_less"],
        )
        if op.endswith("_eq"):
            column = self._any_column(table)
        else:
            column = self._numeric_column(table)
        value = self._value_of(table, column)
        return f"{op} {{ all_rows ; {column} ; {value} }}"

    def _shape_unique(self, table: Table) -> str:
        column = self._any_column(table)
        value = self._value_of(table, column)
        return f"only {{ filter_eq {{ all_rows ; {column} ; {value} }} }}"

    def _shape_comparative(self, table: Table) -> str:
        name_column = table.row_name_column or table.column_names[0]
        numeric = self._numeric_column(table)
        a = self._value_of(table, name_column)
        b = self._value_of(table, name_column, exclude={a})
        op = choice(self.rng, ["greater", "less"])
        return (
            f"{op} {{ "
            f"hop {{ filter_eq {{ all_rows ; {name_column} ; {a} }} ; {numeric} }} ; "
            f"hop {{ filter_eq {{ all_rows ; {name_column} ; {b} }} ; {numeric} }} }}"
        )

    def _shape_ordinal(self, table: Table) -> str:
        numeric = self._numeric_column(table)
        rank = self.rng.randint(1, max(1, min(5, table.n_rows)))
        op = choice(self.rng, ["nth_max", "nth_min"])
        value = self._value_of(table, numeric)
        return f"eq {{ {op} {{ all_rows ; {numeric} ; {rank} }} ; {value} }}"

    def _shape_conjunction(self, table: Table) -> str:
        left = self._shape_lookup(table)
        right = self._shape_majority(table)
        return f"and {{ {left} ; {right} }}"

    # -- leaves ---------------------------------------------------------------
    def _any_column(self, table: Table) -> str:
        columns = [c for c in table.column_names if _clean(c)]
        if not columns:
            raise ReproError("table has no usable columns")
        return choice(self.rng, columns)

    def _numeric_column(self, table: Table) -> str:
        columns = [c for c in table.numeric_column_names() if _clean(c)]
        if not columns:
            raise ReproError("table has no numeric columns")
        return choice(self.rng, columns)

    def _value_of(
        self, table: Table, column: str, exclude: set[str] = frozenset()
    ) -> str:
        values = [
            value.raw.strip()
            for value in table.distinct_values(column)
            if _clean(value.raw) and value.raw.strip() not in exclude
        ]
        if not values:
            raise ReproError(f"column {column!r} has no usable values")
        picked = choice(self.rng, values)
        return picked


def _clean(text: str) -> bool:
    stripped = text.strip()
    return bool(stripped) and not (set("{};()'\"") & set(stripped))
