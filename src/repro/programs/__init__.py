"""Program substrate: the three executable DSLs of the paper.

* :mod:`repro.programs.sql` — SQL queries (SQUALL-style templates), used
  for question answering on WikiSQL/TAT-QA span questions.
* :mod:`repro.programs.logic` — Logic2Text-style logical forms, used for
  fact verification claims (FEVEROUS, SEM-TAB-FACTS).
* :mod:`repro.programs.arith` — FinQA-style arithmetic expressions, used
  for numeric TAT-QA questions.

All three share the :class:`~repro.programs.base.Program` interface: a
parsed, immutable AST that executes against a table and yields an
:class:`~repro.programs.base.ExecutionResult`.
"""

from repro.programs.base import (
    ExecutionResult,
    Program,
    ProgramKind,
    execute_program,
    parse_program,
)

__all__ = [
    "ExecutionResult",
    "Program",
    "ProgramKind",
    "execute_program",
    "parse_program",
]
