"""Evaluator for parsed SELECT queries, with highlighted-cell tracking.

Two implementations live here, and they are property-tested to produce
identical :class:`ExecutionResult`s (``tests/
test_prop_columnar_row_equivalence.py``):

* the **columnar engine** (default) — operates on the lazily built
  primitive arrays of :mod:`repro.tables.columnar`: WHERE conditions
  run as tight loops over validity masks and pre-coerced numeric /
  interned string arrays with every literal branch hoisted out of the
  loop, ORDER BY sorts row indices on a precomputed key array, and
  DISTINCT counts canonical-key tuples.  ``Value`` objects are touched
  only to materialize the result.
* the **row path** — the pre-columnar implementation, kept for one
  release behind ``REPRO_ROW_EXECUTOR=1`` as the differential-testing
  oracle and escape hatch.

WHERE conditions short-circuit: each successive condition scans only
the rows that survived the previous one, and the per-condition survivor
sets (not the scanned sets) are what lands in ``highlighted_cells`` —
both paths agree on this, by construction and by property test.
"""

from __future__ import annotations

import math
import operator
import os

from repro.errors import ProgramExecutionError, ProgramTypeError
from repro.programs.base import ExecutionResult
from repro.programs.sql.ast import (
    Aggregate,
    ArithmeticItem,
    ColumnItem,
    CompOp,
    Condition,
    SelectQuery,
)
from repro.tables.columnar import ColumnarTable, ColumnVector, columnar_view
from repro.tables.table import Table
from repro.tables.values import Value, ValueType, format_number

#: set to any non-empty value to route execution through the
#: pre-columnar row-oriented path (kept for one release as the
#: differential oracle; checked per query so tests can toggle it).
ROW_EXECUTOR_FLAG = "REPRO_ROW_EXECUTOR"

_ORDER_OPS = {
    CompOp.LT: operator.lt,
    CompOp.GT: operator.gt,
    CompOp.LE: operator.le,
    CompOp.GE: operator.ge,
}


def execute_sql(table: Table, query: SelectQuery) -> ExecutionResult:
    """Execute ``query`` against ``table``.

    Returns the denotation plus the set of highlighted cells — every cell
    read while filtering, ordering, or projecting, which the
    Table-To-Text operator and the FEVEROUS score both consume.
    """
    if os.environ.get(ROW_EXECUTOR_FLAG):
        return _execute_sql_rows(table, query)
    return _execute_sql_columnar(table, query)


# ---------------------------------------------------------------------------
# Columnar engine (default)
# ---------------------------------------------------------------------------


def _execute_sql_columnar(table: Table, query: SelectQuery) -> ExecutionResult:
    highlighted: set[tuple[int, str]] = set()
    view = columnar_view(table)

    row_indices = _filter_columnar(view, query.conditions, highlighted)

    if query.order is not None:
        vector = view.vector(query.order.column)
        order = vector.sort_order(query.order.descending)
        if len(row_indices) == len(order):
            # no rows filtered out: the cached permutation IS the answer
            row_indices = order
        else:
            # the stable full-column permutation filtered to the
            # survivors equals a stable sort of the survivors
            members = set(row_indices)
            row_indices = [index for index in order if index in members]
        pairs = vector.highlight_pairs()
        if len(row_indices) == len(pairs):
            highlighted.update(pairs)
        else:
            highlighted.update([pairs[index] for index in row_indices])

    if query.limit is not None:
        row_indices = row_indices[: query.limit]

    values: list[Value] = []
    for item in query.items:
        values.extend(
            _evaluate_item_columnar(view, item, row_indices, highlighted)
        )

    return ExecutionResult(
        values=tuple(values), highlighted_cells=frozenset(highlighted)
    )


def _filter_columnar(
    view: ColumnarTable,
    conditions: tuple[Condition, ...],
    highlighted: set[tuple[int, str]],
) -> "range | list[int]":
    """Row indices satisfying every condition, recording touched cells.

    Conditions short-circuit: condition ``k+1`` scans only the rows that
    survived condition ``k``, and only survivors are highlighted.
    Returns the (never-mutated) ``range`` of all rows when there are no
    conditions, so the common unfiltered query allocates nothing here.
    """
    kept: "range | list[int]" = range(view.n_rows)
    for condition in conditions:
        vector = view.vector(condition.column)
        kept = _condition_survivors(vector, condition, kept)
        pairs = vector.highlight_pairs()
        if len(kept) == len(pairs):
            highlighted.update(pairs)
        else:
            highlighted.update([pairs[index] for index in kept])
    return kept


#: entries kept per column before a survivor-mask memo is reset; bounds
#: memory on long-lived tables (serving) without changing any result.
_CONDITION_MEMO_LIMIT = 256


def _condition_survivors(
    vector: ColumnVector, condition: Condition, kept: "range | list[int]"
) -> list[int]:
    """Survivors of one WHERE condition among the ``kept`` row indices.

    The full-table survivor set for a ``(operator, literal)`` pair is a
    pure function of the immutable column, so it is computed once per
    vector and memoized: repeated conditions cost one boolean-mask
    filter instead of re-running the comparison semantics per row.  The
    memo key is the literal's complete identity — ``(type, typed,
    raw)`` determines every quantity ``equals`` / ``as_number``
    consults — so distinct literals can never alias.
    """
    literal = condition.literal
    key = (condition.op, literal.type, literal.typed, literal.raw)
    cached = vector.memo.get(key)
    if cached is None:
        if condition.op is CompOp.EQ or condition.op is CompOp.NEQ:
            mask = _equality_mask(vector, condition)
        else:
            mask = _order_mask(vector, condition)
        full = [index for index, flag in enumerate(mask) if flag]
        if len(vector.memo) >= _CONDITION_MEMO_LIMIT:
            vector.memo.clear()
        cached = (mask, full)
        vector.memo[key] = cached
    mask, full = cached
    if len(kept) == len(vector.cells):
        # kept row indices are always ascending, so a full-length subset
        # is the whole table: reuse the cached list (read-only).
        return full
    return [index for index in kept if mask[index]]


def _equality_mask(vector: ColumnVector, condition: Condition) -> list[bool]:
    """Full-column ``=`` / ``!=`` survivor mask (``Value.equals`` rules)."""
    literal = condition.literal
    negate = condition.op is CompOp.NEQ
    validity = vector.validity()
    if literal.is_null:
        # equals() against a null literal is true exactly for null cells;
        # NEQ additionally requires the cell itself to be non-null.
        if negate:
            return list(validity)
        return [not valid for valid in validity]
    types, typeds, coerced, stripped = vector.equality_arrays()
    literal_type = literal.type
    literal_typed = literal.typed
    literal_number = literal._coerced()
    literal_text = literal.raw.strip().lower()
    mask = [False] * len(validity)
    for index, valid in enumerate(validity):
        if not valid:
            continue  # null cell: EQ false, NEQ false (needs non-null)
        cell_type = types[index]
        if cell_type is ValueType.DATE and literal_type is ValueType.DATE:
            matched = typeds[index] == literal_typed
        elif cell_type is ValueType.BOOL and literal_type is ValueType.BOOL:
            matched = typeds[index] == literal_typed
        else:
            number = coerced[index]
            if number is not None and literal_number is not None:
                matched = math.isclose(
                    number, literal_number, rel_tol=1e-9, abs_tol=1e-9
                )
            else:
                matched = stripped[index] == literal_text
        if matched != negate:
            mask[index] = True
    return mask


def _order_mask(vector: ColumnVector, condition: Condition) -> list[bool]:
    """Full-column ``<`` / ``>`` / ``<=`` / ``>=`` survivor mask.

    Numeric comparison when *both* sides have ``as_number`` semantics,
    case-folded string comparison otherwise — exactly the row path's
    try/except fallback, decided per cell with the literal hoisted.
    """
    literal = condition.literal
    compare = _ORDER_OPS[condition.op]
    validity = vector.validity()
    numbers = vector.numbers()
    try:
        literal_number = literal.as_number()
    except Exception:
        literal_number = None
    literal_text = literal.raw.lower()
    lowered: list[str] | None = None
    mask = [False] * len(validity)
    for index, valid in enumerate(validity):
        if not valid:
            continue
        number = numbers[index]
        if literal_number is not None and number is not None:
            if compare(number, literal_number):
                mask[index] = True
        else:
            if lowered is None:
                lowered = vector.lowered()
            if compare(lowered[index], literal_text):
                mask[index] = True
    return mask


def _evaluate_item_columnar(
    view: ColumnarTable,
    item: ColumnItem | ArithmeticItem,
    row_indices: list[int],
    highlighted: set[tuple[int, str]],
) -> list[Value]:
    if isinstance(item, ArithmeticItem):
        left = _scalar_columnar(view, item.left, row_indices, highlighted)
        right = _scalar_columnar(view, item.right, row_indices, highlighted)
        number = (
            left.as_number() + right.as_number()
            if item.op == "+"
            else left.as_number() - right.as_number()
        )
        return [Value.number(number)]
    return _column_item_values_columnar(view, item, row_indices, highlighted)


def _column_item_values_columnar(
    view: ColumnarTable,
    item: ColumnItem,
    row_indices: list[int],
    highlighted: set[tuple[int, str]],
) -> list[Value]:
    if item.aggregate is Aggregate.COUNT:
        if item.column == "*":
            return [Value.number(len(row_indices))]
        vector = view.vector(item.column)
        pairs = vector.highlight_pairs()
        whole_column = len(row_indices) == len(pairs)
        if whole_column:
            highlighted.update(pairs)
        else:
            highlighted.update([pairs[index] for index in row_indices])
        if item.distinct:
            # canonical_key matches Value.equals semantics, so "1,000",
            # "1000", and "$1,000" collapse to one distinct value.
            if whole_column:
                return [Value.number(vector.distinct_count())]
            validity = vector.validity()
            keys = vector.canonical_keys()
            return [
                Value.number(
                    len({keys[i] for i in row_indices if validity[i]})
                )
            ]
        if whole_column:
            return [Value.number(vector.non_null_count())]
        validity = vector.validity()
        return [
            Value.number(sum(1 for i in row_indices if validity[i]))
        ]

    if item.column == "*":
        vectors = view.vectors()
        out: list[Value] = []
        for row_index in row_indices:
            for vector in vectors:
                highlighted.add((row_index, vector.name))
                out.append(vector.cells[row_index])
        return out

    vector = view.vector(item.column)
    pairs = vector.highlight_pairs()
    if len(row_indices) == len(pairs):
        highlighted.update(pairs)
    else:
        highlighted.update([pairs[index] for index in row_indices])
    validity = vector.validity()
    cells = vector.cells
    if item.aggregate is None:
        return [cells[i] for i in row_indices if validity[i]]

    numbers = vector.numbers()
    operands: list[float] = []
    for index in row_indices:
        if not validity[index]:
            continue
        number = numbers[index]
        if number is None:
            raise ProgramTypeError(
                f"column {item.column!r} holds non-numeric value "
                f"{cells[index].raw!r}"
            )
        operands.append(number)
    if not operands:
        return []
    if item.aggregate is Aggregate.SUM:
        return [Value.number(sum(operands))]
    if item.aggregate is Aggregate.AVG:
        return [Value.number(sum(operands) / len(operands))]
    if item.aggregate is Aggregate.MIN:
        return [Value.number(min(operands))]
    if item.aggregate is Aggregate.MAX:
        return [Value.number(max(operands))]
    raise ProgramExecutionError(f"unsupported aggregate: {item.aggregate}")


def _scalar_columnar(
    view: ColumnarTable,
    item: ColumnItem,
    row_indices: list[int],
    highlighted: set[tuple[int, str]],
) -> Value:
    values = _column_item_values_columnar(view, item, row_indices, highlighted)
    if len(values) != 1:
        raise ProgramExecutionError(
            "arithmetic projection requires scalar operands, got "
            f"{len(values)} values for column {item.column!r}"
        )
    return values[0]


# ---------------------------------------------------------------------------
# Row-oriented path (pre-columnar; REPRO_ROW_EXECUTOR=1)
# ---------------------------------------------------------------------------


def _execute_sql_rows(table: Table, query: SelectQuery) -> ExecutionResult:
    """The pre-columnar executor, preserved verbatim as the oracle."""
    highlighted: set[tuple[int, str]] = set()

    row_indices = _filter(table, query.conditions, highlighted)

    if query.order is not None:
        column_index = table.schema.index(query.order.column)
        row_indices = sorted(
            row_indices,
            key=lambda i: table.rows[i][column_index]._key(),
            reverse=query.order.descending,
        )
        for index in row_indices:
            highlighted.add((index, table.schema.columns[column_index].name))

    if query.limit is not None:
        row_indices = row_indices[: query.limit]

    values: list[Value] = []
    for item in query.items:
        values.extend(_evaluate_item(table, item, row_indices, highlighted))

    return ExecutionResult(
        values=tuple(values), highlighted_cells=frozenset(highlighted)
    )


def _filter(
    table: Table,
    conditions: tuple[Condition, ...],
    highlighted: set[tuple[int, str]],
) -> list[int]:
    """Row indices satisfying every condition, recording touched cells."""
    kept = list(range(table.n_rows))
    for condition in conditions:
        column_index = table.schema.index(condition.column)
        column_name = table.schema.columns[column_index].name
        surviving: list[int] = []
        for row_index in kept:
            cell = table.rows[row_index][column_index]
            if _matches(cell, condition):
                surviving.append(row_index)
                highlighted.add((row_index, column_name))
        kept = surviving
    return kept


def _matches(cell: Value, condition: Condition) -> bool:
    literal = condition.literal
    if condition.op is CompOp.EQ:
        return cell.equals(literal)
    if condition.op is CompOp.NEQ:
        return not cell.is_null and not cell.equals(literal)
    if cell.is_null:
        return False
    try:
        left = cell.as_number()
        right = literal.as_number()
    except Exception:
        left_key, right_key = cell.raw.lower(), literal.raw.lower()
        if condition.op is CompOp.LT:
            return left_key < right_key
        if condition.op is CompOp.GT:
            return left_key > right_key
        if condition.op is CompOp.LE:
            return left_key <= right_key
        return left_key >= right_key
    if condition.op is CompOp.LT:
        return left < right
    if condition.op is CompOp.GT:
        return left > right
    if condition.op is CompOp.LE:
        return left <= right
    return left >= right


def _evaluate_item(
    table: Table,
    item: ColumnItem | ArithmeticItem,
    row_indices: list[int],
    highlighted: set[tuple[int, str]],
) -> list[Value]:
    if isinstance(item, ArithmeticItem):
        left = _scalar(table, item.left, row_indices, highlighted)
        right = _scalar(table, item.right, row_indices, highlighted)
        number = (
            left.as_number() + right.as_number()
            if item.op == "+"
            else left.as_number() - right.as_number()
        )
        return [Value.number(number)]
    return _column_item_values(table, item, row_indices, highlighted)


def _column_item_values(
    table: Table,
    item: ColumnItem,
    row_indices: list[int],
    highlighted: set[tuple[int, str]],
) -> list[Value]:
    if item.aggregate is Aggregate.COUNT:
        if item.column == "*":
            return [Value.number(len(row_indices))]
        cells = _column_cells(table, item.column, row_indices, highlighted)
        cells = [cell for cell in cells if not cell.is_null]
        if item.distinct:
            # canonical_key matches Value.equals semantics, so "1,000",
            # "1000", and "$1,000" collapse to one distinct value.
            return [Value.number(len({c.canonical_key() for c in cells}))]
        return [Value.number(len(cells))]

    if item.column == "*":
        out: list[Value] = []
        for row_index in row_indices:
            for column, cell in zip(table.schema, table.rows[row_index]):
                highlighted.add((row_index, column.name))
                out.append(cell)
        return out

    cells = _column_cells(table, item.column, row_indices, highlighted)
    if item.aggregate is None:
        return [cell for cell in cells if not cell.is_null]

    numbers = _as_numbers(cells, item.column)
    if not numbers:
        return []
    if item.aggregate is Aggregate.SUM:
        return [Value.number(sum(numbers))]
    if item.aggregate is Aggregate.AVG:
        return [Value.number(sum(numbers) / len(numbers))]
    if item.aggregate is Aggregate.MIN:
        return [Value.number(min(numbers))]
    if item.aggregate is Aggregate.MAX:
        return [Value.number(max(numbers))]
    raise ProgramExecutionError(f"unsupported aggregate: {item.aggregate}")


def _scalar(
    table: Table,
    item: ColumnItem,
    row_indices: list[int],
    highlighted: set[tuple[int, str]],
) -> Value:
    values = _column_item_values(table, item, row_indices, highlighted)
    if len(values) != 1:
        raise ProgramExecutionError(
            "arithmetic projection requires scalar operands, got "
            f"{len(values)} values for column {item.column!r}"
        )
    return values[0]


def _column_cells(
    table: Table,
    column: str,
    row_indices: list[int],
    highlighted: set[tuple[int, str]],
) -> list[Value]:
    column_index = table.schema.index(column)
    column_name = table.schema.columns[column_index].name
    cells = []
    for row_index in row_indices:
        highlighted.add((row_index, column_name))
        cells.append(table.rows[row_index][column_index])
    return cells


def _as_numbers(cells: list[Value], column: str) -> list[float]:
    numbers: list[float] = []
    for cell in cells:
        if cell.is_null:
            continue
        try:
            numbers.append(cell.as_number())
        except Exception as error:
            raise ProgramTypeError(
                f"column {column!r} holds non-numeric value {cell.raw!r}"
            ) from error
    return numbers


def render_value(value: Value) -> str:
    """Render a value the way sqlite3 would (used by oracle tests)."""
    if value.is_number:
        return format_number(value.as_number())
    return value.raw
