"""Evaluator for parsed SELECT queries, with highlighted-cell tracking."""

from __future__ import annotations

from repro.errors import ProgramExecutionError, ProgramTypeError
from repro.programs.base import ExecutionResult
from repro.programs.sql.ast import (
    Aggregate,
    ArithmeticItem,
    ColumnItem,
    CompOp,
    Condition,
    SelectQuery,
)
from repro.tables.table import Table
from repro.tables.values import Value, format_number


def execute_sql(table: Table, query: SelectQuery) -> ExecutionResult:
    """Execute ``query`` against ``table``.

    Returns the denotation plus the set of highlighted cells — every cell
    read while filtering, ordering, or projecting, which the
    Table-To-Text operator and the FEVEROUS score both consume.
    """
    highlighted: set[tuple[int, str]] = set()

    row_indices = _filter(table, query.conditions, highlighted)

    if query.order is not None:
        column_index = table.schema.index(query.order.column)
        row_indices = sorted(
            row_indices,
            key=lambda i: table.rows[i][column_index]._key(),
            reverse=query.order.descending,
        )
        for index in row_indices:
            highlighted.add((index, table.schema.columns[column_index].name))

    if query.limit is not None:
        row_indices = row_indices[: query.limit]

    values: list[Value] = []
    for item in query.items:
        values.extend(_evaluate_item(table, item, row_indices, highlighted))

    return ExecutionResult(
        values=tuple(values), highlighted_cells=frozenset(highlighted)
    )


def _filter(
    table: Table,
    conditions: tuple[Condition, ...],
    highlighted: set[tuple[int, str]],
) -> list[int]:
    """Row indices satisfying every condition, recording touched cells."""
    kept = list(range(table.n_rows))
    for condition in conditions:
        column_index = table.schema.index(condition.column)
        column_name = table.schema.columns[column_index].name
        surviving: list[int] = []
        for row_index in kept:
            cell = table.rows[row_index][column_index]
            if _matches(cell, condition):
                surviving.append(row_index)
                highlighted.add((row_index, column_name))
        kept = surviving
    return kept


def _matches(cell: Value, condition: Condition) -> bool:
    literal = condition.literal
    if condition.op is CompOp.EQ:
        return cell.equals(literal)
    if condition.op is CompOp.NEQ:
        return not cell.is_null and not cell.equals(literal)
    if cell.is_null:
        return False
    try:
        left = cell.as_number()
        right = literal.as_number()
    except Exception:
        left_key, right_key = cell.raw.lower(), literal.raw.lower()
        if condition.op is CompOp.LT:
            return left_key < right_key
        if condition.op is CompOp.GT:
            return left_key > right_key
        if condition.op is CompOp.LE:
            return left_key <= right_key
        return left_key >= right_key
    if condition.op is CompOp.LT:
        return left < right
    if condition.op is CompOp.GT:
        return left > right
    if condition.op is CompOp.LE:
        return left <= right
    return left >= right


def _evaluate_item(
    table: Table,
    item: ColumnItem | ArithmeticItem,
    row_indices: list[int],
    highlighted: set[tuple[int, str]],
) -> list[Value]:
    if isinstance(item, ArithmeticItem):
        left = _scalar(table, item.left, row_indices, highlighted)
        right = _scalar(table, item.right, row_indices, highlighted)
        number = (
            left.as_number() + right.as_number()
            if item.op == "+"
            else left.as_number() - right.as_number()
        )
        return [Value.number(number)]
    return _column_item_values(table, item, row_indices, highlighted)


def _column_item_values(
    table: Table,
    item: ColumnItem,
    row_indices: list[int],
    highlighted: set[tuple[int, str]],
) -> list[Value]:
    if item.aggregate is Aggregate.COUNT:
        if item.column == "*":
            return [Value.number(len(row_indices))]
        cells = _column_cells(table, item.column, row_indices, highlighted)
        cells = [cell for cell in cells if not cell.is_null]
        if item.distinct:
            # canonical_key matches Value.equals semantics, so "1,000",
            # "1000", and "$1,000" collapse to one distinct value.
            return [Value.number(len({c.canonical_key() for c in cells}))]
        return [Value.number(len(cells))]

    if item.column == "*":
        out: list[Value] = []
        for row_index in row_indices:
            for column, cell in zip(table.schema, table.rows[row_index]):
                highlighted.add((row_index, column.name))
                out.append(cell)
        return out

    cells = _column_cells(table, item.column, row_indices, highlighted)
    if item.aggregate is None:
        return [cell for cell in cells if not cell.is_null]

    numbers = _as_numbers(cells, item.column)
    if not numbers:
        return []
    if item.aggregate is Aggregate.SUM:
        return [Value.number(sum(numbers))]
    if item.aggregate is Aggregate.AVG:
        return [Value.number(sum(numbers) / len(numbers))]
    if item.aggregate is Aggregate.MIN:
        return [Value.number(min(numbers))]
    if item.aggregate is Aggregate.MAX:
        return [Value.number(max(numbers))]
    raise ProgramExecutionError(f"unsupported aggregate: {item.aggregate}")


def _scalar(
    table: Table,
    item: ColumnItem,
    row_indices: list[int],
    highlighted: set[tuple[int, str]],
) -> Value:
    values = _column_item_values(table, item, row_indices, highlighted)
    if len(values) != 1:
        raise ProgramExecutionError(
            "arithmetic projection requires scalar operands, got "
            f"{len(values)} values for column {item.column!r}"
        )
    return values[0]


def _column_cells(
    table: Table,
    column: str,
    row_indices: list[int],
    highlighted: set[tuple[int, str]],
) -> list[Value]:
    column_index = table.schema.index(column)
    column_name = table.schema.columns[column_index].name
    cells = []
    for row_index in row_indices:
        highlighted.add((row_index, column_name))
        cells.append(table.rows[row_index][column_index])
    return cells


def _as_numbers(cells: list[Value], column: str) -> list[float]:
    numbers: list[float] = []
    for cell in cells:
        if cell.is_null:
            continue
        try:
            numbers.append(cell.as_number())
        except Exception as error:
            raise ProgramTypeError(
                f"column {column!r} holds non-numeric value {cell.raw!r}"
            ) from error
    return numbers


def render_value(value: Value) -> str:
    """Render a value the way sqlite3 would (used by oracle tests)."""
    if value.is_number:
        return format_number(value.as_number())
    return value.raw
