"""Tokenizer for the mini SQL dialect."""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum

from repro.errors import ProgramParseError

KEYWORDS = {
    "select",
    "from",
    "where",
    "and",
    "order",
    "by",
    "asc",
    "desc",
    "limit",
    "count",
    "sum",
    "avg",
    "min",
    "max",
    "abs",
    "distinct",
}


class TokenKind(str, Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word.lower()


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:[^']|'')*'|"(?:[^"]|"")*")
  | (?P<bracket>\[[^\]]*\]|`[^`]*`)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<symbol><=|>=|!=|<>|[(),*=<>+\-/])
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


def tokenize_sql(text: str) -> list[Token]:
    """Tokenize a SQL string; raises :class:`ProgramParseError` on junk."""
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ProgramParseError(
                f"unexpected character {text[position]!r} in SQL", position
            )
        if match.lastgroup == "ws":
            position = match.end()
            continue
        lexeme = match.group()
        if match.lastgroup == "string":
            quote = lexeme[0]
            body = lexeme[1:-1].replace(quote * 2, quote)
            tokens.append(Token(TokenKind.STRING, body, position))
        elif match.lastgroup == "bracket":
            tokens.append(Token(TokenKind.IDENT, lexeme[1:-1], position))
        elif match.lastgroup == "number":
            tokens.append(Token(TokenKind.NUMBER, lexeme, position))
        elif match.lastgroup == "symbol":
            symbol = "!=" if lexeme == "<>" else lexeme
            tokens.append(Token(TokenKind.SYMBOL, symbol, position))
        else:
            lowered = lexeme.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, lowered, position))
            else:
                tokens.append(Token(TokenKind.IDENT, lexeme, position))
        position = match.end()
    tokens.append(Token(TokenKind.EOF, "", len(text)))
    return tokens
