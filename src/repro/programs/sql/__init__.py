"""A self-contained mini SQL engine for the SQUALL-style query subset.

Grammar (case-insensitive keywords)::

    query      := SELECT select_list FROM w [WHERE conj] [ORDER BY col [ASC|DESC]] [LIMIT n]
    select_list:= select_item ("," select_item)*
    select_item:= col | agg "(" col ")" | agg "(" "*" ")"
                 | col op col            -- arithmetic projection (a - b, a + b)
    agg        := COUNT | SUM | AVG | MIN | MAX
    conj       := cond (AND cond)*
    cond       := col cmp literal
    cmp        := = | != | < | > | <= | >=

This covers every reasoning type the paper lists for SQL queries
(Section II-C): equivalence, comparison (incl. ``ORDER BY``/``LIMIT``
argmax-argmin idioms), counting, sum, diff, and conjunction.  The
executor is cross-checked against stdlib ``sqlite3`` in the test suite.
"""

from repro.programs.sql.lexer import Token, TokenKind, tokenize_sql
from repro.programs.sql.ast import (
    Aggregate,
    ArithmeticItem,
    ColumnItem,
    Comparison,
    CompOp,
    Condition,
    SelectQuery,
)
from repro.programs.sql.parser import parse_sql
from repro.programs.sql.executor import execute_sql

__all__ = [
    "Token",
    "TokenKind",
    "tokenize_sql",
    "Aggregate",
    "ArithmeticItem",
    "ColumnItem",
    "Comparison",
    "CompOp",
    "Condition",
    "SelectQuery",
    "parse_sql",
    "execute_sql",
]
