"""Auto program generation for SQL queries (future-work extension).

The SQL counterpart of :mod:`repro.programs.logic.generator`: composes
type-correct :class:`~repro.programs.sql.ast.SelectQuery` objects
directly from a table's schema, beyond the fixed SQUALL-style pool —
extra conditions, mixed aggregate/projection heads, deeper ORDER BY
combinations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.programs.sql.ast import (
    Aggregate,
    ArithmeticItem,
    ColumnItem,
    Comparison,
    CompOp,
    Condition,
    SelectQuery,
)
from repro.programs.sql.parser import SqlProgram
from repro.rng import choice
from repro.tables.table import Table
from repro.tables.values import parse_value


@dataclass(frozen=True)
class SqlAutoGenConfig:
    """Knobs for the SQL auto generator."""

    max_conditions: int = 2
    attempts_per_query: int = 6
    allow_arithmetic_head: bool = True


@dataclass
class AutoSqlGenerator:
    """Synthesizes executable SELECT queries from a table schema."""

    rng: random.Random
    config: SqlAutoGenConfig = field(default_factory=SqlAutoGenConfig)

    def generate(self, table: Table) -> SqlProgram | None:
        """One valid, non-empty query on ``table`` (or None)."""
        for _ in range(self.config.attempts_per_query):
            try:
                query = self._query(table)
                program = SqlProgram(query=query)
                result = program.execute(table)
            except ReproError:
                continue
            if result.is_empty or len(result.values) > 10:
                continue
            return program
        return None

    def generate_many(self, table: Table, budget: int) -> list[SqlProgram]:
        out: list[SqlProgram] = []
        for _ in range(budget * 2):
            if len(out) >= budget:
                break
            program = self.generate(table)
            if program is not None:
                out.append(program)
        return out

    # -- query synthesis -----------------------------------------------------
    def _query(self, table: Table) -> SelectQuery:
        head_kind = choice(
            self.rng,
            ["project", "aggregate", "count", "arithmetic"]
            if self.config.allow_arithmetic_head
            else ["project", "aggregate", "count"],
        )
        items = self._head(table, head_kind)
        conditions = self._conditions(table)
        order, limit = self._order_limit(table, head_kind)
        return SelectQuery(
            items=tuple(items),
            conditions=tuple(conditions),
            order=order,
            limit=limit,
        )

    def _head(self, table: Table, head_kind: str):
        if head_kind == "project":
            n = self.rng.randint(1, min(2, table.n_columns))
            names = self.rng.sample(table.column_names, n)
            return [ColumnItem(column=name) for name in names]
        if head_kind == "count":
            if self.rng.random() < 0.5:
                return [ColumnItem(column="*", aggregate=Aggregate.COUNT)]
            return [
                ColumnItem(
                    column=self._any_column(table),
                    aggregate=Aggregate.COUNT,
                    distinct=True,
                )
            ]
        if head_kind == "aggregate":
            aggregate = choice(
                self.rng,
                [Aggregate.SUM, Aggregate.AVG, Aggregate.MIN, Aggregate.MAX],
            )
            return [
                ColumnItem(column=self._numeric_column(table), aggregate=aggregate)
            ]
        # arithmetic: max(col) - min(col) or sum(a) - sum(b)
        column = self._numeric_column(table)
        if self.rng.random() < 0.5:
            return [
                ArithmeticItem(
                    left=ColumnItem(column=column, aggregate=Aggregate.MAX),
                    op="-",
                    right=ColumnItem(column=column, aggregate=Aggregate.MIN),
                )
            ]
        other = self._numeric_column(table)
        return [
            ArithmeticItem(
                left=ColumnItem(column=column, aggregate=Aggregate.SUM),
                op=choice(self.rng, ["+", "-"]),
                right=ColumnItem(column=other, aggregate=Aggregate.SUM),
            )
        ]

    def _conditions(self, table: Table) -> list[Condition]:
        n = self.rng.randint(0, self.config.max_conditions)
        conditions: list[Condition] = []
        used: set[str] = set()
        for _ in range(n):
            column = self._any_column(table)
            if column in used:
                continue
            used.add(column)
            values = [
                value for value in table.distinct_values(column)
                if value.raw.strip()
            ]
            if not values:
                continue
            literal = choice(self.rng, values)
            if column in table.numeric_column_names():
                op = choice(self.rng, [CompOp.EQ, CompOp.GT, CompOp.LT,
                                       CompOp.GE, CompOp.LE])
            else:
                op = choice(self.rng, [CompOp.EQ, CompOp.NEQ])
            conditions.append(
                Condition(column=column, op=op,
                          literal=parse_value(literal.raw))
            )
        return conditions

    def _order_limit(self, table: Table, head_kind: str):
        if head_kind != "project" or self.rng.random() < 0.5:
            return None, None
        column = self._numeric_column(table)
        order = Comparison(
            column=column, descending=self.rng.random() < 0.5
        )
        limit = self.rng.randint(1, max(1, min(3, table.n_rows)))
        return order, limit

    def _any_column(self, table: Table) -> str:
        if not table.column_names:
            raise ReproError("table has no columns")
        return choice(self.rng, table.column_names)

    def _numeric_column(self, table: Table) -> str:
        columns = table.numeric_column_names()
        if not columns:
            raise ReproError("table has no numeric columns")
        return choice(self.rng, columns)
