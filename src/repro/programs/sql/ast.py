"""AST node definitions for the mini SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.tables.values import Value


class Aggregate(str, Enum):
    """Aggregate functions the dialect supports."""

    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CompOp(str, Enum):
    """Comparison operators of WHERE conditions."""

    EQ = "="
    NEQ = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Condition:
    """One WHERE condition: ``column op literal``."""

    column: str
    op: CompOp
    literal: Value

    def tokens(self) -> list[str]:
        literal = self.literal.raw
        if not self.literal.is_number:
            literal = f"'{literal}'"
        return [self.column, self.op.value, literal]


@dataclass(frozen=True)
class ColumnItem:
    """A plain or aggregated column in the SELECT list.

    ``aggregate=None`` projects the column; ``column='*'`` with
    ``aggregate=COUNT`` is ``count(*)``.
    """

    column: str
    aggregate: Aggregate | None = None
    distinct: bool = False

    def tokens(self) -> list[str]:
        if self.aggregate is None:
            return [self.column]
        inner = ["distinct", self.column] if self.distinct else [self.column]
        return [self.aggregate.value, "(", *inner, ")"]


@dataclass(frozen=True)
class ArithmeticItem:
    """An arithmetic projection such as ``max(a) - min(a)`` or ``a - b``.

    Covers the paper's ``diff(-)`` and ``sum(+)`` reasoning types when
    expressed inside a single query.
    """

    left: ColumnItem
    op: str  # "+" or "-"
    right: ColumnItem

    def tokens(self) -> list[str]:
        return [*self.left.tokens(), self.op, *self.right.tokens()]


SelectItem = ColumnItem | ArithmeticItem


@dataclass(frozen=True)
class Comparison:
    """ORDER BY clause: column plus direction."""

    column: str
    descending: bool = False

    def tokens(self) -> list[str]:
        return ["order", "by", self.column, "desc" if self.descending else "asc"]


@dataclass(frozen=True)
class SelectQuery:
    """A full SELECT statement."""

    items: tuple[SelectItem, ...]
    conditions: tuple[Condition, ...] = field(default_factory=tuple)
    order: Comparison | None = None
    limit: int | None = None

    def tokens(self) -> list[str]:
        out: list[str] = ["select"]
        for index, item in enumerate(self.items):
            if index:
                out.append(",")
            out.extend(item.tokens())
        out.extend(["from", "w"])
        if self.conditions:
            out.append("where")
            for index, condition in enumerate(self.conditions):
                if index:
                    out.append("and")
                out.extend(condition.tokens())
        if self.order is not None:
            out.extend(self.order.tokens())
        if self.limit is not None:
            out.extend(["limit", str(self.limit)])
        return out

    def text(self) -> str:
        return " ".join(self.tokens())

    @property
    def referenced_columns(self) -> list[str]:
        """All column names the query touches (select, where, order)."""
        names: list[str] = []
        for item in self.items:
            if isinstance(item, ColumnItem):
                if item.column != "*":
                    names.append(item.column)
            else:
                for side in (item.left, item.right):
                    if side.column != "*":
                        names.append(side.column)
        names.extend(condition.column for condition in self.conditions)
        if self.order is not None:
            names.append(self.order.column)
        seen: set[str] = set()
        unique: list[str] = []
        for name in names:
            key = name.lower()
            if key not in seen:
                seen.add(key)
                unique.append(name)
        return unique
