"""Recursive-descent parser for the mini SQL dialect."""

from __future__ import annotations

from repro.errors import ProgramParseError
from repro.programs.base import ExecutionResult, Program, ProgramKind
from repro.programs.sql.ast import (
    Aggregate,
    ArithmeticItem,
    ColumnItem,
    Comparison,
    CompOp,
    Condition,
    SelectItem,
    SelectQuery,
)
from repro.programs.sql.lexer import Token, TokenKind, tokenize_sql
from repro.tables.values import parse_value

_AGGREGATES = {member.value for member in Aggregate}
_COMPARATORS = {member.value: member for member in CompOp}


class _Parser:
    """Hand-written LL(1) parser over the token stream."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    # -- token helpers -----------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._current
        if not token.is_keyword(word):
            raise ProgramParseError(
                f"expected {word.upper()!r}, found {token.text!r}", token.position
            )
        return self._advance()

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._current
        if token.kind is not TokenKind.SYMBOL or token.text != symbol:
            raise ProgramParseError(
                f"expected {symbol!r}, found {token.text!r}", token.position
            )
        return self._advance()

    def _match_symbol(self, symbol: str) -> bool:
        token = self._current
        if token.kind is TokenKind.SYMBOL and token.text == symbol:
            self._advance()
            return True
        return False

    def _column_name(self) -> str:
        token = self._current
        if token.kind in (TokenKind.IDENT, TokenKind.STRING):
            return self._advance().text
        # Column names may collide with soft keywords (e.g. "max speed"
        # bracketed identifiers already handled by the lexer).
        if token.kind is TokenKind.KEYWORD and token.text not in {
            "select",
            "from",
            "where",
            "and",
            "order",
            "limit",
        }:
            return self._advance().text
        raise ProgramParseError(
            f"expected a column name, found {token.text!r}", token.position
        )

    # -- grammar -----------------------------------------------------------
    def parse(self) -> SelectQuery:
        self._expect_keyword("select")
        items = [self._select_item()]
        while self._match_symbol(","):
            items.append(self._select_item())
        self._expect_keyword("from")
        table_token = self._advance()
        if table_token.kind is not TokenKind.IDENT:
            raise ProgramParseError(
                f"expected a table name, found {table_token.text!r}",
                table_token.position,
            )
        conditions: list[Condition] = []
        if self._current.is_keyword("where"):
            self._advance()
            conditions.append(self._condition())
            while self._current.is_keyword("and"):
                self._advance()
                conditions.append(self._condition())
        order = None
        if self._current.is_keyword("order"):
            self._advance()
            self._expect_keyword("by")
            column = self._column_name()
            descending = False
            if self._current.is_keyword("desc"):
                descending = True
                self._advance()
            elif self._current.is_keyword("asc"):
                self._advance()
            order = Comparison(column=column, descending=descending)
        limit = None
        if self._current.is_keyword("limit"):
            self._advance()
            token = self._advance()
            if token.kind is not TokenKind.NUMBER:
                raise ProgramParseError(
                    f"expected a LIMIT count, found {token.text!r}", token.position
                )
            limit = int(float(token.text))
        token = self._current
        if token.kind is not TokenKind.EOF:
            raise ProgramParseError(
                f"unexpected trailing input {token.text!r}", token.position
            )
        return SelectQuery(
            items=tuple(items),
            conditions=tuple(conditions),
            order=order,
            limit=limit,
        )

    def _select_item(self) -> SelectItem:
        left = self._column_or_aggregate()
        token = self._current
        if token.kind is TokenKind.SYMBOL and token.text in {"+", "-"}:
            op = self._advance().text
            right = self._column_or_aggregate()
            return ArithmeticItem(left=left, op=op, right=right)
        return left

    def _column_or_aggregate(self) -> ColumnItem:
        token = self._current
        if token.kind is TokenKind.KEYWORD and token.text in _AGGREGATES:
            aggregate = Aggregate(self._advance().text)
            self._expect_symbol("(")
            distinct = False
            if self._current.is_keyword("distinct"):
                distinct = True
                self._advance()
            if self._match_symbol("*"):
                column = "*"
            else:
                column = self._column_name()
            self._expect_symbol(")")
            return ColumnItem(column=column, aggregate=aggregate, distinct=distinct)
        if self._match_symbol("*"):
            return ColumnItem(column="*")
        return ColumnItem(column=self._column_name())

    def _condition(self) -> Condition:
        column = self._column_name()
        token = self._advance()
        if token.kind is not TokenKind.SYMBOL or token.text not in _COMPARATORS:
            raise ProgramParseError(
                f"expected a comparison operator, found {token.text!r}",
                token.position,
            )
        op = _COMPARATORS[token.text]
        literal_token = self._advance()
        if literal_token.kind is TokenKind.NUMBER:
            literal = parse_value(literal_token.text)
        elif literal_token.kind in (TokenKind.STRING, TokenKind.IDENT):
            literal = parse_value(literal_token.text)
        else:
            raise ProgramParseError(
                f"expected a literal, found {literal_token.text!r}",
                literal_token.position,
            )
        return Condition(column=column, op=op, literal=literal)


class SqlProgram(Program):
    """A parsed SQL query conforming to the :class:`Program` interface."""

    def __init__(self, query: SelectQuery, source: str = ""):
        super().__init__(source=source or query.text())
        object.__setattr__(self, "query", query)

    @property
    def kind(self) -> ProgramKind:
        return ProgramKind.SQL

    def execute(self, table) -> ExecutionResult:
        from repro.programs.sql.executor import execute_sql

        return execute_sql(table, self.query)

    def tokens(self) -> list[str]:
        return self.query.tokens()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SqlProgram) and self.query == other.query

    def __hash__(self) -> int:
        return hash(("sql", self.query))


def parse_sql(text: str) -> SqlProgram:
    """Parse a SQL string into an executable :class:`SqlProgram`."""
    query = _Parser(tokenize_sql(text)).parse()
    return SqlProgram(query=query, source=text)
