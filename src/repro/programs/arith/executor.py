"""Evaluator for arithmetic expression programs."""

from __future__ import annotations

import math

from repro.errors import ProgramExecutionError
from repro.programs.arith.ast import (
    Arg,
    ArithProgram,
    CellRef,
    ColumnRef,
    NumberLiteral,
    StepRef,
    TableAggArg,
)
from repro.programs.base import ExecutionResult
from repro.tables.table import Table
from repro.tables.values import Value


def execute_arith(table: Table, program: ArithProgram) -> ExecutionResult:
    """Execute the step sequence; the last step's value is the answer.

    ``greater`` steps produce a boolean; any numeric step produces a
    number.  Division by ~zero, overflow, or unresolvable cell
    references raise :class:`ProgramExecutionError` so the pipeline can
    discard the sample.
    """
    highlighted: set[tuple[int, str]] = set()
    results: list[float | bool] = []
    for step in program.steps:
        values = [
            _resolve(table, arg, results, highlighted) for arg in step.args
        ]
        results.append(_apply(step.op, values))
    final = results[-1]
    if isinstance(final, bool):
        return ExecutionResult(
            values=(), highlighted_cells=frozenset(highlighted), truth=final
        )
    if not math.isfinite(final):
        raise ProgramExecutionError("arithmetic expression overflowed")
    return ExecutionResult(
        values=(Value.number(final),), highlighted_cells=frozenset(highlighted)
    )


def _resolve(
    table: Table,
    arg: Arg,
    results: list[float | bool],
    highlighted: set[tuple[int, str]],
) -> float | list[float]:
    if isinstance(arg, NumberLiteral):
        return arg.value
    if isinstance(arg, StepRef):
        previous = results[arg.index]
        if isinstance(previous, bool):
            raise ProgramExecutionError(
                f"step #{arg.index} produced a boolean, not a number"
            )
        return previous
    if isinstance(arg, CellRef):
        return _resolve_cell(table, arg, highlighted)
    if isinstance(arg, ColumnRef):
        return _resolve_column(table, arg.column_name, highlighted)
    if isinstance(arg, TableAggArg):
        column = _resolve_column(table, arg.column.column_name, highlighted)
        result = _apply(arg.op, [column])
        if isinstance(result, bool):  # pragma: no cover - table ops are numeric
            raise ProgramExecutionError("nested aggregation must be numeric")
        return result
    raise ProgramExecutionError(f"unsupported argument {arg!r}")


def _resolve_cell(
    table: Table, ref: CellRef, highlighted: set[tuple[int, str]]
) -> float:
    """Find the cell at (row named A, column B) trying both orders."""
    for row_name, column_name in (
        (ref.row_name, ref.column_name),
        (ref.column_name, ref.row_name),
    ):
        if column_name not in table.schema:
            continue
        row_index = table.find_row_by_name(row_name)
        if row_index is None:
            continue
        cell = table.cell(row_index, column_name)
        if cell.is_null:
            continue
        try:
            number = cell.as_number()
        except Exception:
            continue
        highlighted.add((row_index, table.schema.column(column_name).name))
        return number
    raise ProgramExecutionError(
        f"cell reference {ref.text()!r} does not resolve to a numeric cell"
    )


def _resolve_column(
    table: Table, column: str, highlighted: set[tuple[int, str]]
) -> list[float]:
    if column not in table.schema:
        raise ProgramExecutionError(f"unknown column {column!r}")
    numbers: list[float] = []
    name = table.schema.column(column).name
    for row_index, cell in enumerate(table.column_values(column)):
        if cell.is_null:
            continue
        try:
            numbers.append(cell.as_number())
        except Exception:
            continue
        highlighted.add((row_index, name))
    if not numbers:
        raise ProgramExecutionError(f"column {column!r} has no numeric cells")
    return numbers


def _apply(op: str, args: list[float | list[float]]) -> float | bool:
    if op in ("table_max", "table_min", "table_sum", "table_average"):
        (column,) = args
        if not isinstance(column, list):
            column = [column]
        if op == "table_max":
            return max(column)
        if op == "table_min":
            return min(column)
        if op == "table_sum":
            return sum(column)
        return sum(column) / len(column)

    left, right = (_to_scalar(arg) for arg in args)
    if op == "add":
        return left + right
    if op == "subtract":
        return left - right
    if op == "multiply":
        return left * right
    if op == "divide":
        if abs(right) < 1e-12:
            raise ProgramExecutionError("division by zero")
        return left / right
    if op == "greater":
        return left > right
    if op == "exp":
        try:
            result = left**right
        except (OverflowError, ZeroDivisionError, ValueError) as error:
            raise ProgramExecutionError(f"exp failed: {error}") from error
        if isinstance(result, complex):
            raise ProgramExecutionError("exp produced a complex number")
        return result
    raise ProgramExecutionError(f"unknown arithmetic operation {op!r}")


def _to_scalar(arg: float | list[float]) -> float:
    if isinstance(arg, list):
        raise ProgramExecutionError(
            "a whole-column argument is only valid in table_* operations"
        )
    return float(arg)
