"""AST for arithmetic expression programs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.programs.base import ExecutionResult, Program, ProgramKind
from repro.tables.values import format_number

#: Binary mathematical operations.
BINARY_OPS = ("add", "subtract", "multiply", "divide", "greater", "exp")

#: Unary table aggregations over a named column.
TABLE_OPS = ("table_max", "table_min", "table_sum", "table_average")


@dataclass(frozen=True)
class NumberLiteral:
    """A literal numeric argument (FinQA's ``const_*``)."""

    value: float

    def text(self) -> str:
        return format_number(self.value)


@dataclass(frozen=True)
class StepRef:
    """Reference to the result of an earlier step: ``#k``."""

    index: int

    def text(self) -> str:
        return f"#{self.index}"


@dataclass(frozen=True)
class CellRef:
    """A table cell named by ``<row name> of <column name>``.

    The executor resolves the two parts flexibly (either order) because
    financial tables are written both row-major and column-major.
    """

    row_name: str
    column_name: str

    def text(self) -> str:
        return f"the {self.row_name} of {self.column_name}"


@dataclass(frozen=True)
class ColumnRef:
    """A whole column, consumed by table aggregation operations."""

    column_name: str

    def text(self) -> str:
        return self.column_name


@dataclass(frozen=True)
class TableAggArg:
    """A nested table aggregation used as a scalar argument.

    FinQA programs write e.g. ``divide ( x , table_sum ( c1 ) )``; the
    inner aggregation evaluates to one number.
    """

    op: str
    column: ColumnRef

    def text(self) -> str:
        return f"{self.op} ( {self.column.text()} )"


Arg = NumberLiteral | StepRef | CellRef | ColumnRef | TableAggArg


@dataclass(frozen=True)
class ArithStep:
    """One operation application in the step sequence."""

    op: str
    args: tuple[Arg, ...]

    def text(self) -> str:
        inner = " , ".join(arg.text() for arg in self.args)
        return f"{self.op} ( {inner} )"


@dataclass(frozen=True)
class ArithProgramBody:
    """The comparable payload of an arithmetic program."""

    steps: tuple[ArithStep, ...] = field(default_factory=tuple)


class ArithProgram(Program):
    """A parsed arithmetic expression conforming to :class:`Program`."""

    def __init__(self, steps: tuple[ArithStep, ...], source: str = ""):
        body = ArithProgramBody(steps=steps)
        super().__init__(source=source or " , ".join(s.text() for s in steps))
        object.__setattr__(self, "body", body)

    @property
    def steps(self) -> tuple[ArithStep, ...]:
        return self.body.steps

    @property
    def kind(self) -> ProgramKind:
        return ProgramKind.ARITH

    def execute(self, table) -> ExecutionResult:
        from repro.programs.arith.executor import execute_arith

        return execute_arith(table, self)

    def tokens(self) -> list[str]:
        out: list[str] = []
        for index, step in enumerate(self.steps):
            if index:
                out.append(",")
            out.append(step.op)
            out.append("(")
            for arg_index, arg in enumerate(step.args):
                if arg_index:
                    out.append(",")
                out.extend(arg.text().split())
            out.append(")")
        return out

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ArithProgram) and self.body == other.body

    def __hash__(self) -> int:
        return hash(("arith", self.body))
