"""FinQA-style arithmetic expression programs.

An arithmetic expression is a comma-separated sequence of steps::

    subtract ( the Stockholders' equity of 2019 , the Stockholders' equity of 2018 ) ,
    divide ( #0 , the Stockholders' equity of 2018 )

Supported mathematical operations (paper Section II-C): ``add``,
``subtract``, ``multiply``, ``divide``, ``greater``, ``exp``; table
aggregation operations: ``table_max``, ``table_min``, ``table_sum``,
``table_average``.  ``#k`` references the result of step ``k``.  Cell
references are written ``<row name> of <column name>`` (or the reverse)
and resolved against the table's row-name column.
"""

from repro.programs.arith.ast import (
    ArithStep,
    ArithProgram,
    CellRef,
    NumberLiteral,
    StepRef,
    ColumnRef,
)
from repro.programs.arith.parser import parse_arith
from repro.programs.arith.executor import execute_arith

__all__ = [
    "ArithStep",
    "ArithProgram",
    "CellRef",
    "NumberLiteral",
    "StepRef",
    "ColumnRef",
    "parse_arith",
    "execute_arith",
]
