"""Parser for arithmetic expression programs."""

from __future__ import annotations

import re

from repro.errors import ProgramParseError
from repro.programs.arith.ast import (
    Arg,
    ArithProgram,
    ArithStep,
    BINARY_OPS,
    CellRef,
    ColumnRef,
    NumberLiteral,
    StepRef,
    TableAggArg,
    TABLE_OPS,
)
from repro.tables.values import coerce_number

_STEP_RE = re.compile(
    r"\s*(?P<op>[a-z_]+)\s*\(\s*(?P<args>.*)\s*\)\s*",
    re.IGNORECASE | re.DOTALL,
)
_TABLE_AGG_RE = re.compile(
    r"^(?P<op>table_(?:max|min|sum|average))\s*\(\s*(?P<col>[^()]+?)\s*\)$",
    re.IGNORECASE,
)
_STEP_REF_RE = re.compile(r"^#(\d+)$")
_CONST_RE = re.compile(r"^const_(m?\d+(?:_\d+)?)$", re.IGNORECASE)
_CELL_RE = re.compile(r"^(?:the\s+)?(?P<a>.+?)\s+of\s+(?P<b>.+)$", re.IGNORECASE)


def _split_steps(text: str) -> list[str]:
    """Split the program on commas that separate steps (not arguments)."""
    steps: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise ProgramParseError("unbalanced ')' in arithmetic expression")
        if char == "," and depth == 0:
            steps.append("".join(current))
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise ProgramParseError("unbalanced '(' in arithmetic expression")
    steps.append("".join(current))
    return [step for step in (s.strip() for s in steps) if step]


def _split_args(text: str) -> list[str]:
    """Split argument lists on top-level commas (nested calls kept whole)."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return [part.strip() for part in parts if part.strip()]


def _parse_arg(text: str) -> Arg:
    agg_match = _TABLE_AGG_RE.match(text)
    if agg_match:
        return TableAggArg(
            op=agg_match.group("op").lower(),
            column=ColumnRef(column_name=agg_match.group("col").strip()),
        )
    ref_match = _STEP_REF_RE.match(text)
    if ref_match:
        return StepRef(index=int(ref_match.group(1)))
    const_match = _CONST_RE.match(text)
    if const_match:
        body = const_match.group(1)
        negative = body.startswith("m")
        if negative:
            body = body[1:]
        number = float(body.replace("_", "."))
        return NumberLiteral(value=-number if negative else number)
    number = coerce_number(text)
    if number is not None:
        return NumberLiteral(value=number)
    cell_match = _CELL_RE.match(text)
    if cell_match:
        return CellRef(
            row_name=cell_match.group("a").strip(),
            column_name=cell_match.group("b").strip(),
        )
    return ColumnRef(column_name=text)


def parse_arith(text: str) -> ArithProgram:
    """Parse an arithmetic expression into an :class:`ArithProgram`."""
    chunks = _split_steps(text)
    if not chunks:
        raise ProgramParseError("empty arithmetic expression")
    steps: list[ArithStep] = []
    for position, chunk in enumerate(chunks):
        match = _STEP_RE.fullmatch(chunk)
        if match is None:
            raise ProgramParseError(
                f"malformed step {chunk!r} in arithmetic expression"
            )
        op = match.group("op").lower()
        raw_args = _split_args(match.group("args"))
        if op in BINARY_OPS:
            args = [_parse_arg(arg) for arg in raw_args]
            if len(args) != 2:
                raise ProgramParseError(
                    f"{op} expects 2 arguments, got {len(args)}"
                )
        elif op in TABLE_OPS:
            if len(raw_args) != 1:
                raise ProgramParseError(
                    f"{op} expects 1 argument, got {len(raw_args)}"
                )
            # Table-op operands are column names even when they look
            # numeric (fiscal years like "2019" are common headers).
            args = [ColumnRef(column_name=raw_args[0])]
        else:
            raise ProgramParseError(f"unknown arithmetic operation {op!r}")
        for arg in args:
            if isinstance(arg, StepRef) and arg.index >= position:
                raise ProgramParseError(
                    f"step reference #{arg.index} is not yet defined at step "
                    f"{position}"
                )
        steps.append(ArithStep(op=op, args=tuple(args)))
    return ArithProgram(steps=tuple(steps), source=text)
