"""Corruption profiles: named operator bundles + the perturb entry points.

A profile is an ordered subset of the registry in
:mod:`repro.messy.operators`; :func:`perturb_table` applies the
profile's operators in their canonical registration order, each drawing
from its own named sub-stream of the caller's ``rng_key``.  Because no
operator reads another's stream, a profile is exactly as deterministic
as its members: same key + same table → byte-identical output.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.errors import MessyTableError
from repro.messy.operators import OPERATORS, get_operator
from repro.pipelines.samples import ReasoningSample
from repro.tables.context import TableContext
from repro.tables.table import Table

#: named operator bundles.  "heavy" is the full registry in canonical
#: order; the narrower profiles isolate one damage family for ablations.
PROFILES: dict[str, tuple[str, ...]] = {
    "headers": ("abbrev_headers", "merge_columns"),
    "cells": (
        "currency_cells",
        "unit_suffix_cells",
        "percent_cells",
        "locale_numbers",
        "footnote_markers",
        "dash_nulls",
    ),
    "layout": ("duplicate_column", "shuffle_columns", "transpose"),
    "light": ("footnote_markers", "dash_nulls"),
    "heavy": tuple(OPERATORS),
}


def profile_operators(profile: str) -> tuple[str, ...]:
    """The operator names a profile applies, in application order."""
    try:
        return PROFILES[profile]
    except KeyError:
        raise MessyTableError(
            f"unknown corruption profile {profile!r} "
            f"(available: {', '.join(sorted(PROFILES))})"
        ) from None


def perturb_table(
    table: Table, rng_key: str, profile: str = "heavy"
) -> Table:
    """Apply a corruption profile to one table, deterministically."""
    out = table
    for name in profile_operators(profile):
        out = get_operator(name)(out, rng_key)
    return out


def perturb_context(
    context: TableContext, rng_key: str, profile: str = "heavy"
) -> TableContext:
    """Perturb a context's table; paragraphs and uid are untouched.

    The context is stamped ``meta["perturb"] = profile`` so downstream
    stages (stratified evaluation, telemetry) can tell messy contexts
    from clean ones.
    """
    table = perturb_table(context.table, rng_key, profile)
    meta = {**context.meta, "perturb": profile}
    return replace(context, table=table, meta=meta)


def perturb_samples(
    samples: Sequence[ReasoningSample],
    rng_key: str,
    profile: str = "heavy",
) -> list[ReasoningSample]:
    """Perturb the *contexts* of evaluation samples, keeping gold labels.

    This is the robustness-benchmark transform: the question/claim and
    its gold answer still describe the clean evidence, but the model
    only sees the corrupted table — exactly the situation of a model
    trained on clean data meeting a messy production table.  Each
    sample's table draws from its own sub-stream (keyed by position),
    so evaluation subsets can be perturbed independently yet
    reproducibly.
    """
    out = []
    for index, sample in enumerate(samples):
        context = perturb_context(
            sample.context, f"{rng_key}:sample:{index}", profile
        )
        out.append(replace(sample, context=context))
    return out
