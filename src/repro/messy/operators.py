"""Deterministic table-corruption operators.

Each operator is a **pure function** ``op(table, rng_key) -> Table``:
all randomness comes from a named stream derived from ``rng_key``
(:func:`repro.rng.rng_from_key`), and every operator derives its *own*
sub-stream from the key, so operators are composable without perturbing
each other's draws.  Same key, same input table → byte-identical output,
no matter which process, thread, or worker applies the operator — the
same argument that makes ``UCTR.generate(workers=N)`` byte-identical to
serial generation extends unchanged to perturbed generation.

The operators model the messiness real published tables exhibit (see
docs/ARCHITECTURE.md "Messy tables & sanitization" for the inventory
and the per-operator determinism argument):

* header damage — abbreviated words, merged adjacent columns;
* cell surface noise — currency symbols, unit suffixes, percent signs,
  footnote markers, dash/word null conventions, locale number formats;
* layout damage — transposed orientation, duplicated columns, shuffled
  column order.

Operators keep the table *valid*: schemas stay uniquely and non-emptily
named, every row keeps the schema width, and ``row_name_column`` is
remapped (or left untouched) so :meth:`Table.row_name` never breaks.
Some corruption is deliberately irrecoverable (cells dashed out to
nulls, abbreviated headers): the sanitizer's graceful-degradation
contract is exercised by data it genuinely cannot restore.
"""

from __future__ import annotations

import random
import re
from typing import Callable, Sequence

from repro.errors import MessyTableError
from repro.rng import rng_from_key
from repro.tables.table import Table

#: registry of all operators, in canonical application order: header
#: damage first, then cell noise, then layout damage — so layout
#: operators act on already-noised cells and cell operators see the
#: original (typed) column layout.
OPERATORS: dict[str, Callable[[Table, str], Table]] = {}

_CURRENCY_SYMBOLS = ("$", "€", "£")
_UNIT_WORDS = ("units", "pts", "kg", "km", "people", "million")
_FOOTNOTE_MARKERS = ("*", "**", " *", " [1]", " [a]", " (est.)", " †")
_DASH_NULLS = ("—", "–", "n.a.", "N.A.", "(n/a)")

_PLAIN_NUMBER_RE = re.compile(
    r"^(?P<sign>[-+]?)(?P<int>\d+)(?:\.(?P<frac>\d+))?$"
)


def operator(name: str):
    """Register a corruption operator under ``name``."""

    def register(fn: Callable[[Table, str], Table]):
        OPERATORS[name] = fn
        fn.op_name = name
        return fn

    return register


def _op_rng(rng_key: str, name: str) -> random.Random:
    """The operator's private stream: keyed by ``rng_key`` *and* name.

    Two operators applied with the same key draw from different
    streams, so enabling or reordering one never changes what another
    does — the property that makes profiles composable.
    """
    return rng_from_key(rng_key, "messy", name)


def _raw_rows(table: Table) -> list[list[str]]:
    return [[cell.raw for cell in row] for row in table.rows]


def _rebuild(
    table: Table,
    header: Sequence[str],
    rows: Sequence[Sequence[str]],
    row_name_column: str | None,
) -> Table:
    """A fresh table with re-inferred column types."""
    return Table.from_rows(
        header,
        rows,
        title=table.title,
        caption=table.caption,
        row_name_column=row_name_column,
    )


def _numeric_column_indices(table: Table) -> list[int]:
    """Indices of numeric columns, excluding the row-name column."""
    out = []
    for index, column in enumerate(table.schema.columns):
        if not column.is_numeric:
            continue
        if (
            table.row_name_column is not None
            and column.name.strip().lower()
            == table.row_name_column.strip().lower()
        ):
            continue
        out.append(index)
    return out


# -- header damage ------------------------------------------------------------


def _abbreviate_word(word: str, rng: random.Random) -> str:
    if len(word) < 5 or not word.isalpha():
        return word
    cut = 3 if rng.random() < 0.5 else 4
    return word[:cut] + "."


@operator("abbrev_headers")
def abbrev_headers(table: Table, rng_key: str) -> Table:
    """Truncate long header words to abbreviations ("revenue" → "rev.").

    Digit-only words (year columns like "2019") are never touched, and
    a candidate that would collide case-insensitively with another
    header falls back to the original name — schemas stay valid.
    """
    rng = _op_rng(rng_key, "abbrev_headers")
    names = table.column_names
    candidates = []
    for name in names:
        if rng.random() < 0.7:
            words = [_abbreviate_word(word, rng) for word in name.split()]
            candidates.append(" ".join(words))
        else:
            candidates.append(name)
    final: list[str] = []
    used: set[str] = set()
    for original, candidate in zip(names, candidates):
        for choice in (candidate, original, f"{original} (col)"):
            key = choice.strip().lower()
            if choice.strip() and key not in used:
                final.append(choice)
                used.add(key)
                break
    if final == names:
        return table
    mapping = dict(zip(names, final))
    row_name = (
        mapping.get(table.row_name_column)
        if table.row_name_column is not None
        else None
    )
    return _rebuild(table, final, _raw_rows(table), row_name)


@operator("merge_columns")
def merge_columns(table: Table, rng_key: str) -> Table:
    """Collapse one adjacent column pair into "a / b" with "x | y" cells.

    The row-name column is never merged (``Table.row_name`` must keep
    working), and the merge is skipped when the combined header would
    collide with an existing one.
    """
    rng = _op_rng(rng_key, "merge_columns")
    if table.n_columns < 3:
        return table
    names = table.column_names
    row_name_index = (
        table.schema.try_index(table.row_name_column)
        if table.row_name_column is not None
        else None
    )
    pairs = [
        j
        for j in range(table.n_columns - 1)
        if j != row_name_index and j + 1 != row_name_index
    ]
    if not pairs:
        return table
    j = pairs[rng.randrange(len(pairs))]
    merged_name = f"{names[j]} / {names[j + 1]}"
    survivors = {
        name.strip().lower() for k, name in enumerate(names) if k not in (j, j + 1)
    }
    if merged_name.strip().lower() in survivors:
        return table
    header = names[:j] + [merged_name] + names[j + 2 :]
    rows = []
    for raw_row in _raw_rows(table):
        merged_cell = f"{raw_row[j]} | {raw_row[j + 1]}"
        rows.append(raw_row[:j] + [merged_cell] + raw_row[j + 2 :])
    return _rebuild(table, header, rows, table.row_name_column)


# -- cell surface noise -------------------------------------------------------


@operator("currency_cells")
def currency_cells(table: Table, rng_key: str) -> Table:
    """Prefix a currency symbol to numeric cells ("1200" → "$1200").

    Accounting placement keeps the sign parseable ("-42" → "-$42"), so
    this is *benign* surface noise: the cells still parse as NUMBER —
    the messy-tables track includes noise the value parser absorbs on
    its own as well as noise it cannot.
    """
    rng = _op_rng(rng_key, "currency_cells")
    targets = [j for j in _numeric_column_indices(table) if rng.random() < 0.5]
    if not targets:
        return table
    rows = _raw_rows(table)
    for j in targets:
        symbol = _CURRENCY_SYMBOLS[rng.randrange(len(_CURRENCY_SYMBOLS))]
        for raw_row in rows:
            raw = raw_row[j].strip()
            if not raw or raw[0] in "$€£¥":
                continue
            if raw.startswith(("-", "+")):
                raw_row[j] = f"{raw[0]}{symbol}{raw[1:]}"
            else:
                raw_row[j] = f"{symbol}{raw}"
    return _rebuild(table, table.column_names, rows, table.row_name_column)


@operator("unit_suffix_cells")
def unit_suffix_cells(table: Table, rng_key: str) -> Table:
    """Append a per-column unit word ("12" → "12 kg"); degrades to TEXT."""
    rng = _op_rng(rng_key, "unit_suffix_cells")
    targets = [j for j in _numeric_column_indices(table) if rng.random() < 0.4]
    if not targets:
        return table
    rows = _raw_rows(table)
    for j in targets:
        unit = _UNIT_WORDS[rng.randrange(len(_UNIT_WORDS))]
        for raw_row in rows:
            raw = raw_row[j].strip()
            if raw:
                raw_row[j] = f"{raw} {unit}"
    return _rebuild(table, table.column_names, rows, table.row_name_column)


@operator("percent_cells")
def percent_cells(table: Table, rng_key: str) -> Table:
    """Append "%" to numeric cells — parseable noise (still NUMBER)."""
    rng = _op_rng(rng_key, "percent_cells")
    targets = [j for j in _numeric_column_indices(table) if rng.random() < 0.3]
    if not targets:
        return table
    rows = _raw_rows(table)
    for j in targets:
        for raw_row in rows:
            raw = raw_row[j].strip()
            if raw and not raw.endswith("%"):
                raw_row[j] = f"{raw}%"
    return _rebuild(table, table.column_names, rows, table.row_name_column)


@operator("locale_numbers")
def locale_numbers(table: Table, rng_key: str) -> Table:
    """Reformat numeric columns in a non-US locale.

    Either space thousands-grouping ("1200" → "1 200") or the European
    convention ("1200.5" → "1.200,5") — both per whole column, the way
    a real exported spreadsheet is uniformly mis-localized.
    """
    rng = _op_rng(rng_key, "locale_numbers")
    targets = [j for j in _numeric_column_indices(table) if rng.random() < 0.45]
    if not targets:
        return table
    rows = _raw_rows(table)
    for j in targets:
        euro = rng.random() < 0.5
        for raw_row in rows:
            raw_row[j] = _localize(raw_row[j], euro=euro)
    return _rebuild(table, table.column_names, rows, table.row_name_column)


def _localize(raw: str, euro: bool) -> str:
    match = _PLAIN_NUMBER_RE.match(raw.strip())
    if not match:
        return raw
    sign, int_part, frac = match.group("sign"), match.group("int"), match.group("frac")
    if len(int_part) <= 3 and not (euro and frac):
        return raw
    group_sep = "." if euro else " "
    decimal_sep = "," if euro else "."
    grouped = int_part
    if len(int_part) > 3:
        pieces = []
        while int_part:
            pieces.append(int_part[-3:])
            int_part = int_part[:-3]
        grouped = group_sep.join(reversed(pieces))
    out = sign + grouped
    if frac:
        out += decimal_sep + frac
    return out


@operator("footnote_markers")
def footnote_markers(table: Table, rng_key: str) -> Table:
    """Append footnote markers ("*", "[1]", "(est.)") to scattered cells."""
    rng = _op_rng(rng_key, "footnote_markers")
    rows = _raw_rows(table)
    changed = False
    for raw_row in rows:
        for j, raw in enumerate(raw_row):
            if raw.strip() and rng.random() < 0.22:
                marker = _FOOTNOTE_MARKERS[rng.randrange(len(_FOOTNOTE_MARKERS))]
                raw_row[j] = f"{raw}{marker}"
                changed = True
    if not changed:
        return table
    return _rebuild(table, table.column_names, rows, table.row_name_column)


@operator("dash_nulls")
def dash_nulls(table: Table, rng_key: str) -> Table:
    """Re-spell nulls as dash/word conventions and dash out a few cells.

    Existing nulls become "—" / "n.a." variants the default parser does
    *not* recognize; additionally ~5% of non-row-name cells are dashed
    out entirely — information loss no sanitizer can undo, which is
    what keeps perturbed+sanitized accuracy below clean accuracy.
    """
    rng = _op_rng(rng_key, "dash_nulls")
    row_name_index = (
        table.schema.try_index(table.row_name_column)
        if table.row_name_column is not None
        else None
    )
    rows = _raw_rows(table)
    changed = False
    for i, row in enumerate(table.rows):
        for j, cell in enumerate(row):
            if cell.is_null:
                rows[i][j] = _DASH_NULLS[rng.randrange(len(_DASH_NULLS))]
                changed = True
            elif j != row_name_index and rng.random() < 0.05:
                rows[i][j] = _DASH_NULLS[rng.randrange(len(_DASH_NULLS))]
                changed = True
    if not changed:
        return table
    return _rebuild(table, table.column_names, rows, table.row_name_column)


# -- layout damage ------------------------------------------------------------


@operator("duplicate_column")
def duplicate_column(table: Table, rng_key: str) -> Table:
    """Insert a duplicate of one column, renamed "name (2)"."""
    rng = _op_rng(rng_key, "duplicate_column")
    if table.n_columns == 0 or rng.random() >= 0.5:
        return table
    names = table.column_names
    j = rng.randrange(table.n_columns)
    copy_name = f"{names[j]} (2)"
    if copy_name.strip().lower() in {name.strip().lower() for name in names}:
        return table
    header = names[: j + 1] + [copy_name] + names[j + 1 :]
    rows = [
        raw_row[: j + 1] + [raw_row[j]] + raw_row[j + 1 :]
        for raw_row in _raw_rows(table)
    ]
    return _rebuild(table, header, rows, table.row_name_column)


@operator("shuffle_columns")
def shuffle_columns(table: Table, rng_key: str) -> Table:
    """Permute column order (cells follow their headers; lookups by
    name are unaffected, but positional assumptions break)."""
    rng = _op_rng(rng_key, "shuffle_columns")
    if table.n_columns < 2 or rng.random() >= 0.6:
        return table
    order = list(range(table.n_columns))
    rng.shuffle(order)
    if order == sorted(order):
        return table
    names = table.column_names
    header = [names[j] for j in order]
    rows = [[raw_row[j] for j in order] for raw_row in _raw_rows(table)]
    return _rebuild(table, header, rows, table.row_name_column)


@operator("transpose")
def transpose(table: Table, rng_key: str) -> Table:
    """Flip the table so former rows become columns.

    Only applied when the result is a valid table: a bounded number of
    rows (they become headers), unique non-empty first-column cells,
    and no header collisions.  The first column's values become the new
    header; the old header names become the new first column.
    """
    rng = _op_rng(rng_key, "transpose")
    if rng.random() >= 0.35:
        return table
    if not (2 <= table.n_rows <= 8) or table.n_columns < 2:
        return table
    names = table.column_names
    first_column = [row[0].raw.strip() for row in table.rows]
    new_header = [names[0]] + first_column
    lowered = [name.strip().lower() for name in new_header]
    if any(not name for name in lowered) or len(set(lowered)) != len(lowered):
        return table
    raw_rows = _raw_rows(table)
    new_rows = [
        [names[j]] + [raw_rows[i][j] for i in range(table.n_rows)]
        for j in range(1, table.n_columns)
    ]
    return _rebuild(table, new_header, new_rows, names[0])


def get_operator(name: str) -> Callable[[Table, str], Table]:
    """Look up one registered operator by name."""
    try:
        return OPERATORS[name]
    except KeyError:
        raise MessyTableError(
            f"unknown corruption operator {name!r} "
            f"(registered: {', '.join(sorted(OPERATORS))})"
        ) from None
