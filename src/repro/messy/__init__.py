"""Messy-table corruption: deterministic, composable table noise.

Real published tables are not clean: headers get abbreviated or merged,
cells carry currency symbols, units, footnote markers and locale-specific
number formats, nulls are spelled a dozen ways, and whole tables arrive
transposed.  This package synthesizes that messiness *deterministically*
— every operator is a pure function of ``(Table, rng_key)`` — so
perturbed corpora are as reproducible as clean ones, and serial and
parallel generation stay byte-identical.

The best-effort inverse lives in :mod:`repro.sanitize`.

Entry points:

* :data:`OPERATORS` / :func:`get_operator` — the operator registry.
* :data:`PROFILES` / :func:`profile_operators` — named bundles
  ("light", "headers", "cells", "layout", "heavy").
* :func:`perturb_table` / :func:`perturb_context` /
  :func:`perturb_samples` — apply a profile to a table, a context, or
  an evaluation set.  ``UCTR.generate(perturb="heavy")`` and the CLI's
  ``generate --perturb heavy`` route through :func:`perturb_context`.
"""

from repro.messy.operators import OPERATORS, get_operator
from repro.messy.profiles import (
    PROFILES,
    perturb_context,
    perturb_samples,
    perturb_table,
    profile_operators,
)

__all__ = [
    "OPERATORS",
    "PROFILES",
    "get_operator",
    "perturb_context",
    "perturb_samples",
    "perturb_table",
    "profile_operators",
]
