"""NL-Generator: programs → natural-language questions and claims.

The paper fine-tunes BART/GPT-2 on program↔NL parallel corpora (SQUALL,
Logic2Text, FinQA) and applies the model to new programs (Section IV-D,
Eq. 8).  Offline we substitute a trainable *skeleton-induction* model:

* :mod:`repro.nlgen.grammar` — a compositional realization grammar that
  plays the role of the human annotators: it produces fluent NL for a
  program, with several phrasings per template.
* :mod:`repro.nlgen.corpus` — builds the parallel corpora the model is
  trained on (our stand-ins for SQUALL / Logic2Text / FinQA).
* :mod:`repro.nlgen.model` — the learned generator: it induces NL
  skeletons per program signature from the aligned pairs and realizes
  new programs by skeleton lookup + slot filling, with a noise channel
  reproducing the paper's observed generation errors (Table IX).
"""

from repro.nlgen.grammar import RealizationGrammar, realize
from repro.nlgen.corpus import AlignedPair, build_parallel_corpus
from repro.nlgen.model import NLGenerator, NLGeneratorConfig, train_nl_generator

__all__ = [
    "RealizationGrammar",
    "realize",
    "AlignedPair",
    "build_parallel_corpus",
    "NLGenerator",
    "NLGeneratorConfig",
    "train_nl_generator",
]
