"""Compositional realization grammar: program → fluent NL.

Each built-in template pattern maps to several NL skeletons whose slots
are the template's placeholder names; programs abstracted from unseen
templates fall back to a compositional realizer that verbalizes the AST
operator by operator.  The grammar stands in for the human side of the
SQUALL/Logic2Text/FinQA parallel corpora.
"""

from __future__ import annotations

import random

from repro.errors import GenerationError
from repro.programs.base import ProgramKind
from repro.rng import choice
from repro.sampling.sampler import SampledProgram

#: NL skeletons per built-in template pattern.  Slots use {name} syntax.
SKELETONS: dict[str, list[str]] = {
    # ------------------------------------------------------------- SQL
    "select c1 from w where c2 = val1": [
        "what is the {c1} when the {c2} is {val1} ?",
        "which {c1} has a {c2} of {val1} ?",
        "what was the {c1} for {val1} ?",
        "name the {c1} with {c2} of {val1}",
    ],
    "select c1 , c2 from w where c3 = val1": [
        "what are the {c1} and the {c2} when the {c3} is {val1} ?",
        "give the {c1} and {c2} for {val1}",
    ],
    "select c1 from w order by c2 desc limit 1": [
        "which {c1} has the highest {c2} ?",
        "what is the {c1} with the most {c2} ?",
        "which {c1} has the greatest {c2} ?",
    ],
    "select c1 from w order by c2 asc limit 1": [
        "which {c1} has the lowest {c2} ?",
        "what is the {c1} with the least {c2} ?",
        "which {c1} has the smallest {c2} ?",
    ],
    "select c1 from w where c2 = val1 order by c3 desc limit 1": [
        "among rows where the {c2} is {val1} , which {c1} has the highest {c3} ?",
        "which {c1} with {c2} {val1} has the most {c3} ?",
    ],
    "select c1 from w order by c2 desc limit n1": [
        "what are the top {n1} {c1} by {c2} ?",
        "list the {n1} {c1} with the highest {c2}",
    ],
    "select c1 from w where c2 > val1": [
        "which {c1} have a {c2} greater than {val1} ?",
        "what {c1} have more than {val1} {c2} ?",
    ],
    "select c1 from w where c2 < val1": [
        "which {c1} have a {c2} less than {val1} ?",
        "what {c1} have fewer than {val1} {c2} ?",
    ],
    "select count ( * ) from w where c1 = val1": [
        "how many rows have a {c1} of {val1} ?",
        "how many times does {val1} appear as the {c1} ?",
        "how many entries have {c1} {val1} ?",
    ],
    "select count ( * ) from w where c1 > val1": [
        "how many rows have a {c1} above {val1} ?",
        "how many entries have more than {val1} {c1} ?",
    ],
    "select count ( * ) from w where c1 < val1": [
        "how many rows have a {c1} below {val1} ?",
        "how many entries have less than {val1} {c1} ?",
    ],
    "select count ( distinct c1 ) from w": [
        "how many different {c1} are there ?",
        "how many unique {c1} are listed ?",
    ],
    "select count ( * ) from w where c1 = val1 and c2 = val2": [
        "how many rows have a {c1} of {val1} and a {c2} of {val2} ?",
        "how many entries have {c1} {val1} with {c2} {val2} ?",
    ],
    "select sum ( c1 ) from w": [
        "what is the total {c1} ?",
        "what is the sum of all {c1} ?",
    ],
    "select sum ( c1 ) from w where c2 = val1": [
        "what is the total {c1} when the {c2} is {val1} ?",
        "what is the combined {c1} for {val1} ?",
    ],
    "select avg ( c1 ) from w": [
        "what is the average {c1} ?",
        "what is the mean {c1} across all rows ?",
    ],
    "select avg ( c1 ) from w where c2 = val1": [
        "what is the average {c1} when the {c2} is {val1} ?",
        "what is the mean {c1} for {val1} ?",
    ],
    "select max ( c1 ) from w": [
        "what is the highest {c1} ?",
        "what is the maximum {c1} ?",
    ],
    "select min ( c1 ) from w": [
        "what is the lowest {c1} ?",
        "what is the minimum {c1} ?",
    ],
    "select max ( c1 ) from w where c2 = val1": [
        "what is the highest {c1} when the {c2} is {val1} ?",
        "what is the best {c1} recorded for {val1} ?",
    ],
    "select max ( c1 ) - min ( c1 ) from w": [
        "what is the difference between the highest and the lowest {c1} ?",
        "by how much does the largest {c1} exceed the smallest ?",
    ],
    "select c1 from w where c2 = val1 and c3 = val2": [
        "what is the {c1} when the {c2} is {val1} and the {c3} is {val2} ?",
        "which {c1} has {c2} {val1} and {c3} {val2} ?",
    ],
    "select c1 from w where c2 = val1 and c3 > val2": [
        "which {c1} has a {c2} of {val1} and a {c3} above {val2} ?",
        "what {c1} with {c2} {val1} has more than {val2} {c3} ?",
    ],
    # ---------------------------------------------------- logical forms
    "eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; val2 }": [
        "the {c2} of the row whose {c1} is {val1} is {val2}",
        "{val1} has a {c2} of {val2}",
        "for {val1} , the {c2} is {val2}",
    ],
    "eq { count { filter_eq { all_rows ; c1 ; val1 } } ; n1 }": [
        "there are {n1} rows with a {c1} of {val1}",
        "{val1} appears {n1} times in the {c1} column",
        "a total of {n1} entries have {c1} {val1}",
    ],
    "eq { count { filter_greater { all_rows ; c1 ; val1 } } ; n1 }": [
        "there are {n1} rows with a {c1} above {val1}",
        "{n1} entries have more than {val1} {c1}",
    ],
    "eq { count { filter_less { all_rows ; c1 ; val1 } } ; n1 }": [
        "there are {n1} rows with a {c1} below {val1}",
        "{n1} entries have less than {val1} {c1}",
    ],
    "eq { hop { argmax { all_rows ; c1 } ; c2 } ; val1 }": [
        "the row with the highest {c1} has a {c2} of {val1}",
        "{val1} has the highest {c1}",
        "{val1} records the greatest {c1}",
    ],
    "eq { hop { argmin { all_rows ; c1 } ; c2 } ; val1 }": [
        "the row with the lowest {c1} has a {c2} of {val1}",
        "{val1} has the lowest {c1}",
        "{val1} records the smallest {c1}",
    ],
    "eq { max { all_rows ; c1 } ; val1 }": [
        "the highest {c1} is {val1}",
        "the maximum {c1} recorded is {val1}",
    ],
    "eq { min { all_rows ; c1 } ; val1 }": [
        "the lowest {c1} is {val1}",
        "the minimum {c1} recorded is {val1}",
    ],
    "greater { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; "
    "hop { filter_eq { all_rows ; c1 ; val2 } ; c2 } }": [
        "{val1} has a higher {c2} than {val2}",
        "the {c2} of {val1} is greater than that of {val2}",
    ],
    "less { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; "
    "hop { filter_eq { all_rows ; c1 ; val2 } ; c2 } }": [
        "{val1} has a lower {c2} than {val2}",
        "the {c2} of {val1} is smaller than that of {val2}",
    ],
    "round_eq { sum { all_rows ; c1 } ; val1 }": [
        "the total {c1} is about {val1}",
        "all rows together have a combined {c1} of roughly {val1}",
    ],
    "round_eq { avg { all_rows ; c1 } ; val1 }": [
        "the average {c1} is about {val1}",
        "on average the {c1} is roughly {val1}",
    ],
    "most_eq { all_rows ; c1 ; val1 }": [
        "most rows have a {c1} of {val1}",
        "the majority of entries have {c1} {val1}",
    ],
    "all_eq { all_rows ; c1 ; val1 }": [
        "all rows have a {c1} of {val1}",
        "every entry has {c1} {val1}",
    ],
    "most_greater { all_rows ; c1 ; val1 }": [
        "most rows have a {c1} above {val1}",
        "the majority of entries have more than {val1} {c1}",
    ],
    "most_less { all_rows ; c1 ; val1 }": [
        "most rows have a {c1} below {val1}",
        "the majority of entries have less than {val1} {c1}",
    ],
    "all_greater { all_rows ; c1 ; val1 }": [
        "all rows have a {c1} above {val1}",
        "every entry has more than {val1} {c1}",
    ],
    "only { filter_eq { all_rows ; c1 ; val1 } }": [
        "only one row has a {c1} of {val1}",
        "{val1} appears exactly once in the {c1} column",
    ],
    "eq { nth_max { all_rows ; c1 ; n1 } ; val1 }": [
        "the {n1} highest {c1} is {val1}",
        "ranked by {c1} , position {n1} holds the value {val1}",
    ],
    "eq { hop { nth_argmax { all_rows ; c1 ; n1 } ; c2 } ; val1 }": [
        "the row with the {n1} highest {c1} has a {c2} of {val1}",
        "{val1} ranks number {n1} by {c1}",
    ],
    "eq { hop { nth_argmin { all_rows ; c1 ; n1 } ; c2 } ; val1 }": [
        "the row with the {n1} lowest {c1} has a {c2} of {val1}",
        "{val1} ranks number {n1} from the bottom by {c1}",
    ],
    "and { eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; val2 } ; "
    "eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c3 } ; val3 } }": [
        "{val1} has a {c2} of {val2} and a {c3} of {val3}",
        "for {val1} , the {c2} is {val2} and the {c3} is {val3}",
    ],
    "round_eq { diff { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; "
    "hop { filter_eq { all_rows ; c1 ; val2 } ; c2 } } ; val3 }": [
        "the {c2} of {val1} exceeds that of {val2} by about {val3}",
        "{val1} has roughly {val3} more {c2} than {val2}",
    ],
    # ------------------------------------------------------- arithmetic
    "subtract ( the val1 of c1 , the val2 of c1 )": [
        "what is the difference in {c1} between {val1} and {val2} ?",
        "by how much does the {c1} of {val1} exceed that of {val2} ?",
    ],
    "subtract ( the val1 of c1 , the val1 of c2 )": [
        "what was the change in {val1} from {c2} to {c1} ?",
        "how much did {val1} change between {c2} and {c1} ?",
    ],
    "subtract ( the val1 of c1 , the val2 of c1 ) , "
    "divide ( #0 , the val2 of c1 )": [
        "what is the percentage difference in {c1} between {val1} and {val2} ?",
        "by what percentage does the {c1} of {val1} differ from {val2} ?",
    ],
    "subtract ( the val1 of c1 , the val1 of c2 ) , "
    "divide ( #0 , the val1 of c2 )": [
        "what was the percentage change in {val1} from {c2} to {c1} ?",
        "by what percentage did {val1} change between {c2} and {c1} ?",
    ],
    "divide ( the val1 of c1 , the val2 of c1 )": [
        "what is the ratio of the {c1} of {val1} to that of {val2} ?",
        "how many times larger is the {c1} of {val1} than that of {val2} ?",
    ],
    "divide ( the val1 of c1 , table_sum ( c1 ) )": [
        "what proportion of the total {c1} does {val1} account for ?",
        "what share of the overall {c1} comes from {val1} ?",
    ],
    "add ( the val1 of c1 , the val2 of c1 )": [
        "what is the combined {c1} of {val1} and {val2} ?",
        "what is the sum of the {c1} for {val1} and {val2} ?",
    ],
    "add ( the val1 of c1 , the val2 of c1 ) , divide ( #0 , const_2 )": [
        "what is the average {c1} of {val1} and {val2} ?",
        "what is the mean {c1} across {val1} and {val2} ?",
    ],
    "add ( the val1 of c1 , the val1 of c2 )": [
        "what is the total {val1} across {c1} and {c2} ?",
        "what is the combined {val1} for {c1} and {c2} ?",
    ],
    "table_sum ( c1 )": [
        "what is the total {c1} ?",
        "what is the sum of the {c1} column ?",
    ],
    "table_average ( c1 )": [
        "what is the average {c1} ?",
        "what is the mean value of the {c1} column ?",
    ],
    "table_max ( c1 )": [
        "what is the highest {c1} ?",
        "what is the largest value in the {c1} column ?",
    ],
    "table_min ( c1 )": [
        "what is the lowest {c1} ?",
        "what is the smallest value in the {c1} column ?",
    ],
    "subtract ( table_max ( c1 ) , table_min ( c1 ) )": [
        "what is the range of the {c1} column ?",
        "what is the gap between the highest and lowest {c1} ?",
    ],
    "greater ( the val1 of c1 , the val2 of c1 )": [
        "is the {c1} of {val1} greater than that of {val2} ?",
        "does {val1} have a higher {c1} than {val2} ?",
    ],
    "greater ( the val1 of c1 , the val1 of c2 )": [
        "was {val1} higher in {c1} than in {c2} ?",
        "did {val1} increase from {c2} to {c1} ?",
    ],
    "divide ( the val1 of c1 , the val1 of c2 ) , "
    "subtract ( #0 , const_1 )": [
        "what was the growth rate of {val1} from {c2} to {c1} ?",
        "by what rate did {val1} grow between {c2} and {c1} ?",
    ],
    "divide ( the val1 of c1 , the val2 of c1 ) , "
    "multiply ( #0 , const_100 )": [
        "what percentage is the {c1} of {val1} relative to {val2} ?",
        "expressed in percent , what is the {c1} of {val1} over {val2} ?",
    ],
    "divide ( the val1 of c1 , the val1 of c2 ) , "
    "exp ( #0 , const_0_5 ) , subtract ( #1 , const_1 )": [
        "what was the compound growth rate of {val1} from {c2} to {c1} ?",
        "what annualized growth did {val1} achieve between {c2} and {c1} ?",
    ],
}


class RealizationGrammar:
    """Realizes sampled programs as NL using skeletons + fallbacks."""

    def __init__(self, skeletons: dict[str, list[str]] | None = None):
        self._skeletons = dict(SKELETONS if skeletons is None else skeletons)

    def skeletons_for(self, pattern: str) -> list[str]:
        return list(self._skeletons.get(pattern, []))

    def realize(
        self, sample: SampledProgram, rng: random.Random
    ) -> str:
        """One NL rendering of ``sample`` (random phrasing)."""
        options = self._skeletons.get(sample.template.pattern)
        if options:
            skeleton = choice(rng, options)
            return fill_skeleton(skeleton, sample.bindings)
        return self.fallback(sample)

    def fallback(self, sample: SampledProgram) -> str:
        """Compositional realization for unknown templates."""
        if sample.kind is ProgramKind.SQL:
            return _fallback_sql(sample)
        if sample.kind is ProgramKind.LOGIC:
            return _fallback_logic(sample)
        return _fallback_arith(sample)


def fill_skeleton(skeleton: str, bindings: dict[str, str]) -> str:
    """Substitute {slot} markers; raises on unbound slots."""
    out = skeleton
    for name, value in bindings.items():
        out = out.replace("{" + name + "}", value)
    if "{" in out and "}" in out:
        raise GenerationError(f"unfilled slot in skeleton {skeleton!r}")
    return _tidy(out)


def realize(sample: SampledProgram, rng: random.Random) -> str:
    """Module-level convenience wrapper around the default grammar."""
    return RealizationGrammar().realize(sample, rng)


def _tidy(text: str) -> str:
    text = " ".join(text.split())
    text = text.replace(" ?", "?").replace(" ,", ",")
    return text


# -- compositional fallbacks --------------------------------------------------

def _fallback_sql(sample: SampledProgram) -> str:
    from repro.programs.sql.ast import ArithmeticItem, ColumnItem

    query = sample.program.query  # type: ignore[attr-defined]
    head_parts: list[str] = []
    for item in query.items:
        if isinstance(item, ArithmeticItem):
            op_word = "plus" if item.op == "+" else "minus"
            head_parts.append(
                f"the {_item_phrase(item.left)} {op_word} the "
                f"{_item_phrase(item.right)}"
            )
        else:
            head_parts.append(f"the {_item_phrase(item)}")
    question = "what is " + " and ".join(head_parts)
    clauses = [
        f"the {condition.column} is "
        f"{'' if condition.op.value == '=' else condition.op.value + ' '}"
        f"{condition.literal.raw}"
        for condition in query.conditions
    ]
    if clauses:
        question += " when " + " and ".join(clauses)
    if query.order is not None:
        direction = "highest" if query.order.descending else "lowest"
        question += f" ordered by the {direction} {query.order.column}"
    return _tidy(question + " ?")


def _item_phrase(item) -> str:
    words = {
        "count": "number of",
        "sum": "total",
        "avg": "average",
        "min": "lowest",
        "max": "highest",
    }
    if item.aggregate is None:
        return item.column
    noun = "rows" if item.column == "*" else item.column
    return f"{words[item.aggregate.value]} {noun}"


def _fallback_logic(sample: SampledProgram) -> str:
    from repro.programs.logic.parser import LogicNode

    def verbalize(node) -> str:
        if not isinstance(node, LogicNode):
            return str(node)
        op = node.op
        args = [verbalize(arg) for arg in node.args]
        phrasing = {
            "filter_eq": "the rows whose {0} is {1}",
            "filter_not_eq": "the rows whose {0} is not {1}",
            "filter_greater": "the rows whose {0} is above {1}",
            "filter_less": "the rows whose {0} is below {1}",
            "filter_greater_eq": "the rows whose {0} is at least {1}",
            "filter_less_eq": "the rows whose {0} is at most {1}",
            "filter_all": "the rows with a {0}",
            "count": "the number of {0}",
            "only": "there is exactly one of {0}",
            "hop": "the {1} of {0}",
            "max": "the highest {1} among {0}",
            "min": "the lowest {1} among {0}",
            "sum": "the total {1} among {0}",
            "avg": "the average {1} among {0}",
            "argmax": "the row of {0} with the highest {1}",
            "argmin": "the row of {0} with the lowest {1}",
            "nth_max": "the {2} highest {1} among {0}",
            "nth_min": "the {2} lowest {1} among {0}",
            "nth_argmax": "the row of {0} with the {2} highest {1}",
            "nth_argmin": "the row of {0} with the {2} lowest {1}",
            "eq": "{0} is {1}",
            "not_eq": "{0} is not {1}",
            "round_eq": "{0} is about {1}",
            "greater": "{0} is greater than {1}",
            "less": "{0} is less than {1}",
            "diff": "the difference between {0} and {1}",
            "add": "the sum of {0} and {1}",
            "and": "{0} and {1}",
            "or": "{0} or {1}",
            "not": "it is not the case that {0}",
            "all_eq": "all of {0} have a {1} of {2}",
            "all_not_eq": "none of {0} have a {1} of {2}",
            "all_greater": "all of {0} have a {1} above {2}",
            "all_less": "all of {0} have a {1} below {2}",
            "most_eq": "most of {0} have a {1} of {2}",
            "most_not_eq": "most of {0} do not have a {1} of {2}",
            "most_greater": "most of {0} have a {1} above {2}",
            "most_less": "most of {0} have a {1} below {2}",
        }
        template = phrasing.get(op)
        if template is None:
            return f"{op} of " + " and ".join(args)
        args = ["all rows" if a == "all_rows" else a for a in args]
        return template.format(*args)

    return _tidy(verbalize(sample.program.root))  # type: ignore[attr-defined]


def _fallback_arith(sample: SampledProgram) -> str:
    words = {
        "add": "the sum of {0} and {1}",
        "subtract": "the difference between {0} and {1}",
        "multiply": "the product of {0} and {1}",
        "divide": "the ratio of {0} to {1}",
        "greater": "whether {0} is greater than {1}",
        "exp": "{0} raised to the power of {1}",
        "table_max": "the highest value of {0}",
        "table_min": "the lowest value of {0}",
        "table_sum": "the total of {0}",
        "table_average": "the average of {0}",
    }
    steps = sample.program.steps  # type: ignore[attr-defined]
    described: list[str] = []
    for step in steps:
        args = []
        for arg in step.args:
            text = arg.text()
            if text.startswith("#"):
                args.append(described[int(text[1:])])
            else:
                args.append(text)
        described.append(words[step.op].format(*args))
    return _tidy(f"what is {described[-1]} ?")
