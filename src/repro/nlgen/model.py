"""The trainable NL-Generator (BART stand-in).

The model learns, from aligned pairs, a distribution over NL *skeletons*
per program pattern: each training sentence is abstracted by replacing
the aligned binding surfaces with slot tokens, and the resulting
skeletons are counted.  Generation samples a learned skeleton for the
program's pattern and fills the slots with the program's own bindings.

Two deliberate imperfections mirror fine-tuned-seq2seq behaviour the
paper documents (Table IX shows both faithful and partially mismatched
generations):

* skeletons whose training sentence failed to align every slot are kept
  (information loss), and
* a configurable noise channel occasionally swaps a slot's surface for
  a same-column distractor (information mismatch).

Patterns never seen in training back off to the nearest trained pattern
by token overlap, and finally to the compositional grammar.
"""

from __future__ import annotations

import random
import re
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.errors import GenerationError
from repro.nlgen.corpus import AlignedPair
from repro.nlgen.grammar import RealizationGrammar, fill_skeleton
from repro.programs.base import ProgramKind
from repro.rng import weighted_choice
from repro.sampling.sampler import SampledProgram


@dataclass(frozen=True)
class NLGeneratorConfig:
    """Hyper-parameters of the skeleton-induction generator."""

    #: probability of corrupting one slot at generation time.
    noise_rate: float = 0.0
    #: drop learned skeletons seen fewer than this many times.
    min_count: int = 1
    #: cap on stored skeletons per pattern (most frequent kept).
    max_skeletons_per_pattern: int = 12


@dataclass
class _PatternModel:
    skeletons: Counter = field(default_factory=Counter)


class NLGenerator:
    """Learned program→NL generator with back-off."""

    def __init__(self, config: NLGeneratorConfig | None = None):
        self.config = config or NLGeneratorConfig()
        self._patterns: dict[str, _PatternModel] = defaultdict(_PatternModel)
        self._grammar = RealizationGrammar()
        self._trained = False

    # -- training -------------------------------------------------------
    def train(self, pairs: list[AlignedPair]) -> "NLGenerator":
        """Induce skeletons from aligned pairs (the fine-tuning step)."""
        for pair in pairs:
            skeleton = _abstract(pair.nl, pair.bindings)
            self._patterns[pair.pattern].skeletons[skeleton] += 1
        for model in self._patterns.values():
            kept = Counter(
                {
                    skeleton: count
                    for skeleton, count in model.skeletons.items()
                    if count >= self.config.min_count
                }
            )
            model.skeletons = Counter(
                dict(kept.most_common(self.config.max_skeletons_per_pattern))
            )
        self._trained = True
        return self

    @property
    def n_patterns(self) -> int:
        return len(self._patterns)

    @property
    def n_skeletons(self) -> int:
        return sum(len(m.skeletons) for m in self._patterns.values())

    # -- generation -------------------------------------------------------
    def generate(self, sample: SampledProgram, rng: random.Random) -> str:
        """Realize ``sample`` as a question or claim."""
        skeleton = self._pick_skeleton(sample.template.pattern, rng)
        if skeleton is None:
            return self._grammar.realize(sample, rng)
        bindings = self._maybe_noise(sample, rng)
        try:
            return fill_skeleton(skeleton, bindings)
        except GenerationError:
            return self._grammar.realize(sample, rng)

    def _pick_skeleton(self, pattern: str, rng: random.Random) -> str | None:
        model = self._patterns.get(pattern)
        if model is None or not model.skeletons:
            nearest = self._nearest_pattern(pattern)
            if nearest is None:
                return None
            model = self._patterns[nearest]
        skeletons = list(model.skeletons.keys())
        weights = [float(model.skeletons[s]) for s in skeletons]
        return weighted_choice(rng, skeletons, weights)

    def _nearest_pattern(self, pattern: str) -> str | None:
        """Back-off: trained pattern with max token overlap, min 60%."""
        target = set(pattern.split())
        best, best_score = None, 0.0
        for candidate in self._patterns:
            tokens = set(candidate.split())
            union = len(target | tokens)
            if union == 0:
                continue
            score = len(target & tokens) / union
            if score > best_score:
                best, best_score = candidate, score
        return best if best_score >= 0.6 else None

    def _maybe_noise(
        self, sample: SampledProgram, rng: random.Random
    ) -> dict[str, str]:
        bindings = dict(sample.bindings)
        if self.config.noise_rate <= 0 or rng.random() >= self.config.noise_rate:
            return bindings
        # Swap one value slot for a same-column distractor.
        table = sample.table
        candidates = [
            placeholder
            for placeholder in sample.template.value_placeholders
            if placeholder.column_ref is not None
        ]
        if not candidates or table is None:
            return bindings
        placeholder = candidates[rng.randrange(len(candidates))]
        column = bindings.get(placeholder.column_ref or "")
        if column is None or column not in table.schema:
            return bindings
        others = [
            value.raw
            for value in table.distinct_values(column)
            if value.raw != bindings[placeholder.name]
        ]
        if others:
            bindings[placeholder.name] = others[rng.randrange(len(others))]
        return bindings


def _abstract(nl: str, bindings: dict[str, str]) -> str:
    """Replace binding surfaces in ``nl`` with {slot} markers.

    Longest surfaces first so overlapping values abstract correctly; a
    surface that does not occur simply stays unabstracted (information
    loss the back-fill cannot recover — intentionally kept).
    """
    skeleton = nl
    ordered = sorted(bindings.items(), key=lambda item: len(item[1]), reverse=True)
    for name, surface in ordered:
        if not surface:
            continue
        pattern = re.compile(re.escape(surface), re.IGNORECASE)
        skeleton, _ = pattern.subn("{" + name + "}", skeleton, count=1)
    return skeleton


def train_nl_generator(
    pairs_by_kind: dict[ProgramKind, list[AlignedPair]],
    config: NLGeneratorConfig | None = None,
) -> dict[ProgramKind, NLGenerator]:
    """Train one generator per program kind (GPT-2 / BART / BART in the
    paper; one skeleton model each here)."""
    out: dict[ProgramKind, NLGenerator] = {}
    for kind, pairs in pairs_by_kind.items():
        out[kind] = NLGenerator(config).train(pairs)
    return out
