"""Parallel program↔NL corpora for training the NL-Generator.

These corpora play the role of SQUALL, Logic2Text, and FinQA: aligned
pairs of a program (with its placeholder bindings — SQUALL's "manual
alignments") and a natural-language rendering produced by the
realization grammar with lexical variation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.nlgen.grammar import RealizationGrammar
from repro.programs.base import ProgramKind
from repro.sampling.sampler import ProgramSampler, SampledProgram, sample_many
from repro.tables.table import Table
from repro.templates.pools import pool_for_kind


@dataclass(frozen=True)
class AlignedPair:
    """One training pair: program text + NL + placeholder alignments."""

    kind: ProgramKind
    program_source: str
    pattern: str
    nl: str
    bindings: dict[str, str] = field(default_factory=dict)


def build_parallel_corpus(
    kind: ProgramKind | str,
    tables: list[Table],
    rng: random.Random,
    pairs_per_table: int = 4,
    grammar: RealizationGrammar | None = None,
) -> list[AlignedPair]:
    """Create an aligned corpus of the given DSL over ``tables``."""
    kind = ProgramKind(kind)
    grammar = grammar or RealizationGrammar()
    pool = pool_for_kind(kind)
    sampler = ProgramSampler(rng)
    pairs: list[AlignedPair] = []
    for table in tables:
        sampled = sample_many(sampler, list(pool), table, pairs_per_table, rng)
        for sample in sampled:
            pairs.append(_to_pair(sample, grammar, rng))
    return pairs


def _to_pair(
    sample: SampledProgram, grammar: RealizationGrammar, rng: random.Random
) -> AlignedPair:
    return AlignedPair(
        kind=sample.kind,
        program_source=sample.program.source,
        pattern=sample.template.pattern,
        nl=grammar.realize(sample, rng),
        bindings=dict(sample.bindings),
    )
