"""Command-line interface: ``python -m repro.cli <command>`` (or the
``repro`` console script).

Commands:

* ``make-dataset`` — synthesize one of the four benchmarks and write its
  contexts and gold samples to a directory.
* ``generate`` — run the UCTR pipeline over a JSONL file of contexts and
  write the synthetic samples; ``--workers N`` fans contexts out to
  worker processes, ``--report r.json`` writes the telemetry run-report,
  ``--checkpoint-dir d/ [--resume]`` makes the run crash-safe and
  resumable, ``--max-attempts``/``--per-context-timeout`` tune the
  fault-tolerance policy, ``--profile`` prints a hot-path stage-time
  breakdown (and adds it to the report).
* ``stats`` — print Table II-style statistics for a benchmark.
* ``validate`` — audit a persisted samples corpus: verify its integrity
  manifest, load with graceful degradation (``--on-error``), and run the
  semantic re-execution gate; exits 0 only when the corpus is clean.
* ``save-model`` — train a QA model or fact verifier on a samples
  corpus and register the artifact (pickle + integrity manifest) in a
  model registry directory.
* ``models`` — inspect a registry (``repro models list --registry DIR``).
* ``serve`` — serve registered models over HTTP: ``POST /v1/qa``,
  ``POST /v1/verify``, ``GET /healthz``, ``GET /metrics``,
  ``POST /v1/admin/reload``; micro-batched, admission-controlled,
  drains in-flight work on SIGTERM/SIGINT.  ``--replicas N`` scales out
  to N pre-fork replica processes; ``--watch-registry S`` hot-reloads
  (zero downtime) when the registry's default version moves.
* ``experiments`` — alias of :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro import UCTR, UCTRConfig
from repro.datasets import (
    benchmark_statistics,
    make_feverous,
    make_semtabfacts,
    make_tatqa,
    make_wikisql,
)
from repro.io import load_contexts, load_samples, save_contexts, save_samples
from repro.tables.context import TableContext
from repro.telemetry import (
    Telemetry,
    build_report,
    render_summary,
    write_report,
)

_BENCHMARKS = {
    "feverous": make_feverous,
    "tatqa": make_tatqa,
    "wikisql": make_wikisql,
    "semtabfacts": make_semtabfacts,
}

#: program kinds the paper prescribes per benchmark (Section V):
#: logical forms for the fact-verification benchmarks, SQL for WikiSQL,
#: SQL + arithmetic for TAT-QA.
_DEFAULT_KINDS = {
    "feverous": ("logic",),
    "semtabfacts": ("logic",),
    "wikisql": ("sql",),
    "tatqa": ("sql", "arith"),
}

_FALLBACK_KINDS = ("logic",)


def _cmd_make_dataset(args: argparse.Namespace) -> int:
    benchmark = _BENCHMARKS[args.benchmark]()
    out = Path(args.out)
    for split_name, split in benchmark.splits.items():
        # Stamp the benchmark name so `generate` can pick the paper's
        # program kinds for these contexts without being told.
        contexts = [
            replace(ctx, meta={**ctx.meta, "benchmark": args.benchmark})
            for ctx in split.contexts
        ]
        stamp = {"benchmark": args.benchmark, "split": split_name}
        n_ctx = save_contexts(
            out / f"{split_name}.contexts.jsonl", contexts, generator=stamp
        )
        n_gold = save_samples(
            out / f"{split_name}.gold.jsonl", split.gold, generator=stamp
        )
        print(f"{split_name}: {n_ctx} contexts, {n_gold} gold samples")
    return 0


def resolve_kinds(
    kinds_arg: str | None,
    benchmark_arg: str | None,
    contexts: list[TableContext],
) -> tuple[str, ...]:
    """Program kinds for a generate run.

    Explicit ``--kinds`` always wins; then ``--benchmark``; then a
    benchmark name detected from the contexts' ``meta`` (stamped by
    ``make-dataset``); finally the logic-only fallback.
    """
    if kinds_arg:
        return tuple(part.strip() for part in kinds_arg.split(",") if part.strip())
    benchmark = benchmark_arg
    if benchmark is None:
        stamped = {ctx.meta.get("benchmark") for ctx in contexts}
        stamped.discard(None)
        if len(stamped) == 1:
            benchmark = stamped.pop()
    return _DEFAULT_KINDS.get(benchmark, _FALLBACK_KINDS)


def _write_generate_report(
    args: argparse.Namespace,
    framework: UCTR,
    n_contexts: int,
    written: int | None,
    *,
    partial: bool = False,
) -> None:
    if not args.report:
        return
    report = build_report(
        framework.last_telemetry,
        seed=args.seed,
        workers=args.workers,
        contexts=n_contexts,
        samples_written=written,
        extra={"partial": True} if partial else None,
    )
    path = write_report(args.report, report)
    print(f"wrote {'partial ' if partial else ''}run report to {path}")
    print(render_summary(report))


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro import profiling
    from repro.runtime import RetryPolicy

    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.profile:
        # install() also sets REPRO_PROFILE so worker processes inherit
        # the setting; their stage timers come back with the telemetry
        # snapshots and merge additively.
        profiling.install()
    contexts = load_contexts(args.contexts)
    kinds = resolve_kinds(args.kinds, args.benchmark, contexts)
    framework = UCTR(
        UCTRConfig(
            program_kinds=kinds,
            samples_per_context=args.per_context,
            perturb=args.perturb,
            seed=args.seed,
        )
    )
    policy = RetryPolicy(
        max_attempts=args.max_attempts,
        deadline=args.per_context_timeout,
    )
    started = time.perf_counter()
    framework.fit(contexts)
    try:
        samples = framework.generate(
            contexts,
            workers=args.workers,
            retry=policy,
            checkpoint_dir=args.checkpoint_dir,
            resume_from=args.checkpoint_dir if args.resume else None,
            checkpoint_every=args.checkpoint_every,
        )
    except KeyboardInterrupt:
        # UCTR.generate already landed a final partial checkpoint.
        print(
            "\ninterrupted; progress checkpointed"
            + (
                f" in {args.checkpoint_dir} — rerun with --resume "
                "to continue"
                if args.checkpoint_dir
                else " nowhere (no --checkpoint-dir given)"
            )
        )
        _write_generate_report(
            args, framework, len(contexts), None, partial=True
        )
        return 130
    elapsed = time.perf_counter() - started
    written = save_samples(
        args.out,
        samples,
        generator={
            "command": "generate",
            "seed": args.seed,
            "kinds": list(kinds),
            "per_context": args.per_context,
            "perturb": args.perturb,
            "contexts": str(args.contexts),
        },
    )
    rate = written / elapsed if elapsed > 0 else 0.0
    print(
        f"wrote {written} synthetic samples to {args.out} "
        f"(kinds={','.join(kinds)}, workers={args.workers}, "
        f"{rate:.1f} samples/sec)"
    )
    if args.profile:
        # Pick up parent-side stages (e.g. serialization) recorded after
        # the last per-context flush, then print the hot-spot table.
        profiling.flush_into(framework.last_telemetry)
        section = profiling.profile_section(
            framework.last_telemetry.snapshot()["timers"]
        )
        print(profiling.render_profile(section, top=args.profile_top))
    quarantined = framework.last_telemetry.events("quarantine")
    if quarantined:
        print(
            f"quarantined {len(quarantined)} context(s): "
            + ", ".join(
                f"#{entry['index']} ({entry.get('error') or entry['reason']})"
                for entry in quarantined
            )
        )
    _write_generate_report(args, framework, len(contexts), written)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    benchmark = _BENCHMARKS[args.benchmark]()
    stats = benchmark_statistics(benchmark)
    for key, value in stats.as_row().items():
        print(f"{key}: {value}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.errors import FileFormatError, IntegrityError
    from repro.validate import LoadResult, read_manifest, validate_samples

    integrity = "require" if args.require_manifest else "verify"
    try:
        loaded = load_samples(
            args.samples, on_error=args.on_error, integrity=integrity
        )
    except (FileFormatError, IntegrityError) as error:
        print(f"FAIL {args.samples}: {error}", file=sys.stderr)
        return 1
    if isinstance(loaded, LoadResult):
        samples, rejects = loaded.records, loaded.rejects
    else:
        samples, rejects = loaded, []
    integrity_failed = any(r.reason == "integrity" for r in rejects)
    try:
        manifest = read_manifest(args.samples)
    except IntegrityError:
        manifest = None
    if integrity_failed:
        manifest_status = "FAILED"
    elif manifest is None:
        manifest_status = "absent"
    else:
        manifest_status = (
            f"ok (sha256={manifest.data_sha256[:12]}…, "
            f"{manifest.records} records)"
        )
    print(
        f"{args.samples}: {len(samples)} sample(s) loaded, "
        f"{len(rejects)} reject(s), manifest {manifest_status}"
    )
    for reject in rejects:
        print(
            f"  reject {reject.path}:{reject.line_number} "
            f"[{reject.reason}] {reject.detail}"
        )
    telemetry = Telemetry()
    summary = validate_samples(samples, telemetry)
    print(summary.render())
    for verdict in summary.flagged:
        print(
            f"  {verdict.status}: {verdict.uid} "
            f"[{verdict.reason}] {verdict.detail}"
        )
    if args.report:
        report = build_report(
            telemetry,
            extra={
                "validated_path": str(args.samples),
                "samples_loaded": len(samples),
                "rejects": [reject.to_json() for reject in rejects],
            },
        )
        path = write_report(args.report, report)
        print(f"wrote validation report to {path}")
    clean = summary.clean and not rejects
    print("PASS" if clean else "FAIL")
    return 0 if clean else 1


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as experiments_main

    return experiments_main(list(args.rest))


def _cmd_save_model(args: argparse.Namespace) -> int:
    from repro.errors import IntegrityError
    from repro.models.qa import QAConfig
    from repro.models.verifier import VerifierConfig
    from repro.pipelines.samples import TaskType
    from repro.serve import ModelRegistry
    from repro.train.loop import (
        TrainingPlan,
        evaluate_qa,
        evaluate_verifier,
        load_training_samples,
        train_qa,
        train_verifier,
    )
    from repro.validate import read_manifest

    samples, _ = load_training_samples(args.samples, validate=args.validate)
    wanted = (
        TaskType.QUESTION_ANSWERING
        if args.task == "qa"
        else TaskType.FACT_VERIFICATION
    )
    usable = [s for s in samples if s.task is wanted]
    if not usable:
        print(
            f"no {args.task} samples in {args.samples}; nothing to train",
            file=sys.stderr,
        )
        return 1
    plan = TrainingPlan.unsupervised(usable)
    overrides = {"seed": args.seed}
    if args.epochs is not None:
        overrides["epochs"] = args.epochs
    if args.task == "qa":
        model = train_qa(plan, QAConfig(**overrides))
        scores = evaluate_qa(model, usable)
        metrics = {
            "train_em": scores.em,
            "train_f1": scores.f1,
            "train_denotation": scores.denotation,
        }
    else:
        model = train_verifier(plan, VerifierConfig(**overrides))
        scores = evaluate_verifier(model, usable)
        metrics = {"train_accuracy": scores.accuracy, "train_f1": scores.f1}
    train_corpus = {"path": str(args.samples), "records": len(usable)}
    try:
        manifest = read_manifest(args.samples)
    except IntegrityError:
        manifest = None
    if manifest is not None:
        train_corpus["sha256"] = manifest.data_sha256
    record = ModelRegistry(args.registry).save(
        model, args.name, metrics=metrics, train_corpus=train_corpus
    )
    print(
        f"saved {record.model_id} (task={record.task}, "
        f"{record.artifact_bytes} bytes, "
        f"sha256={record.artifact_sha256[:12]}…) to {record.path}"
    )
    for key, value in sorted(metrics.items()):
        print(f"  {key}: {value:.4f}")
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    from repro.serve import ModelRegistry

    registry = ModelRegistry(args.registry)
    records = registry.list_records()
    if not records:
        print(f"no models registered in {args.registry}")
        return 0
    default_model = registry.default_model()
    for record in records:
        is_default = (
            record.name == default_model
            and record.version == registry.default_version(record.name)
        )
        metrics = " ".join(
            f"{key}={value:.3f}" for key, value in sorted(record.metrics.items())
        )
        marker = "*" if is_default else " "
        print(
            f"{marker} {record.name:<20} {record.version:<8} "
            f"{record.task:<7} {metrics}"
        )
    return 0


def _iter_context_payloads(paths: list[str]):
    """Yield :class:`TableContext`\\ s from JSONL files of their JSON form."""
    import json

    from repro.tables.context import TableContext

    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield TableContext.from_json(json.loads(line))
                except Exception as error:
                    raise SystemExit(
                        f"{path}:{line_no}: bad table context: {error}"
                    ) from error


def _cmd_store_add(args: argparse.Namespace) -> int:
    from repro.store import DEFAULT_SHARD_SIZE, open_or_create, synth_corpus

    store = open_or_create(
        args.store, shard_size=args.shard_size or DEFAULT_SHARD_SIZE
    )
    added = 0
    if args.synth:
        doc_ids = store.add(synth_corpus(args.synth, seed=args.seed))
        added += len(doc_ids)
    if args.jsonl:
        doc_ids = store.add(_iter_context_payloads(args.jsonl))
        added += len(doc_ids)
    if added == 0:
        print("nothing to add: pass --synth N and/or JSONL files",
              file=sys.stderr)
        return 2
    print(
        f"added {added} tables to {args.store} "
        f"({store.doc_count} total); run `repro store build` to index"
    )
    return 0


def _cmd_store_build(args: argparse.Namespace) -> int:
    from repro.store import build_index

    summary = build_index(args.store, workers=args.workers)
    print(
        f"indexed {summary['docs']} docs / {summary['terms']} terms "
        f"from {summary['shards']} shards in {summary['build_s']:.2f}s "
        f"(parts built {summary['parts_built']}, "
        f"reused {summary['parts_reused']}, workers {summary['workers']})"
    )
    return 0


def _cmd_store_query(args: argparse.Namespace) -> int:
    import json

    from repro.store import Retriever

    retriever = Retriever.open(args.store)
    hits = retriever.search(args.question, k=args.k)
    if not hits:
        print("no hits", file=sys.stderr)
        return 1
    for hit in hits:
        payload = hit.to_json()
        if args.passages:
            payload["passage"] = retriever.passage(hit.doc_id, max_rows=2)
        print(json.dumps(payload, ensure_ascii=False))
    return 0


def _cmd_store_verify(args: argparse.Namespace) -> int:
    from repro.errors import IntegrityError, StoreError
    from repro.store import TableStore, load_index

    store = TableStore.open(args.store)
    report = store.verify()
    print(
        f"store ok: {report['docs']} docs in {report['shards']} shards"
    )
    try:
        index = load_index(args.store, store=store)
    except StoreError as error:
        print(f"index: {error}", file=sys.stderr)
        return 1
    except IntegrityError:
        raise
    print(f"index ok: {index.docs} docs / {len(index.postings)} terms")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    import signal
    import threading

    from repro.serve import (
        EngineConfig,
        HedgePolicy,
        InferenceEngine,
        ModelRegistry,
        PoolConfig,
        RegistryWatcher,
        make_server,
        pool_from_registry,
        serve_in_thread,
    )

    registry = ModelRegistry(args.registry)
    names = args.model or sorted(registry.models())
    if not names:
        print(f"no models registered in {args.registry}", file=sys.stderr)
        return 1

    engine_config = EngineConfig(
        workers=args.workers,
        max_batch_size=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        queue_limit=args.queue_limit,
        cache_size=args.cache_size,
        default_deadline_s=(
            args.deadline_ms / 1e3 if args.deadline_ms else None
        ),
    )

    if args.replicas > 0:
        # multi-process replica pool: models load inside the replicas.
        try:
            backend = pool_from_registry(
                args.registry,
                names=names,
                config=PoolConfig(
                    replicas=args.replicas,
                    engine=engine_config,
                    hedge=None if args.no_hedge else HedgePolicy(),
                    breaker_threshold=(
                        0 if args.no_breaker
                        else PoolConfig.breaker_threshold
                    ),
                ),
            )
        except Exception as error:
            print(str(error), file=sys.stderr)
            return 2
        backend.start()
        for task, model_id in sorted(backend.stats()["models"].items()):
            print(f"loaded {model_id} for task {task}")

        def reloader() -> dict:
            return {"mode": "pool", **backend.reload()}

    else:
        models = {}
        for name in names:
            loaded = registry.load(name)
            task = loaded.record.task
            if task in models:
                print(
                    f"both {models[task].record.model_id} and "
                    f"{loaded.record.model_id} serve task {task!r}; pass "
                    "--model to pick one per task",
                    file=sys.stderr,
                )
                return 2
            models[task] = loaded
        backend = InferenceEngine(models, engine_config)
        backend.start()
        for task, loaded in sorted(models.items()):
            print(f"loaded {loaded.record.model_id} for task {task}")

        def reloader() -> dict:
            # in-place engine swap: re-resolve each served name's
            # default and swap only the tasks whose version moved.
            serving = backend.stats()["models"]
            changes = {}
            for name in names:
                fresh = registry.load(name)
                task = fresh.record.task
                if serving.get(task) != fresh.record.model_id:
                    changes[task] = backend.swap_model(task, fresh)
            return {"mode": "engine", "changes": changes}

    retriever = None
    if args.store:
        from repro.errors import ReproError
        from repro.store import Retriever

        try:
            retriever = Retriever.open(args.store)
        except ReproError as error:
            print(str(error), file=sys.stderr)
            backend.stop(drain=False)
            return 2
        print(
            f"store {args.store}: {retriever.doc_count} tables "
            "behind /v1/ask"
        )

    server = make_server(
        backend, host=args.host, port=args.port, reloader=reloader,
        retriever=retriever,
    )
    mode = (
        f"replicas={args.replicas}" if args.replicas > 0
        else "in-process engine"
    )
    print(
        f"serving on http://{args.host}:{server.port} "
        f"({mode}, workers={args.workers}, max_batch={args.max_batch}, "
        f"queue_limit={args.queue_limit})",
        flush=True,
    )

    stop = threading.Event()

    def _on_signal(signum: int, _frame) -> None:
        print(
            f"received {signal.Signals(signum).name}; draining…", flush=True
        )
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    serve_in_thread(server)

    if args.watch_registry > 0:
        # Poll the registry's default pointers and hot-reload when any
        # served name's default version moves — `repro registry save`
        # followed by nothing else rolls the fleet.  The watcher
        # survives transient IntegrityErrors (a poll racing a
        # save-model mid-write) by design: see repro.serve.watch.
        RegistryWatcher(
            registry, names, reloader, args.watch_registry, stop=stop,
            emit=lambda line: print(line, flush=True),
        ).start()

    # Poll so signals interrupt promptly (Event.wait without a timeout
    # can block signal delivery on some platforms).
    while not stop.wait(0.2):
        pass
    # Order matters for a clean drain: stop accepting connections, join
    # the in-flight HTTP handler threads (the backend is still running,
    # so they finish normally), then drain whatever is still queued.
    server.shutdown()
    server.server_close()
    backend.stop(drain=True)
    print("drained; final stats: " + json.dumps(backend.stats()), flush=True)
    return 0


def _package_version() -> str:
    """The installed distribution version, falling back to the source tree.

    The fallback matters for ``PYTHONPATH=src`` runs (tests, CI) where
    the ``repro`` distribution is not pip-installed and
    :func:`importlib.metadata.version` raises ``PackageNotFoundError``.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except Exception:  # PackageNotFoundError or metadata backend issues
        import repro

        return repro.__version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    make_dataset = commands.add_parser(
        "make-dataset", help="synthesize a benchmark to JSONL files"
    )
    make_dataset.add_argument("benchmark", choices=sorted(_BENCHMARKS))
    make_dataset.add_argument("--out", required=True)
    make_dataset.set_defaults(fn=_cmd_make_dataset)

    generate = commands.add_parser(
        "generate", help="run UCTR over a contexts JSONL file"
    )
    generate.add_argument("contexts", help="input contexts .jsonl")
    generate.add_argument("--out", required=True, help="output samples .jsonl")
    generate.add_argument(
        "--kinds", default=None,
        help="comma-separated program kinds (sql,logic,arith); overrides "
             "the per-benchmark defaults",
    )
    generate.add_argument(
        "--benchmark", choices=sorted(_BENCHMARKS), default=None,
        help="pick the paper's program kinds for this benchmark "
             "(auto-detected from make-dataset output when omitted)",
    )
    generate.add_argument("--per-context", type=int, default=8)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--perturb", default=None, metavar="PROFILE",
        help="corrupt each context with this messy-table profile before "
             "generation (light, headers, cells, layout, heavy); "
             "deterministic per seed, baked into checkpoint fingerprints",
    )
    generate.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for generation (1 = serial; output is "
             "identical either way)",
    )
    generate.add_argument(
        "--report", default=None, metavar="PATH",
        help="write a JSON telemetry run-report here",
    )
    generate.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="stream completed contexts here (append+fsync results, "
             "atomic manifest) so a killed run loses nothing finished",
    )
    generate.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint-dir: replay completed contexts "
             "byte-identically and generate only the remainder",
    )
    generate.add_argument(
        "--checkpoint-every", type=int, default=16, metavar="N",
        help="manifest flush cadence in contexts (default 16)",
    )
    generate.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="retry budget per context/chunk before quarantine "
             "(default 3)",
    )
    generate.add_argument(
        "--per-context-timeout", type=float, default=None,
        metavar="SECONDS",
        help="wall-clock deadline per context; overruns are killed and "
             "quarantined (default: none)",
    )
    generate.add_argument(
        "--profile", action="store_true",
        help="time the hot-path stages (sampler, executor, filters, "
             "NL-gen, serialization) and print the top hot spots; the "
             "breakdown also lands in the --report profile section",
    )
    generate.add_argument(
        "--profile-top", type=int, default=10, metavar="N",
        help="rows in the --profile hot-spot table (default 10)",
    )
    generate.set_defaults(fn=_cmd_generate)

    stats = commands.add_parser("stats", help="Table II statistics")
    stats.add_argument("benchmark", choices=sorted(_BENCHMARKS))
    stats.set_defaults(fn=_cmd_stats)

    validate = commands.add_parser(
        "validate",
        help="audit a samples corpus: manifest, load contract, and the "
             "semantic re-execution gate",
    )
    validate.add_argument("samples", help="samples .jsonl to audit")
    validate.add_argument(
        "--on-error", choices=("raise", "skip", "collect"),
        default="collect",
        help="bad-record policy while loading (default: collect — "
             "salvage intact records and report the casualties)",
    )
    validate.add_argument(
        "--require-manifest", action="store_true",
        help="fail when the sidecar integrity manifest is missing "
             "(default: verify it only when present)",
    )
    validate.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the validation run-report (schema v4) here",
    )
    validate.set_defaults(fn=_cmd_validate)

    save_model = commands.add_parser(
        "save-model",
        help="train a model on a samples corpus and register the "
             "artifact (pickle + integrity manifest)",
    )
    save_model.add_argument("samples", help="training samples .jsonl")
    save_model.add_argument(
        "--registry", required=True, metavar="DIR",
        help="model registry directory (created if missing)",
    )
    save_model.add_argument(
        "--name", required=True, help="model name in the registry"
    )
    save_model.add_argument(
        "--task", choices=("qa", "verify"), required=True,
        help="which model family to train",
    )
    save_model.add_argument("--seed", type=int, default=0)
    save_model.add_argument(
        "--epochs", type=int, default=None, metavar="N",
        help="override training epochs (default: the model's own)",
    )
    save_model.add_argument(
        "--validate", action="store_true",
        help="run the semantic re-execution gate on the corpus first",
    )
    save_model.set_defaults(fn=_cmd_save_model)

    models = commands.add_parser(
        "models", help="inspect a model registry"
    )
    models_commands = models.add_subparsers(dest="models_command", required=True)
    models_list = models_commands.add_parser(
        "list", help="list registered models (default marked with *)"
    )
    models_list.add_argument("--registry", required=True, metavar="DIR")
    models_list.set_defaults(fn=_cmd_models)

    store = commands.add_parser(
        "store",
        help="manage a table corpus store (shards + inverted index) "
             "behind POST /v1/ask",
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)

    store_add = store_commands.add_parser(
        "add",
        help="append tables to a store (created on first use) from "
             "TableContext JSONL files and/or the synthetic generator",
    )
    store_add.add_argument("--store", required=True, metavar="DIR")
    store_add.add_argument(
        "jsonl", nargs="*",
        help="JSONL files of TableContext.to_json payloads, one per line",
    )
    store_add.add_argument(
        "--synth", type=int, default=0, metavar="N",
        help="also append N deterministic synthetic tables",
    )
    store_add.add_argument(
        "--seed", type=int, default=0,
        help="seed for --synth (default 0)",
    )
    store_add.add_argument(
        "--shard-size", type=int, default=None, metavar="K",
        help="tables per shard when creating a new store",
    )
    store_add.set_defaults(fn=_cmd_store_add)

    store_build = store_commands.add_parser(
        "build",
        help="build (or resume building) the inverted index — "
             "byte-identical output at any worker count",
    )
    store_build.add_argument("--store", required=True, metavar="DIR")
    store_build.add_argument(
        "--workers", type=int, default=1,
        help="parallel per-shard index workers (default 1)",
    )
    store_build.set_defaults(fn=_cmd_store_build)

    store_query = store_commands.add_parser(
        "query", help="rank stored tables against a question (BM25)"
    )
    store_query.add_argument("--store", required=True, metavar="DIR")
    store_query.add_argument("question")
    store_query.add_argument(
        "-k", type=int, default=5, help="hits to print (default 5)"
    )
    store_query.add_argument(
        "--passages", action="store_true",
        help="include a prose snippet of each hit table",
    )
    store_query.set_defaults(fn=_cmd_store_query)

    store_verify = store_commands.add_parser(
        "verify",
        help="audit every shard against its integrity manifests and "
             "check the index is current",
    )
    store_verify.add_argument("--store", required=True, metavar="DIR")
    store_verify.set_defaults(fn=_cmd_store_verify)

    serve = commands.add_parser(
        "serve",
        help="serve registered models over HTTP (micro-batched, "
             "admission-controlled; drains on SIGTERM)",
    )
    serve.add_argument(
        "--registry", required=True, metavar="DIR",
        help="model registry directory",
    )
    serve.add_argument(
        "--model", action="append", default=None, metavar="NAME",
        help="model name to serve (repeatable, one per task; default: "
             "every registered model)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="listen port (0 picks a free one; default 8080)",
    )
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument(
        "--max-batch", type=int, default=16,
        help="micro-batch size cap (default 16)",
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="batching linger in milliseconds (default 2.0)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=256,
        help="admission-queue bound; beyond it requests are rejected "
             "with a retry-after hint (default 256)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=1024,
        help="response-cache entries, 0 disables (default 1024)",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=None,
        help="default per-request deadline in milliseconds "
             "(default: none)",
    )
    serve.add_argument(
        "--replicas", type=int, default=0,
        help="serve through N pre-fork replica processes, each with "
             "its own engine and model copies (default 0: single "
             "in-process engine)",
    )
    serve.add_argument(
        "--watch-registry", type=float, default=0.0, metavar="SECONDS",
        help="poll the registry every SECONDS and hot-reload when a "
             "served model's default version changes (default 0: off; "
             "POST /v1/admin/reload always works)",
    )
    serve.add_argument(
        "--no-hedge", action="store_true",
        help="disable hedged dispatch in replica mode (a second probe "
             "to a sibling replica when the first reply is slower than "
             "the recent p95)",
    )
    serve.add_argument(
        "--no-breaker", action="store_true",
        help="disable per-replica circuit breakers in replica mode",
    )
    serve.add_argument(
        "--store", default=None, metavar="DIR",
        help="table corpus store directory; enables POST /v1/ask "
             "(retrieve top-k tables, answer with the QA model)",
    )
    serve.set_defaults(fn=_cmd_serve)

    experiments = commands.add_parser(
        "experiments",
        help="run the experiment harness "
             "(forwards to repro.experiments.runner)",
    )
    experiments.add_argument(
        "rest", nargs=argparse.REMAINDER,
        help="arguments for the experiments runner "
             "(e.g. --scale smoke --validate)",
    )
    experiments.set_defaults(fn=_cmd_experiments)

    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "experiments":
        # Forward verbatim: argparse's REMAINDER stops at the first
        # option-like token, which would swallow `--scale` etc.
        from repro.experiments.runner import main as experiments_main

        return experiments_main(argv[1:])
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
