"""Command-line interface: ``python -m repro.cli <command>`` (or the
``repro`` console script).

Commands:

* ``make-dataset`` — synthesize one of the four benchmarks and write its
  contexts and gold samples to a directory.
* ``generate`` — run the UCTR pipeline over a JSONL file of contexts and
  write the synthetic samples; ``--workers N`` fans contexts out to
  worker processes, ``--report r.json`` writes the telemetry run-report,
  ``--checkpoint-dir d/ [--resume]`` makes the run crash-safe and
  resumable, ``--max-attempts``/``--per-context-timeout`` tune the
  fault-tolerance policy, ``--profile`` prints a hot-path stage-time
  breakdown (and adds it to the report).
* ``stats`` — print Table II-style statistics for a benchmark.
* ``validate`` — audit a persisted samples corpus: verify its integrity
  manifest, load with graceful degradation (``--on-error``), and run the
  semantic re-execution gate; exits 0 only when the corpus is clean.
* ``experiments`` — alias of :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro import UCTR, UCTRConfig
from repro.datasets import (
    benchmark_statistics,
    make_feverous,
    make_semtabfacts,
    make_tatqa,
    make_wikisql,
)
from repro.io import load_contexts, load_samples, save_contexts, save_samples
from repro.tables.context import TableContext
from repro.telemetry import (
    Telemetry,
    build_report,
    render_summary,
    write_report,
)

_BENCHMARKS = {
    "feverous": make_feverous,
    "tatqa": make_tatqa,
    "wikisql": make_wikisql,
    "semtabfacts": make_semtabfacts,
}

#: program kinds the paper prescribes per benchmark (Section V):
#: logical forms for the fact-verification benchmarks, SQL for WikiSQL,
#: SQL + arithmetic for TAT-QA.
_DEFAULT_KINDS = {
    "feverous": ("logic",),
    "semtabfacts": ("logic",),
    "wikisql": ("sql",),
    "tatqa": ("sql", "arith"),
}

_FALLBACK_KINDS = ("logic",)


def _cmd_make_dataset(args: argparse.Namespace) -> int:
    benchmark = _BENCHMARKS[args.benchmark]()
    out = Path(args.out)
    for split_name, split in benchmark.splits.items():
        # Stamp the benchmark name so `generate` can pick the paper's
        # program kinds for these contexts without being told.
        contexts = [
            replace(ctx, meta={**ctx.meta, "benchmark": args.benchmark})
            for ctx in split.contexts
        ]
        stamp = {"benchmark": args.benchmark, "split": split_name}
        n_ctx = save_contexts(
            out / f"{split_name}.contexts.jsonl", contexts, generator=stamp
        )
        n_gold = save_samples(
            out / f"{split_name}.gold.jsonl", split.gold, generator=stamp
        )
        print(f"{split_name}: {n_ctx} contexts, {n_gold} gold samples")
    return 0


def resolve_kinds(
    kinds_arg: str | None,
    benchmark_arg: str | None,
    contexts: list[TableContext],
) -> tuple[str, ...]:
    """Program kinds for a generate run.

    Explicit ``--kinds`` always wins; then ``--benchmark``; then a
    benchmark name detected from the contexts' ``meta`` (stamped by
    ``make-dataset``); finally the logic-only fallback.
    """
    if kinds_arg:
        return tuple(part.strip() for part in kinds_arg.split(",") if part.strip())
    benchmark = benchmark_arg
    if benchmark is None:
        stamped = {ctx.meta.get("benchmark") for ctx in contexts}
        stamped.discard(None)
        if len(stamped) == 1:
            benchmark = stamped.pop()
    return _DEFAULT_KINDS.get(benchmark, _FALLBACK_KINDS)


def _write_generate_report(
    args: argparse.Namespace,
    framework: UCTR,
    n_contexts: int,
    written: int | None,
    *,
    partial: bool = False,
) -> None:
    if not args.report:
        return
    report = build_report(
        framework.last_telemetry,
        seed=args.seed,
        workers=args.workers,
        contexts=n_contexts,
        samples_written=written,
        extra={"partial": True} if partial else None,
    )
    path = write_report(args.report, report)
    print(f"wrote {'partial ' if partial else ''}run report to {path}")
    print(render_summary(report))


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro import profiling
    from repro.runtime import RetryPolicy

    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.profile:
        # install() also sets REPRO_PROFILE so worker processes inherit
        # the setting; their stage timers come back with the telemetry
        # snapshots and merge additively.
        profiling.install()
    contexts = load_contexts(args.contexts)
    kinds = resolve_kinds(args.kinds, args.benchmark, contexts)
    framework = UCTR(
        UCTRConfig(
            program_kinds=kinds,
            samples_per_context=args.per_context,
            seed=args.seed,
        )
    )
    policy = RetryPolicy(
        max_attempts=args.max_attempts,
        deadline=args.per_context_timeout,
    )
    started = time.perf_counter()
    framework.fit(contexts)
    try:
        samples = framework.generate(
            contexts,
            workers=args.workers,
            retry=policy,
            checkpoint_dir=args.checkpoint_dir,
            resume_from=args.checkpoint_dir if args.resume else None,
            checkpoint_every=args.checkpoint_every,
        )
    except KeyboardInterrupt:
        # UCTR.generate already landed a final partial checkpoint.
        print(
            "\ninterrupted; progress checkpointed"
            + (
                f" in {args.checkpoint_dir} — rerun with --resume "
                "to continue"
                if args.checkpoint_dir
                else " nowhere (no --checkpoint-dir given)"
            )
        )
        _write_generate_report(
            args, framework, len(contexts), None, partial=True
        )
        return 130
    elapsed = time.perf_counter() - started
    written = save_samples(
        args.out,
        samples,
        generator={
            "command": "generate",
            "seed": args.seed,
            "kinds": list(kinds),
            "per_context": args.per_context,
            "contexts": str(args.contexts),
        },
    )
    rate = written / elapsed if elapsed > 0 else 0.0
    print(
        f"wrote {written} synthetic samples to {args.out} "
        f"(kinds={','.join(kinds)}, workers={args.workers}, "
        f"{rate:.1f} samples/sec)"
    )
    if args.profile:
        # Pick up parent-side stages (e.g. serialization) recorded after
        # the last per-context flush, then print the hot-spot table.
        profiling.flush_into(framework.last_telemetry)
        section = profiling.profile_section(
            framework.last_telemetry.snapshot()["timers"]
        )
        print(profiling.render_profile(section, top=args.profile_top))
    quarantined = framework.last_telemetry.events("quarantine")
    if quarantined:
        print(
            f"quarantined {len(quarantined)} context(s): "
            + ", ".join(
                f"#{entry['index']} ({entry.get('error') or entry['reason']})"
                for entry in quarantined
            )
        )
    _write_generate_report(args, framework, len(contexts), written)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    benchmark = _BENCHMARKS[args.benchmark]()
    stats = benchmark_statistics(benchmark)
    for key, value in stats.as_row().items():
        print(f"{key}: {value}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.errors import FileFormatError, IntegrityError
    from repro.validate import LoadResult, read_manifest, validate_samples

    integrity = "require" if args.require_manifest else "verify"
    try:
        loaded = load_samples(
            args.samples, on_error=args.on_error, integrity=integrity
        )
    except (FileFormatError, IntegrityError) as error:
        print(f"FAIL {args.samples}: {error}", file=sys.stderr)
        return 1
    if isinstance(loaded, LoadResult):
        samples, rejects = loaded.records, loaded.rejects
    else:
        samples, rejects = loaded, []
    integrity_failed = any(r.reason == "integrity" for r in rejects)
    try:
        manifest = read_manifest(args.samples)
    except IntegrityError:
        manifest = None
    if integrity_failed:
        manifest_status = "FAILED"
    elif manifest is None:
        manifest_status = "absent"
    else:
        manifest_status = (
            f"ok (sha256={manifest.data_sha256[:12]}…, "
            f"{manifest.records} records)"
        )
    print(
        f"{args.samples}: {len(samples)} sample(s) loaded, "
        f"{len(rejects)} reject(s), manifest {manifest_status}"
    )
    for reject in rejects:
        print(
            f"  reject {reject.path}:{reject.line_number} "
            f"[{reject.reason}] {reject.detail}"
        )
    telemetry = Telemetry()
    summary = validate_samples(samples, telemetry)
    print(summary.render())
    for verdict in summary.flagged:
        print(
            f"  {verdict.status}: {verdict.uid} "
            f"[{verdict.reason}] {verdict.detail}"
        )
    if args.report:
        report = build_report(
            telemetry,
            extra={
                "validated_path": str(args.samples),
                "samples_loaded": len(samples),
                "rejects": [reject.to_json() for reject in rejects],
            },
        )
        path = write_report(args.report, report)
        print(f"wrote validation report to {path}")
    clean = summary.clean and not rejects
    print("PASS" if clean else "FAIL")
    return 0 if clean else 1


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as experiments_main

    return experiments_main(list(args.rest))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    make_dataset = commands.add_parser(
        "make-dataset", help="synthesize a benchmark to JSONL files"
    )
    make_dataset.add_argument("benchmark", choices=sorted(_BENCHMARKS))
    make_dataset.add_argument("--out", required=True)
    make_dataset.set_defaults(fn=_cmd_make_dataset)

    generate = commands.add_parser(
        "generate", help="run UCTR over a contexts JSONL file"
    )
    generate.add_argument("contexts", help="input contexts .jsonl")
    generate.add_argument("--out", required=True, help="output samples .jsonl")
    generate.add_argument(
        "--kinds", default=None,
        help="comma-separated program kinds (sql,logic,arith); overrides "
             "the per-benchmark defaults",
    )
    generate.add_argument(
        "--benchmark", choices=sorted(_BENCHMARKS), default=None,
        help="pick the paper's program kinds for this benchmark "
             "(auto-detected from make-dataset output when omitted)",
    )
    generate.add_argument("--per-context", type=int, default=8)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for generation (1 = serial; output is "
             "identical either way)",
    )
    generate.add_argument(
        "--report", default=None, metavar="PATH",
        help="write a JSON telemetry run-report here",
    )
    generate.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="stream completed contexts here (append+fsync results, "
             "atomic manifest) so a killed run loses nothing finished",
    )
    generate.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint-dir: replay completed contexts "
             "byte-identically and generate only the remainder",
    )
    generate.add_argument(
        "--checkpoint-every", type=int, default=16, metavar="N",
        help="manifest flush cadence in contexts (default 16)",
    )
    generate.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="retry budget per context/chunk before quarantine "
             "(default 3)",
    )
    generate.add_argument(
        "--per-context-timeout", type=float, default=None,
        metavar="SECONDS",
        help="wall-clock deadline per context; overruns are killed and "
             "quarantined (default: none)",
    )
    generate.add_argument(
        "--profile", action="store_true",
        help="time the hot-path stages (sampler, executor, filters, "
             "NL-gen, serialization) and print the top hot spots; the "
             "breakdown also lands in the --report profile section",
    )
    generate.add_argument(
        "--profile-top", type=int, default=10, metavar="N",
        help="rows in the --profile hot-spot table (default 10)",
    )
    generate.set_defaults(fn=_cmd_generate)

    stats = commands.add_parser("stats", help="Table II statistics")
    stats.add_argument("benchmark", choices=sorted(_BENCHMARKS))
    stats.set_defaults(fn=_cmd_stats)

    validate = commands.add_parser(
        "validate",
        help="audit a samples corpus: manifest, load contract, and the "
             "semantic re-execution gate",
    )
    validate.add_argument("samples", help="samples .jsonl to audit")
    validate.add_argument(
        "--on-error", choices=("raise", "skip", "collect"),
        default="collect",
        help="bad-record policy while loading (default: collect — "
             "salvage intact records and report the casualties)",
    )
    validate.add_argument(
        "--require-manifest", action="store_true",
        help="fail when the sidecar integrity manifest is missing "
             "(default: verify it only when present)",
    )
    validate.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the validation run-report (schema v4) here",
    )
    validate.set_defaults(fn=_cmd_validate)

    experiments = commands.add_parser(
        "experiments",
        help="run the experiment harness "
             "(forwards to repro.experiments.runner)",
    )
    experiments.add_argument(
        "rest", nargs=argparse.REMAINDER,
        help="arguments for the experiments runner "
             "(e.g. --scale smoke --validate)",
    )
    experiments.set_defaults(fn=_cmd_experiments)

    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "experiments":
        # Forward verbatim: argparse's REMAINDER stops at the first
        # option-like token, which would swallow `--scale` etc.
        from repro.experiments.runner import main as experiments_main

        return experiments_main(argv[1:])
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
