"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``make-dataset`` — synthesize one of the four benchmarks and write its
  contexts and gold samples to a directory.
* ``generate`` — run the UCTR pipeline over a JSONL file of contexts and
  write the synthetic samples.
* ``stats`` — print Table II-style statistics for a benchmark.
* ``experiments`` — alias of :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import UCTR, UCTRConfig
from repro.datasets import (
    benchmark_statistics,
    make_feverous,
    make_semtabfacts,
    make_tatqa,
    make_wikisql,
)
from repro.io import load_contexts, save_contexts, save_samples

_BENCHMARKS = {
    "feverous": make_feverous,
    "tatqa": make_tatqa,
    "wikisql": make_wikisql,
    "semtabfacts": make_semtabfacts,
}

_DEFAULT_KINDS = {
    "feverous": ("logic",),
    "semtabfacts": ("logic",),
    "wikisql": ("sql",),
    "tatqa": ("sql", "arith"),
}


def _cmd_make_dataset(args: argparse.Namespace) -> int:
    benchmark = _BENCHMARKS[args.benchmark]()
    out = Path(args.out)
    for split_name, split in benchmark.splits.items():
        n_ctx = save_contexts(
            out / f"{split_name}.contexts.jsonl", split.contexts
        )
        n_gold = save_samples(out / f"{split_name}.gold.jsonl", split.gold)
        print(f"{split_name}: {n_ctx} contexts, {n_gold} gold samples")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    contexts = load_contexts(args.contexts)
    kinds = tuple(args.kinds.split(",")) if args.kinds else ("logic",)
    framework = UCTR(
        UCTRConfig(
            program_kinds=kinds,
            samples_per_context=args.per_context,
            seed=args.seed,
        )
    )
    framework.fit(contexts)
    samples = framework.generate(contexts)
    written = save_samples(args.out, samples)
    print(f"wrote {written} synthetic samples to {args.out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    benchmark = _BENCHMARKS[args.benchmark]()
    stats = benchmark_statistics(benchmark)
    for key, value in stats.as_row().items():
        print(f"{key}: {value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    make_dataset = commands.add_parser(
        "make-dataset", help="synthesize a benchmark to JSONL files"
    )
    make_dataset.add_argument("benchmark", choices=sorted(_BENCHMARKS))
    make_dataset.add_argument("--out", required=True)
    make_dataset.set_defaults(fn=_cmd_make_dataset)

    generate = commands.add_parser(
        "generate", help="run UCTR over a contexts JSONL file"
    )
    generate.add_argument("contexts", help="input contexts .jsonl")
    generate.add_argument("--out", required=True, help="output samples .jsonl")
    generate.add_argument(
        "--kinds", default="logic",
        help="comma-separated program kinds (sql,logic,arith)",
    )
    generate.add_argument("--per-context", type=int, default=8)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(fn=_cmd_generate)

    stats = commands.add_parser("stats", help="Table II statistics")
    stats.add_argument("benchmark", choices=sorted(_BENCHMARKS))
    stats.set_defaults(fn=_cmd_stats)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
