"""Best-effort inverse of :mod:`repro.messy`: repair what can be proven.

``sanitize_table`` runs a fixed stage pipeline — orientation detection,
merged-column splitting, duplicate-column dropping, header
normalization, per-cell repair — and **never raises**: each stage runs
under its own guard, a failing stage contributes an entry to
``SanitizeReport.errors`` and is skipped, and the worst-case result is
the input table returned unchanged with the report explaining why.

Repairs are conservative by design.  A cell is only rewritten when the
cleaned form demonstrably parses better (a recognized null convention, a
footnote marker stripped from otherwise-intact content, a
column-consensus unit suffix, a locale number format that re-parses as a
number); anything else is **kept verbatim as TEXT** and counted in
``cells.kept_text``.  Ambiguity is resolved by column consensus, never
per cell: a lone "1.200" is left alone, but a column where several cells
carry European grouping is converted as a block.  The known blind spots
(abbreviated headers, cells dashed out to nulls, transposed tables whose
body is type-uniform *and* not a year matrix) are documented in
docs/ARCHITECTURE.md — they are irrecoverable without external
knowledge, and the robustness benchmark's residual accuracy gap between
"perturbed+sanitized" and "clean" measures exactly that.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Sequence

from repro.sanitize.report import SanitizeReport
from repro.tables.context import TableContext
from repro.tables.table import Table
from repro.tables.values import ValueType, coerce_number, parse_value

#: null spellings beyond what :func:`repro.tables.values.parse_value`
#: already recognizes; all are canonicalized to the empty string.
_EXTENDED_NULLS = {
    "—", "–", "n.a.", "n.a", "(n/a)", "(na)", "n.m.", "n.d.", "nd", "nm",
}

_FOOTNOTE_RE = re.compile(
    r"""(?:
        \s*(?:\*+|†|‡)
      | \s*\[[0-9a-z]{1,3}\]
      | \s*\((?:est\.?|approx\.?|unaudited|[a-z]|[0-9]{1,2})\)
    )+$""",
    re.VERBOSE | re.IGNORECASE,
)

_SPACE_GROUPED_RE = re.compile(r"^[-+]?\d{1,3}(?: \d{3})+(?:\.\d+)?$")
_EURO_DOT_GROUPED_RE = re.compile(r"^[-+]?\d{1,3}(?:\.\d{3})+(?:,\d+)?$")
_EURO_DECIMAL_COMMA_RE = re.compile(r"^[-+]?\d+,\d+$")
_UNIT_SUFFIX_RE = re.compile(
    r"^(?P<num>[-+$€£¥]?[\d.,% ]*\d%?)\s+(?P<unit>[A-Za-z][A-Za-z.]*)$"
)

_DUPLICATE_SUFFIX_RE = re.compile(r"\s*\(\d+\)$")

_YEAR_RE = re.compile(r"^(?:19|20)\d{2}$")

#: first-column headers that mark a table as legitimately keyed by
#: time: an all-year first column under one of these is the table's
#: intended layout, not transposition damage.
_TIME_HEADER_NAMES = {
    "year", "years", "fy", "fiscal year", "date", "month", "quarter",
    "period", "season",
}


# -- stage 1: orientation -----------------------------------------------------


def _flip(table: Table) -> Table | None:
    """The transpose of ``table``, or None when it would be invalid."""
    if table.n_rows < 1 or table.n_columns < 2:
        return None
    names = table.column_names
    first_column = [row[0].raw.strip() for row in table.rows]
    new_header = [names[0]] + first_column
    lowered = [name.strip().lower() for name in new_header]
    if any(not name for name in lowered) or len(set(lowered)) != len(lowered):
        return None
    raw_rows = [[cell.raw for cell in row] for row in table.rows]
    new_rows = [
        [names[j]] + [raw_rows[i][j] for i in range(table.n_rows)]
        for j in range(1, table.n_columns)
    ]
    return Table.from_rows(
        new_header,
        new_rows,
        title=table.title,
        caption=table.caption,
        row_name_column=names[0],
    )


def _looks_transposed(table: Table) -> bool:
    """Orientation heuristics; both err toward *not* flipping.

    1. **Type mixing**: body rows are type-uniform while body columns
       mix types — attribute rows laid out sideways.
    2. **Year matrix**: every first-column cell is a four-digit year
       while no other header is — in published tables years are
       overwhelmingly column headers, not row names.  Suppressed when
       the first column's own header names a time dimension ("year",
       "date", "fy", …): that table is legitimately keyed by year.
    """
    if table.n_rows < 2 or table.n_columns < 2:
        return False
    body = [
        [parse_value(cell.raw) for cell in row] for row in table.rows
    ]

    def uniform(values) -> bool:
        types = {v.type for v in values if not v.is_null}
        return len(types) <= 1

    if table.n_columns >= 3:
        row_uniform = sum(uniform(row[1:]) for row in body)
        col_uniform = sum(
            uniform([body[i][j] for i in range(table.n_rows)])
            for j in range(1, table.n_columns)
        )
        if (
            row_uniform >= 0.8 * table.n_rows
            and col_uniform <= 0.5 * (table.n_columns - 1)
        ):
            return True
    first = [row[0].raw.strip() for row in table.rows]
    if (
        table.column_names[0].strip().lower() not in _TIME_HEADER_NAMES
        and all(_YEAR_RE.match(cell) for cell in first)
        and not any(
            _YEAR_RE.match(name.strip()) for name in table.column_names[1:]
        )
    ):
        return True
    return False


def _untranspose(table: Table, report: SanitizeReport) -> Table:
    if not _looks_transposed(table):
        return table
    flipped = _flip(table)
    if flipped is None:
        return table
    report.bump("structure", "transposed")
    return flipped


# -- stage 2: merged columns --------------------------------------------------


def _split_merged_columns(table: Table, report: SanitizeReport) -> Table:
    names = table.column_names
    raw_rows = [[cell.raw for cell in row] for row in table.rows]
    header: list[str] = []
    splits: list[tuple[int, bool]] = []  # (source column, is_split)
    taken = {name.strip().lower() for name in names}
    for j, name in enumerate(names):
        parts = name.split(" / ")
        mergeable = (
            len(parts) == 2
            and all(part.strip() for part in parts)
            and all(
                row[j].count(" | ") == 1 for row in raw_rows
            )
            and parts[0].strip().lower() != parts[1].strip().lower()
            and not any(
                part.strip().lower() in (taken - {name.strip().lower()})
                for part in parts
            )
        )
        if mergeable and table.n_rows > 0:
            header.extend(part.strip() for part in parts)
            splits.append((j, True))
            taken.discard(name.strip().lower())
            taken.update(part.strip().lower() for part in parts)
        else:
            header.append(name)
            splits.append((j, False))
    if not any(is_split for _, is_split in splits):
        return table
    new_rows = []
    for row in raw_rows:
        cells: list[str] = []
        for j, is_split in splits:
            if is_split:
                left, right = row[j].split(" | ", 1)
                cells.extend((left, right))
            else:
                cells.append(row[j])
        new_rows.append(cells)
    report.bump(
        "structure", "columns_split",
        sum(1 for _, is_split in splits if is_split),
    )
    row_name = table.row_name_column
    if row_name is not None and row_name.strip().lower() not in {
        name.strip().lower() for name in header
    }:
        row_name = None
    return Table.from_rows(
        header, new_rows,
        title=table.title, caption=table.caption, row_name_column=row_name,
    )


# -- stage 3: duplicate columns ----------------------------------------------


def _drop_duplicate_columns(table: Table, report: SanitizeReport) -> Table:
    names = table.column_names
    columns = [
        [row[j].raw for row in table.rows] for j in range(table.n_columns)
    ]
    drop: set[int] = set()
    for j, name in enumerate(names):
        base = _DUPLICATE_SUFFIX_RE.sub("", name).strip().lower()
        if base == name.strip().lower():
            continue  # no "(n)" suffix: not a duplicate candidate
        for i in range(table.n_columns):
            if i == j or i in drop:
                continue
            if names[i].strip().lower() == base and columns[i] == columns[j]:
                drop.add(j)
                break
    if not drop:
        return table
    keep = [j for j in range(table.n_columns) if j not in drop]
    header = [names[j] for j in keep]
    rows = [[row[j].raw for j in keep] for row in table.rows]
    report.bump("structure", "duplicate_columns_dropped", len(drop))
    return Table.from_rows(
        header, rows,
        title=table.title, caption=table.caption,
        row_name_column=table.row_name_column,
    )


# -- stage 4: headers ---------------------------------------------------------


def _normalize_headers(table: Table, report: SanitizeReport) -> Table:
    names = table.column_names
    cleaned: list[str] = []
    used: set[str] = set()
    changed = 0
    for index, name in enumerate(names):
        candidate = _FOOTNOTE_RE.sub("", name)
        candidate = " ".join(candidate.split())
        if not candidate.strip():
            candidate = f"column {index + 1}"
        base, n = candidate, 2
        while candidate.strip().lower() in used:
            candidate = f"{base} ({n})"
            n += 1
        used.add(candidate.strip().lower())
        if candidate != name:
            changed += 1
        cleaned.append(candidate)
    if not changed:
        return table
    report.bump("structure", "headers_normalized", changed)
    mapping = dict(zip(names, cleaned))
    row_name = (
        mapping.get(table.row_name_column)
        if table.row_name_column is not None
        else None
    )
    rows = [[cell.raw for cell in row] for row in table.rows]
    return Table.from_rows(
        cleaned, rows,
        title=table.title, caption=table.caption, row_name_column=row_name,
    )


# -- stage 5: cells -----------------------------------------------------------


def _strip_footnotes(raw: str) -> str:
    stripped = _FOOTNOTE_RE.sub("", raw)
    return stripped if stripped.strip() else raw


def _degroup_spaces(raw: str) -> str:
    if _SPACE_GROUPED_RE.match(raw.strip()):
        return raw.strip().replace(" ", "")
    return raw


def _deeuro(raw: str) -> str:
    out = raw.strip().replace(".", "").replace(",", ".")
    return out


def _euro_like(raw: str) -> bool:
    """Unambiguously European-formatted: dot grouping, or a decimal
    comma that does **not** already parse as a US-grouped number
    ("12,5" is euro-like; "1,200" reads as 1200 and is not)."""
    stripped = raw.strip()
    if _EURO_DOT_GROUPED_RE.match(stripped):
        return True
    return bool(
        _EURO_DECIMAL_COMMA_RE.match(stripped)
        and coerce_number(stripped) is None
    )


def _repair_column(
    cells: list[str], report: SanitizeReport
) -> list[str]:
    """Best-effort repair of one column; pure string → string."""
    work = list(cells)
    reasons: list[set[str]] = [set() for _ in cells]

    # per-cell pass: null conventions, footnote markers, space grouping
    for i, raw in enumerate(work):
        stripped = raw.strip()
        if parse_value(raw).is_null:
            continue
        if stripped.lower() in _EXTENDED_NULLS:
            work[i] = ""
            reasons[i].add("null_convention")
            continue
        cleaned = _strip_footnotes(raw)
        if cleaned != raw:
            work[i] = cleaned
            reasons[i].add("footnote")
        degrouped = _degroup_spaces(work[i])
        if degrouped != work[i]:
            work[i] = degrouped
            reasons[i].add("locale")

    # column pass: a consensus unit suffix (>= 60% of non-null cells and
    # at least two of them agree on the word) is stripped as a block.
    non_null = [i for i, w in enumerate(work) if not parse_value(w).is_null]
    unit_votes: dict[str, list[int]] = {}
    for i in non_null:
        match = _UNIT_SUFFIX_RE.match(work[i].strip())
        if not match:
            continue
        number = match.group("num").strip()
        if (
            coerce_number(number) is None
            and not _euro_like(number)
            and not _SPACE_GROUPED_RE.match(number)
        ):
            continue
        unit_votes.setdefault(match.group("unit").lower(), []).append(i)
    if unit_votes:
        unit, holders = max(unit_votes.items(), key=lambda kv: len(kv[1]))
        if len(holders) >= 2 and len(holders) >= 0.6 * len(non_null):
            for i in holders:
                match = _UNIT_SUFFIX_RE.match(work[i].strip())
                work[i] = match.group("num").strip()
                reasons[i].add("unit")
                degrouped = _degroup_spaces(work[i])
                if degrouped != work[i]:
                    work[i] = degrouped
                    reasons[i].add("locale")

    # column pass: European grouping, by consensus only — "1.200" alone
    # is ambiguous (1.2 with trailing zeros), but a column where >= 2
    # cells carry euro grouping and everything else is a plain number
    # (or null) is converted as a block.  A comma-only form that already
    # parses as a US-grouped number ("1,200" → 1200) is never treated as
    # euro on its own evidence; it joins the block only when the column
    # also carries dot-grouped cells, which pin the column's locale.
    euro = [i for i in non_null if _euro_like(work[i])]
    if any(_EURO_DOT_GROUPED_RE.match(work[i].strip()) for i in euro):
        euro.extend(
            i for i in non_null
            if i not in euro
            and _EURO_DECIMAL_COMMA_RE.match(work[i].strip())
        )
        euro.sort()
    others_plain = all(
        coerce_number(work[i]) is not None
        for i in non_null
        if i not in euro
    )
    if len(euro) >= 2 and others_plain:
        for i in euro:
            work[i] = _deeuro(work[i])
            reasons[i].add("locale")

    # ledger
    for i, raw in enumerate(cells):
        report.bump("cells", "scanned")
        if work[i] == raw:
            continue
        if "null_convention" in reasons[i]:
            report.bump("cells", "nulled")
        else:
            report.bump("cells", "repaired")
        for reason in sorted(reasons[i]):
            report.bump("repairs", reason)
    return work


def _repair_cells(table: Table, report: SanitizeReport) -> Table:
    if table.n_rows == 0 or table.n_columns == 0:
        return table
    names = table.column_names
    columns = [
        _repair_column([row[j].raw for row in table.rows], report)
        for j in range(table.n_columns)
    ]
    rows = [
        [columns[j][i] for j in range(table.n_columns)]
        for i in range(table.n_rows)
    ]
    repaired = Table.from_rows(
        names, rows,
        title=table.title, caption=table.caption,
        row_name_column=table.row_name_column,
    )
    # degradation ledger: cells that still read as TEXT inside a column
    # that is majority-numeric were numeric-intent we failed to repair.
    for j, column in enumerate(repaired.schema.columns):
        cells = [row[j] for row in repaired.rows]
        non_null = [cell for cell in cells if not cell.is_null]
        if not non_null:
            continue
        numeric = sum(cell.type is ValueType.NUMBER for cell in non_null)
        texts = sum(cell.type is ValueType.TEXT for cell in non_null)
        if texts and numeric >= 0.6 * len(non_null):
            report.bump("cells", "kept_text", texts)
    return repaired


# -- the pipeline -------------------------------------------------------------

_STAGES: tuple[tuple[str, Callable[[Table, SanitizeReport], Table]], ...] = (
    ("untranspose", _untranspose),
    # duplicates are dropped twice: a duplicated *merged* column
    # ("a / b (2)") can only match its original before the original is
    # split away, while a duplicate of a plain column may only become
    # detectable after splitting frees its base name.
    ("drop_duplicates", _drop_duplicate_columns),
    ("split_merged", _split_merged_columns),
    ("drop_duplicates", _drop_duplicate_columns),
    ("normalize_headers", _normalize_headers),
    ("repair_cells", _repair_cells),
)


def sanitize_table(table: Table) -> tuple[Table, SanitizeReport]:
    """Repair one table as far as the evidence allows; never raises.

    Returns the sanitized table (always a valid :class:`Table`; in the
    worst case the input itself) and the :class:`SanitizeReport`
    describing every repair, every kept-as-TEXT cell, and every stage
    error that was swallowed.
    """
    report = SanitizeReport()
    out = table
    for stage_name, stage in _STAGES:
        try:
            out = stage(out, report)
        except Exception as error:  # graceful degradation, by contract
            report.errors.append(
                f"{stage_name}: {type(error).__name__}: {error}"
            )
    return out, report


def sanitize_context(
    context: TableContext,
) -> tuple[TableContext, SanitizeReport]:
    """Sanitize a context's table; paragraphs and uid are untouched."""
    table, report = sanitize_table(context.table)
    sanitized = context.with_table(table)
    return sanitized, report


def sanitize_samples(
    samples: Sequence[Any],
) -> tuple[list[Any], SanitizeReport]:
    """Sanitize the contexts of evaluation samples; aggregate report.

    The inverse of :func:`repro.messy.perturb_samples` as far as the
    evidence allows — the robustness benchmark's "perturbed+sanitized"
    arm.
    """
    from dataclasses import replace

    aggregate = SanitizeReport()
    out = []
    for sample in samples:
        context, report = sanitize_context(sample.context)
        out.append(replace(sample, context=context))
        for section in ("structure", "cells", "repairs"):
            for key, value in getattr(report, section).items():
                aggregate.bump(section, key, value)
        aggregate.errors.extend(report.errors)
    return out, aggregate


# -- payload-level repair (pre-parse) ----------------------------------------


_VALID_TYPES = {"number", "text", "date", "bool", "null"}


def sanitize_table_payload(payload: Any) -> tuple[Any, dict[str, int]]:
    """Repair a raw ``table`` JSON payload **before** parsing.

    Some damage is unrepresentable in a typed :class:`Table` — duplicate
    or empty header names are rejected by ``Schema`` at construction,
    ragged rows by ``Table`` itself — so when the serve frontend is
    asked to sanitize, these must be fixed on the JSON dict first.
    Returns the repaired payload plus fix counts (folded into the
    :class:`SanitizeReport`'s ``structure`` section).  Non-dict input is
    returned unchanged: validation will reject it with a field-level
    error.
    """
    if not isinstance(payload, dict):
        return payload, {}
    fixes: dict[str, int] = {}

    def bump(key: str, by: int = 1) -> None:
        fixes[key] = fixes.get(key, 0) + by

    columns = payload.get("columns", [])
    if not isinstance(columns, list):
        columns = []
        bump("columns_rebuilt")
    new_columns = []
    used: set[str] = set()
    for index, entry in enumerate(columns):
        if not isinstance(entry, dict):
            entry = {"name": str(entry)}
            bump("columns_rebuilt")
        name = entry.get("name")
        if not isinstance(name, str):
            name = "" if name is None else str(name)
            bump("header_names_coerced")
        cleaned = " ".join(name.split())
        if not cleaned:
            cleaned = f"column {index + 1}"
            bump("header_names_filled")
        base, n = cleaned, 2
        deduped = False
        while cleaned.strip().lower() in used:
            cleaned = f"{base} ({n})"
            n += 1
            deduped = True
        if deduped:
            bump("header_names_deduped")
        used.add(cleaned.strip().lower())
        column_type = entry.get("type", "text")
        if column_type not in _VALID_TYPES:
            column_type = "text"
            bump("column_types_reset")
        new_columns.append({"name": cleaned, "type": column_type})
    width = len(new_columns)

    rows = payload.get("rows", [])
    if not isinstance(rows, list):
        rows = []
        bump("rows_rebuilt")
    new_rows = []
    for row in rows:
        if not isinstance(row, list):
            bump("rows_dropped")
            continue
        cells = []
        for cell in row:
            if isinstance(cell, str):
                cells.append(cell)
            elif cell is None:
                cells.append("")
                bump("cells_coerced")
            else:
                cells.append(str(cell))
                bump("cells_coerced")
        if len(cells) < width:
            cells.extend([""] * (width - len(cells)))
            bump("rows_padded")
        elif len(cells) > width:
            cells = cells[:width]
            bump("rows_truncated")
        new_rows.append(cells)

    row_name = payload.get("row_name_column")
    if row_name is not None and (
        not isinstance(row_name, str)
        or row_name.strip().lower() not in used
    ):
        row_name = None
        bump("row_name_column_dropped")

    out = {
        "title": payload.get("title", "")
        if isinstance(payload.get("title", ""), str)
        else str(payload.get("title")),
        "caption": payload.get("caption", "")
        if isinstance(payload.get("caption", ""), str)
        else str(payload.get("caption")),
        "row_name_column": row_name,
        "columns": new_columns,
        "rows": new_rows,
    }
    return out, fixes
