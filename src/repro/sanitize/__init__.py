"""Best-effort table sanitization with graceful degradation.

The inverse half of the messy-table robustness track
(:mod:`repro.messy` is the forward half).  :func:`sanitize_table`
repairs what can be proven — orientation, merged/duplicated columns,
header noise, null conventions, footnote markers, units, locale number
formats — and keeps everything else verbatim as TEXT.  It **never
raises**: the worst case is the input table returned unchanged with the
failure recorded in the accompanying :class:`SanitizeReport`.

The serve frontend runs this as an optional preprocessor
(``"sanitize": true`` in a ``/v1/qa`` / ``/v1/verify`` payload); the
report is echoed in the response and aggregated into ``/metrics``.
"""

from repro.sanitize.report import SanitizeReport
from repro.sanitize.sanitizer import (
    sanitize_context,
    sanitize_samples,
    sanitize_table,
    sanitize_table_payload,
)

__all__ = [
    "SanitizeReport",
    "sanitize_context",
    "sanitize_samples",
    "sanitize_table",
    "sanitize_table_payload",
]
