"""Structured accounting of what sanitization did to one table.

The graceful-degradation contract of :func:`repro.sanitize.sanitize_table`
is that it *never raises*: every repair it makes, every cell it gives up
on, and every internal error it swallows is recorded here instead, so
callers (the serve frontend echoes the report in responses; the engine
folds its counters into ``/metrics``) can see exactly how trustworthy
the sanitized table is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class SanitizeReport:
    """Per-table sanitization outcome.

    * ``structure`` — table-shape repairs (transposed back, merged
      columns split, duplicates dropped, headers normalized, plus any
      payload-level fixes such as padded ragged rows).
    * ``cells`` — the cell ledger: ``scanned`` (every body cell),
      ``repaired`` (rewritten to a cleaner parse), ``nulled``
      (non-standard null conventions canonicalized), ``kept_text``
      (looked numeric-intent but could not be repaired; kept verbatim
      as TEXT — the degradation half of the contract).
    * ``repairs`` — repaired-cell counts by reason ("footnote",
      "unit", "locale", "currency_code", "null_convention").
    * ``errors`` — exceptions swallowed by a sanitization stage; the
      stage's changes are discarded but the table is still returned.
    """

    structure: dict[str, int] = field(default_factory=dict)
    cells: dict[str, int] = field(default_factory=dict)
    repairs: dict[str, int] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)

    def bump(self, section: str, key: str, by: int = 1) -> None:
        """Increment one counter in ``structure``/``cells``/``repairs``."""
        counters: dict[str, int] = getattr(self, section)
        counters[key] = counters.get(key, 0) + by

    @property
    def repaired_cells(self) -> int:
        return self.cells.get("repaired", 0)

    @property
    def kept_text_cells(self) -> int:
        return self.cells.get("kept_text", 0)

    @property
    def structure_repairs(self) -> int:
        return sum(self.structure.values())

    @property
    def changed(self) -> bool:
        """Whether sanitization altered the table at all."""
        return bool(
            self.structure
            or self.repaired_cells
            or self.cells.get("nulled", 0)
        )

    def merge_structure(self, counts: dict[str, int]) -> None:
        """Fold payload-level fix counts (pre-parse repairs) in."""
        for key, value in counts.items():
            if value:
                self.bump("structure", key, value)

    def to_json(self) -> dict[str, Any]:
        return {
            "structure": dict(self.structure),
            "cells": dict(self.cells),
            "repairs": dict(self.repairs),
            "errors": list(self.errors),
        }

    def summary(self) -> str:
        """One human line: what changed, what was kept as-is."""
        return (
            f"{self.structure_repairs} structure repair(s), "
            f"{self.repaired_cells} cell(s) repaired, "
            f"{self.cells.get('nulled', 0)} null(s) canonicalized, "
            f"{self.kept_text_cells} kept as text, "
            f"{len(self.errors)} stage error(s)"
        )
