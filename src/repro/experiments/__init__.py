"""Experiment harness: one module per paper table/figure.

Every module exposes ``run(scale) -> ExperimentResult`` where ``scale``
is a :class:`~repro.experiments.config.Scale` preset (``SMOKE`` for
tests, ``PAPER`` for the full benchmark harness), and results render as
fixed-width tables mirroring the paper's layout.
"""

from repro.experiments.config import Scale, SMOKE, PAPER, ExperimentResult

__all__ = ["Scale", "SMOKE", "PAPER", "ExperimentResult"]
