"""Scales, shared data workbenches, and result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.datasets import (
    FeverousConfig,
    SemTabFactsConfig,
    TabFactConfig,
    TatQAConfig,
    WikiSQLConfig,
    make_feverous,
    make_semtabfacts,
    make_tabfact,
    make_tatqa,
    make_wikisql,
)
from repro.datasets.base import Benchmark
from repro.eval.report import render_table
from repro.mqaqg import MQAQG, MQAQGConfig
from repro.pipelines import UCTR, UCTRConfig
from repro.pipelines.samples import ReasoningSample, TaskType


@dataclass(frozen=True)
class Scale:
    """Experiment size preset.

    ``factor`` multiplies the default context counts of each benchmark;
    ``synth_per_context`` sets UCTR / MQA-QG generation volume.
    ``workers`` fans UCTR generation out to worker processes — synthetic
    corpora are identical for any worker count (per-context RNG
    streams), so it is a pure throughput knob.
    """

    name: str
    factor: float = 1.0
    synth_per_context: int = 16
    fewshot_k: int = 50
    seed: int = 11
    workers: int = 1

    def scaled(self, count: int, minimum: int = 8) -> int:
        return max(minimum, round(count * self.factor))


#: tiny preset for unit/integration tests.
SMOKE = Scale(name="smoke", factor=0.18, synth_per_context=8, fewshot_k=20)

#: the full harness preset used by the benchmark suite.
PAPER = Scale(name="paper", factor=1.0, synth_per_context=16, fewshot_k=50)


@dataclass(frozen=True)
class ExperimentResult:
    """Rows of one regenerated table/figure plus rendering metadata."""

    experiment: str
    title: str
    columns: tuple[str, ...]
    rows: tuple[Mapping[str, Any], ...]
    notes: str = ""

    def render(self) -> str:
        text = render_table(self.title, list(self.columns), list(self.rows))
        if self.notes:
            text += f"\n({self.notes})"
        return text

    def cell(self, row_label: str, column: str, label_key: str = "Model") -> Any:
        for row in self.rows:
            if str(row.get(label_key)) == row_label:
                return row.get(column)
        raise KeyError(f"no row labeled {row_label!r}")


# -- shared data workbench ---------------------------------------------------

_BENCH_CACHE: dict[tuple[str, str], Benchmark] = {}
_SYNTH_CACHE: dict[tuple[str, str, str], list[ReasoningSample]] = {}
#: telemetry snapshots of every UCTR generation run, keyed like the
#: synthetic cache; the runner renders these after the experiments.
_TELEMETRY_LOG: dict[tuple[str, str, str], dict] = {}


def benchmark(name: str, scale: Scale) -> Benchmark:
    """Build (or fetch cached) one benchmark at the given scale."""
    key = (name, scale.name)
    if key in _BENCH_CACHE:
        return _BENCH_CACHE[key]
    if name == "feverous":
        config = FeverousConfig(
            train_contexts=scale.scaled(140),
            dev_contexts=scale.scaled(45),
            test_contexts=scale.scaled(45),
        )
        built = make_feverous(config)
    elif name == "tatqa":
        config = TatQAConfig(
            train_contexts=scale.scaled(70),
            dev_contexts=scale.scaled(30),
            test_contexts=scale.scaled(30),
        )
        built = make_tatqa(config)
    elif name == "wikisql":
        config = WikiSQLConfig(
            train_contexts=scale.scaled(150),
            dev_contexts=scale.scaled(45),
            test_contexts=scale.scaled(45),
        )
        built = make_wikisql(config)
    elif name == "semtabfacts":
        config = SemTabFactsConfig(
            train_contexts=scale.scaled(45),
            dev_contexts=scale.scaled(25),
            test_contexts=scale.scaled(25),
        )
        built = make_semtabfacts(config)
    elif name == "tabfact":
        built = make_tabfact(
            TabFactConfig(train_contexts=scale.scaled(180))
        )
    else:
        raise ValueError(f"unknown benchmark {name!r}")
    _BENCH_CACHE[key] = built
    return built


_PROGRAM_KINDS = {
    "feverous": ("logic",),
    "semtabfacts": ("logic",),
    "wikisql": ("sql",),
    "tatqa": ("sql", "arith"),
}


def uctr_synthetic(
    name: str,
    scale: Scale,
    variant: str = "full",
) -> list[ReasoningSample]:
    """UCTR synthetic training data for one benchmark.

    ``variant``: "full" (both operators), "no_t2t" (w/o Table-To-Text
    and Text-To-Table — the ablation row of Tables III/VIII), or
    "perturbed" (generation over "heavy"-corrupted contexts — the
    train-on-messy arm of the robustness ablation).
    """
    key = (name, scale.name, variant)
    if key in _SYNTH_CACHE:
        return _SYNTH_CACHE[key]
    bench = benchmark(name, scale)
    use_t2t = variant == "full" or variant == "perturbed"
    config = UCTRConfig(
        program_kinds=_PROGRAM_KINDS[name],
        use_table_to_text=use_t2t,
        use_text_to_table=use_t2t,
        samples_per_context=scale.synth_per_context,
        perturb="heavy" if variant == "perturbed" else None,
        seed=scale.seed,
    )
    framework = UCTR(config)
    contexts = list(bench.train.contexts)
    framework.fit(contexts)
    samples = framework.generate(contexts, workers=scale.workers)
    if framework.last_telemetry is not None:
        _TELEMETRY_LOG[key] = framework.last_telemetry.snapshot()
    _SYNTH_CACHE[key] = samples
    return samples


def mqaqg_synthetic(name: str, scale: Scale) -> list[ReasoningSample]:
    """MQA-QG baseline synthetic data for one benchmark."""
    key = (name, scale.name, "mqaqg")
    if key in _SYNTH_CACHE:
        return _SYNTH_CACHE[key]
    bench = benchmark(name, scale)
    generator = MQAQG(
        MQAQGConfig(
            task=bench.task,
            samples_per_context=scale.synth_per_context,
            seed=scale.seed,
        )
    )
    samples = generator.generate(list(bench.train.contexts))
    _SYNTH_CACHE[key] = samples
    return samples


def synthetic_corpora() -> dict[tuple[str, str, str], list[ReasoningSample]]:
    """Every synthetic corpus generated so far, keyed like the telemetry.

    Keys are ``(benchmark, scale_name, variant)``; the runner's
    ``--validate`` pass audits these through the semantic re-execution
    gate after the experiments finish.
    """
    return dict(_SYNTH_CACHE)


def generation_telemetry() -> dict[tuple[str, str, str], dict]:
    """Telemetry snapshots of every UCTR generation run so far.

    Keys are ``(benchmark, scale_name, variant)`` — the same keys as the
    synthetic-corpus cache.  Snapshots merge cleanly into one
    :class:`repro.telemetry.Telemetry` sink for a whole-run report.
    """
    return dict(_TELEMETRY_LOG)


def clear_caches() -> None:
    """Drop all cached benchmarks and synthetic corpora (tests)."""
    _BENCH_CACHE.clear()
    _SYNTH_CACHE.clear()
    _TELEMETRY_LOG.clear()
