"""Figure 5 — synthetic data vs labeled data on TAT-QA.

Two curves over the number of available labeled samples: a model
trained on labels alone, and a model pre-trained on UCTR synthetic data
then fine-tuned on the same labels.  The paper's shape: the synthetic
curve dominates everywhere and the gap is largest at small budgets.
"""

from __future__ import annotations

from repro.experiments.config import (
    ExperimentResult,
    Scale,
    benchmark,
    uctr_synthetic,
)
from repro.train import TrainingPlan, evaluate_qa, train_qa
from repro.train.fewshot import label_budget_curve

COLUMNS = ("Labeled Samples", "Labels only (F1)", "UCTR + labels (F1)")


def run(scale: Scale, budgets: list[int] | None = None) -> ExperimentResult:
    bench = benchmark("tatqa", scale)
    gold_train = list(bench.train.gold)
    dev = list(bench.dev.gold)
    synthetic = uctr_synthetic("tatqa", scale)
    if budgets is None:
        budgets = _default_budgets(len(gold_train))
    subsets = label_budget_curve(gold_train, budgets, seed=scale.seed)
    synthetic_only = train_qa(TrainingPlan.unsupervised(synthetic))
    synthetic_f1 = evaluate_qa(synthetic_only, dev).f1
    rows = [
        {
            "Labeled Samples": 0,
            "Labels only (F1)": 0.0,
            "UCTR + labels (F1)": synthetic_f1,
        }
    ]
    for budget in sorted(subsets):
        labels = subsets[budget]
        if not labels:
            continue
        plain = train_qa(TrainingPlan.supervised(labels))
        pretrained = train_qa(TrainingPlan.few_shot(synthetic, labels))
        rows.append(
            {
                "Labeled Samples": len(labels),
                "Labels only (F1)": evaluate_qa(plain, dev).f1,
                "UCTR + labels (F1)": evaluate_qa(pretrained, dev).f1,
            }
        )
    return ExperimentResult(
        experiment="figure5",
        title="Figure 5: effectiveness of synthetic vs labeled data (TAT-QA dev)",
        columns=COLUMNS,
        rows=tuple(rows),
        notes=f"{len(synthetic)} synthetic samples; budgets nested per seed",
    )


def _default_budgets(n_gold: int) -> list[int]:
    """Geometric budget ladder up to the full training set."""
    budgets: list[int] = []
    budget = 25
    while budget < n_gold:
        budgets.append(budget)
        budget *= 2
    budgets.append(n_gold)
    return budgets
