"""Table VIII — ablations on the development set of TAT-QA.

Settings (data source × program type), mirroring the paper's grid:

* A1 — Table source, SQL only.
* A2 — Text source, SQL only.
* A3 — Table + Text sources, SQL only.
* A4 — Table + Text sources, Arithmetic only.
* A5 — Table + Text sources, SQL + Arithmetic (no joint Table<->Text
  samples; the "UCTR w/o T2T" configuration).
* A6 — everything: joint table-text samples included (full UCTR).

Expected ordering: A1/A2 weak, A3 better, A4 > A3 (arithmetic dominates
TAT-QA), A5 strong, A6 best — especially on the Table-Text column.
"""

from __future__ import annotations

from repro.eval.report import em_f1
from repro.experiments.config import (
    ExperimentResult,
    Scale,
    benchmark,
    uctr_synthetic,
)
from repro.pipelines.samples import EvidenceType, ReasoningSample
from repro.train import TrainingPlan, evaluate_qa, train_qa

COLUMNS = ("Setting", "Data Source", "Program Type", "Table", "Table-Text",
           "Text", "Total")

_SETTINGS = (
    ("A1", ("table",), ("sql",)),
    ("A2", ("text",), ("sql",)),
    ("A3", ("table", "text"), ("sql",)),
    ("A4", ("table", "text"), ("arith",)),
    ("A5", ("table", "text"), ("sql", "arith")),
    ("A6", ("table", "text", "table-text"), ("sql", "arith")),
)


def run(scale: Scale) -> ExperimentResult:
    bench = benchmark("tatqa", scale)
    dev = list(bench.dev.gold)
    pool = uctr_synthetic("tatqa", scale)
    rows = []
    for name, sources, kinds in _SETTINGS:
        subset = select_subset(pool, sources, kinds)
        if not subset:
            continue
        model = train_qa(TrainingPlan.unsupervised(subset))
        row = {
            "Setting": name,
            "Data Source": "+".join(sources),
            "Program Type": "+".join(kinds),
        }
        for column, evidence in (
            ("Table", EvidenceType.TABLE),
            ("Table-Text", EvidenceType.TABLE_TEXT),
            ("Text", EvidenceType.TEXT),
        ):
            scores = evaluate_qa(
                model, [s for s in dev if s.evidence_type is evidence]
            )
            row[column] = em_f1(scores.em, scores.f1)
        total = evaluate_qa(model, dev)
        row["Total"] = em_f1(total.em, total.f1)
        rows.append(row)
    return ExperimentResult(
        experiment="table8",
        title="Table VIII: ablations on the development set of TAT-QA",
        columns=COLUMNS,
        rows=tuple(rows),
        notes=f"pool of {len(pool)} UCTR synthetic samples",
    )


def select_subset(
    pool: list[ReasoningSample],
    sources: tuple[str, ...],
    kinds: tuple[str, ...],
) -> list[ReasoningSample]:
    """Filter the synthetic pool by evidence source and program kind."""
    wanted_sources = set(sources)
    wanted_kinds = set(kinds)
    return [
        sample
        for sample in pool
        if sample.evidence_type.value in wanted_sources
        and sample.provenance.get("program_kind") in wanted_kinds
    ]
