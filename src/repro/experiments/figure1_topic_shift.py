"""Figure 1 — performance degrades on topics unseen during training.

Chemmengath et al.'s motivating observation, reproduced on the
WikiSQL-like benchmark: for each topic, compare a model trained on all
topics against a model trained with that topic held out, both evaluated
on the held-out topic's dev questions.
"""

from __future__ import annotations

from repro.datasets import naming
from repro.experiments.config import ExperimentResult, Scale, benchmark
from repro.pipelines.samples import ReasoningSample
from repro.train import TrainingPlan, evaluate_qa, train_qa

COLUMNS = ("Topic", "Seen-topic Acc", "Unseen-topic Acc", "Drop")


def run(scale: Scale, topics: tuple[str, ...] | None = None) -> ExperimentResult:
    bench = benchmark("wikisql", scale)
    gold_train = list(bench.train.gold)
    dev = list(bench.dev.gold)
    topics = topics or tuple(naming.WIKI_TOPICS[:3])
    full_model = train_qa(TrainingPlan.supervised(gold_train))
    rows = []
    for topic in topics:
        eval_set = [s for s in dev if _topic(s) == topic]
        if len(eval_set) < 5:
            continue
        held_out_train = [s for s in gold_train if _topic(s) != topic]
        if not held_out_train:
            continue
        held_out_model = train_qa(TrainingPlan.supervised(held_out_train))
        seen = evaluate_qa(full_model, eval_set).denotation
        unseen = evaluate_qa(held_out_model, eval_set).denotation
        rows.append(
            {
                "Topic": topic,
                "Seen-topic Acc": seen,
                "Unseen-topic Acc": unseen,
                "Drop": seen - unseen,
            }
        )
    return ExperimentResult(
        experiment="figure1",
        title="Figure 1: topic-shift degradation on WikiSQL-like QA",
        columns=COLUMNS,
        rows=tuple(rows),
        notes="Seen = trained on all topics; Unseen = topic held out of training",
    )


def _topic(sample: ReasoningSample) -> str:
    return str(sample.context.meta.get("topic", ""))
