"""Table III — results on the development set of TAT-QA.

Rows (mirroring the paper):

* Supervised: Text-Span only, Table-Cell only, TAGOP.
* Unsupervised: MQA-QG, UCTR w/o T2T, UCTR.
* Few-shot: TAGOP (50 labels), TAGOP + UCTR.

Columns: EM/F1 per evidence type (Table, Table-Text, Text) and Total.
"""

from __future__ import annotations

from repro.eval.report import em_f1
from repro.experiments.config import (
    ExperimentResult,
    Scale,
    benchmark,
    mqaqg_synthetic,
    uctr_synthetic,
)
from repro.models.qa import QAConfig
from repro.pipelines.samples import EvidenceType, ReasoningSample
from repro.train import TrainingPlan, evaluate_qa, few_shot_subset, train_qa

COLUMNS = ("Setting", "Model", "Table", "Table-Text", "Text", "Total")

_EVIDENCE_ORDER = (
    ("Table", EvidenceType.TABLE),
    ("Table-Text", EvidenceType.TABLE_TEXT),
    ("Text", EvidenceType.TEXT),
)


def run(scale: Scale) -> ExperimentResult:
    bench = benchmark("tatqa", scale)
    gold_train = list(bench.train.gold)
    dev = list(bench.dev.gold)
    synthetic = uctr_synthetic("tatqa", scale)
    synthetic_flat = uctr_synthetic("tatqa", scale, variant="no_t2t")
    mqaqg = mqaqg_synthetic("tatqa", scale)
    shots = few_shot_subset(gold_train, k=scale.fewshot_k, seed=scale.seed)

    models = [
        ("Supervised", "Text-Span only",
         train_qa(TrainingPlan.supervised(gold_train),
                  QAConfig(answer_source="text"))),
        ("Supervised", "Table-Cell only",
         train_qa(TrainingPlan.supervised(gold_train),
                  QAConfig(answer_source="table"))),
        ("Supervised", "TAGOP",
         train_qa(TrainingPlan.supervised(gold_train))),
        ("Unsupervised", "MQA-QG",
         train_qa(TrainingPlan.unsupervised(mqaqg))),
        ("Unsupervised", "UCTR -w/o T2T",
         train_qa(TrainingPlan.unsupervised(synthetic_flat))),
        ("Unsupervised", "UCTR",
         train_qa(TrainingPlan.unsupervised(synthetic))),
        ("Few-Shot", "TAGOP",
         train_qa(TrainingPlan.supervised(shots))),
        ("Few-Shot", "TAGOP+UCTR",
         train_qa(TrainingPlan.few_shot(synthetic, shots))),
    ]
    rows = [
        _evaluate_row(setting, label, model, dev)
        for setting, label, model in models
    ]
    return ExperimentResult(
        experiment="table3",
        title="Table III: results on the development set of TAT-QA (EM / F1)",
        columns=COLUMNS,
        rows=tuple(rows),
        notes=f"{len(gold_train)} gold train, {len(synthetic)} UCTR synthetic, "
              f"{scale.fewshot_k}-shot",
    )


def _evaluate_row(
    setting: str, label: str, model, dev: list[ReasoningSample]
) -> dict[str, str]:
    row: dict[str, str] = {"Setting": setting, "Model": label}
    for column, evidence_type in _EVIDENCE_ORDER:
        subset = [s for s in dev if s.evidence_type is evidence_type]
        scores = evaluate_qa(model, subset)
        row[column] = em_f1(scores.em, scores.f1)
    total = evaluate_qa(model, dev)
    row["Total"] = em_f1(total.em, total.f1)
    return row
