"""Table IV — results on FEVEROUS.

Rows: Sentence-only / Table-only / Full supervised baselines;
Random / MQA-QG / UCTR unsupervised; Full few-shot and few-shot + UCTR.
Metrics: dev label accuracy (gold evidence) and the strict FEVEROUS
score on dev and test with the simulated retriever.
"""

from __future__ import annotations

from repro.eval.feverous_score import feverous_score
from repro.experiments.config import (
    ExperimentResult,
    Scale,
    benchmark,
    mqaqg_synthetic,
    uctr_synthetic,
)
from repro.models.baselines import RandomVerifier
from repro.pipelines.samples import EvidenceType, ReasoningSample
from repro.train import TrainingPlan, few_shot_subset, train_verifier

COLUMNS = ("Setting", "Model", "Dev Accuracy", "Dev FEVEROUS Score",
           "Test FEVEROUS Score")


def run(scale: Scale) -> ExperimentResult:
    bench = benchmark("feverous", scale)
    gold_train = [s for s in bench.train.gold if s.label is not None]
    dev = [s for s in bench.dev.gold if s.label is not None]
    test = [s for s in bench.test.gold if s.label is not None]
    synthetic = uctr_synthetic("feverous", scale)
    mqaqg = mqaqg_synthetic("feverous", scale)
    shots = few_shot_subset(gold_train, k=scale.fewshot_k, seed=scale.seed)

    sentence_only = [
        s for s in gold_train if s.evidence_type is EvidenceType.TEXT
    ]
    table_only = [
        s for s in gold_train if s.evidence_type is EvidenceType.TABLE
    ]

    models = [
        ("Supervised", "Sentence-only baseline",
         train_verifier(TrainingPlan.supervised(sentence_only))),
        ("Supervised", "Table-only baseline",
         train_verifier(TrainingPlan.supervised(table_only))),
        ("Supervised", "Full baseline",
         train_verifier(TrainingPlan.supervised(gold_train))),
        ("Unsupervised", "Random", RandomVerifier(seed=scale.seed)),
        ("Unsupervised", "MQA-QG",
         train_verifier(TrainingPlan.unsupervised(mqaqg))),
        ("Unsupervised", "UCTR",
         train_verifier(TrainingPlan.unsupervised(synthetic))),
        ("Few-Shot", "Full baseline",
         train_verifier(TrainingPlan.supervised(shots))),
        ("Few-Shot", "Full baseline+UCTR",
         train_verifier(TrainingPlan.few_shot(synthetic, shots))),
    ]
    rows = []
    for setting, label, model in models:
        rows.append(
            {
                "Setting": setting,
                "Model": label,
                "Dev Accuracy": _accuracy(model, dev),
                "Dev FEVEROUS Score": _score(model, dev),
                "Test FEVEROUS Score": _score(model, test),
            }
        )
    return ExperimentResult(
        experiment="table4",
        title="Table IV: results on FEVEROUS",
        columns=COLUMNS,
        rows=tuple(rows),
        notes=f"{len(gold_train)} gold train, {len(synthetic)} UCTR synthetic",
    )


def _accuracy(model, samples: list[ReasoningSample]) -> float:
    predictions = model.predict(samples)
    hits = sum(1 for s, p in zip(samples, predictions) if s.label == p)
    return 100.0 * hits / len(samples) if samples else 0.0


def _score(model, samples: list[ReasoningSample]) -> float:
    predictions = model.predict(samples)
    return feverous_score(samples, predictions)
