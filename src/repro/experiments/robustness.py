"""Robustness ablation — messy tables, sanitization, and training data.

Beyond the paper: how does a model trained on UCTR synthetic data cope
when the *evaluation* tables are messy (heavy corruption from
:mod:`repro.messy`), and how much does each mitigation recover?

Two mitigations are crossed:

* **Serve-side sanitization** — the dev tables are repaired with
  :func:`repro.sanitize.sanitize_samples` before prediction
  (columns "Perturbed" vs "Perturbed+Sanitized").
* **Train-on-messy** — the synthetic training corpus itself is
  generated over perturbed contexts (``uctr_synthetic`` variant
  "perturbed"), so the model has seen currency noise, footnotes and
  shuffled columns during training (rows "UCTR" vs "UCTR-perturbed").

One QA benchmark (TAT-QA, metric EM) and one verification benchmark
(SEM-TAB-FACTS, metric accuracy) keep the table small; the committed
robustness benchmark (``benchmarks/test_robustness.py``) sweeps all
four.
"""

from __future__ import annotations

from repro.experiments.config import (
    ExperimentResult,
    Scale,
    benchmark,
    uctr_synthetic,
)
from repro.messy import perturb_samples
from repro.sanitize import sanitize_samples
from repro.train import (
    TrainingPlan,
    evaluate_qa,
    evaluate_verifier,
    train_qa,
    train_verifier,
)

COLUMNS = (
    "Benchmark", "Training", "Clean", "Perturbed", "Perturbed+Sanitized"
)

_PERTURB_KEY = "experiments-robustness"


def _qa_rows(scale: Scale) -> list[dict[str, str]]:
    bench = benchmark("tatqa", scale)
    dev = list(bench.dev.gold)
    perturbed = perturb_samples(dev, f"{_PERTURB_KEY}:tatqa", "heavy")
    sanitized, _ = sanitize_samples(perturbed)
    rows = []
    for label, variant in (("UCTR", "full"), ("UCTR-perturbed", "perturbed")):
        model = train_qa(
            TrainingPlan.unsupervised(uctr_synthetic("tatqa", scale, variant))
        )
        rows.append({
            "Benchmark": "TAT-QA (EM)",
            "Training": label,
            "Clean": f"{evaluate_qa(model, dev).em:.1f}",
            "Perturbed": f"{evaluate_qa(model, perturbed).em:.1f}",
            "Perturbed+Sanitized":
                f"{evaluate_qa(model, sanitized).em:.1f}",
        })
    return rows


def _verify_rows(scale: Scale) -> list[dict[str, str]]:
    bench = benchmark("semtabfacts", scale)
    dev = list(bench.dev.gold)
    perturbed = perturb_samples(dev, f"{_PERTURB_KEY}:semtabfacts", "heavy")
    sanitized, _ = sanitize_samples(perturbed)
    rows = []
    for label, variant in (("UCTR", "full"), ("UCTR-perturbed", "perturbed")):
        model = train_verifier(
            TrainingPlan.unsupervised(
                uctr_synthetic("semtabfacts", scale, variant)
            )
        )
        rows.append({
            "Benchmark": "SEM-TAB-FACTS (Acc)",
            "Training": label,
            "Clean": f"{evaluate_verifier(model, dev).accuracy:.1f}",
            "Perturbed":
                f"{evaluate_verifier(model, perturbed).accuracy:.1f}",
            "Perturbed+Sanitized":
                f"{evaluate_verifier(model, sanitized).accuracy:.1f}",
        })
    return rows


def run(scale: Scale) -> ExperimentResult:
    rows = _qa_rows(scale) + _verify_rows(scale)
    return ExperimentResult(
        experiment="robustness",
        title=(
            "Robustness: train-on-clean vs train-on-perturbed under "
            "messy evaluation tables"
        ),
        columns=COLUMNS,
        rows=tuple(rows),
        notes=(
            'dev tables corrupted with the "heavy" profile; sanitized '
            "column repairs them with repro.sanitize before prediction"
        ),
    )
