"""Ablation (paper future work): fixed template pool vs auto-generated
programs.

The paper's future work proposes replacing hand-collected template
pools with automatic program generation.  We compare three unsupervised
FEVEROUS configurations:

* **Template pool** — the standard Logic2Text-style pool.
* **Auto-generated** — templates induced by the random well-typed
  program synthesizer (:mod:`repro.programs.logic.generator`).
* **Pool + auto** — the union.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentResult, Scale, benchmark
from repro.pipelines import UCTR, UCTRConfig
from repro.programs.base import ProgramKind
from repro.programs.logic.generator import AutoGenConfig, AutoProgramGenerator
from repro.rng import make_rng
from repro.templates.pools import logic2text_pool
from repro.train import TrainingPlan, evaluate_verifier, train_verifier

COLUMNS = ("Templates", "Pool size", "Synthetic samples", "Dev Accuracy")


def run(scale: Scale) -> ExperimentResult:
    bench = benchmark("feverous", scale)
    contexts = list(bench.train.contexts)
    dev = [s for s in bench.dev.gold if s.label is not None]
    pool = list(logic2text_pool())

    generator = AutoProgramGenerator(
        rng=make_rng(scale.seed),
        config=AutoGenConfig(
            shape_weights=AutoProgramGenerator.shape_weights_from_pool(pool)
        ),
    )
    mining_tables = [context.table for context in contexts[:30]]
    auto_templates = generator.induce_templates(mining_tables, per_table=6)

    variants = [
        ("template pool", pool),
        ("auto-generated", auto_templates),
        ("pool + auto", pool + auto_templates),
    ]
    rows = []
    for label, templates in variants:
        if not templates:
            continue
        framework = UCTR(
            UCTRConfig(
                program_kinds=("logic",),
                samples_per_context=scale.synth_per_context,
                seed=scale.seed,
            ),
            template_overrides={ProgramKind.LOGIC: templates},
        )
        framework.fit(contexts)
        synthetic = framework.generate(contexts)
        model = train_verifier(TrainingPlan.unsupervised(synthetic))
        rows.append(
            {
                "Templates": label,
                "Pool size": len(templates),
                "Synthetic samples": len(synthetic),
                "Dev Accuracy": evaluate_verifier(model, dev).accuracy,
            }
        )
    return ExperimentResult(
        experiment="ablation_autogen",
        title="Ablation: template pool vs auto-generated programs (FEVEROUS)",
        columns=COLUMNS,
        rows=tuple(rows),
        notes="auto programs are sampled with the pool's shape "
              "distribution (the paper's 'based on the existing data "
              "distributions')",
    )
