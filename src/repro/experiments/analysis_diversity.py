"""Analysis (paper Section V-F flavor): diversity of generated data.

Compares the UCTR synthetic corpus against MQA-QG's on reasoning-type
coverage, lexical diversity, and evidence complexity.  The paper's
qualitative claim — UCTR covers many reasoning types with multi-cell
evidence, MQA-QG only single-cell lookups — becomes measurable here.
"""

from __future__ import annotations

from repro.eval.diversity import diversity_report
from repro.experiments.config import (
    ExperimentResult,
    Scale,
    mqaqg_synthetic,
    uctr_synthetic,
)

COLUMNS = ("Generator", "Samples", "Distinct-1", "Distinct-2", "Categories",
           "Category entropy", "Patterns", "Evidence cells/sample")


def run(scale: Scale, benchmark_name: str = "feverous") -> ExperimentResult:
    uctr = diversity_report(uctr_synthetic(benchmark_name, scale))
    mqaqg = diversity_report(mqaqg_synthetic(benchmark_name, scale))
    rows = [
        {"Generator": "UCTR", **uctr.as_row()},
        {"Generator": "MQA-QG", **mqaqg.as_row()},
    ]
    return ExperimentResult(
        experiment="analysis_diversity",
        title=f"Analysis: synthetic-data diversity on {benchmark_name}",
        columns=COLUMNS,
        rows=tuple(rows),
        notes="category entropy in bits; evidence cells measure reasoning depth",
    )
