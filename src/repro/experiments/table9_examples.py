"""Table IX — example generations from the three program types.

For each DSL we sample a program, show the trained NL-Generator's
output next to the "golden" annotator-style phrasing, mirroring the
paper's qualitative comparison.
"""

from __future__ import annotations

from repro.datasets.humanize import realize_human
from repro.experiments.config import ExperimentResult, Scale, benchmark
from repro.pipelines import UCTR, UCTRConfig
from repro.programs.base import ProgramKind
from repro.rng import make_rng
from repro.sampling.filters import default_filters, passes_all
from repro.sampling.sampler import ProgramSampler
from repro.templates.pools import pool_for_kind

COLUMNS = ("Type", "Program", "Generated Text", "Golden Text")

_KIND_BENCH = (
    (ProgramKind.SQL, "wikisql", "SQL Query"),
    (ProgramKind.LOGIC, "feverous", "Logical Form"),
    (ProgramKind.ARITH, "tatqa", "Arithmetic Expression"),
)


def run(scale: Scale) -> ExperimentResult:
    rng = make_rng(scale.seed)
    rows = []
    for kind, bench_name, label in _KIND_BENCH:
        bench = benchmark(bench_name, scale)
        contexts = list(bench.train.contexts)
        framework = UCTR(
            UCTRConfig(program_kinds=(kind.value,), seed=scale.seed)
        )
        framework.fit(contexts)
        generator = framework.generators[kind]
        sampler = ProgramSampler(rng)
        filters = default_filters()
        example = None
        for context in contexts:
            for template in pool_for_kind(kind):
                sampled = sampler.try_sample(template, context.table)
                if sampled is not None and passes_all(sampled, filters):
                    example = sampled
                    break
            if example is not None:
                break
        if example is None:
            continue
        rows.append(
            {
                "Type": label,
                "Program": example.program.source,
                "Generated Text": generator.generate(example, rng),
                "Golden Text": realize_human(example, rng),
            }
        )
    return ExperimentResult(
        experiment="table9",
        title="Table IX: generated text from different types of programs",
        columns=COLUMNS,
        rows=tuple(rows),
    )
