"""Table II — dataset statistics of the four (synthetic) benchmarks."""

from __future__ import annotations

from repro.datasets.statistics import benchmark_statistics
from repro.experiments.config import ExperimentResult, Scale, benchmark

COLUMNS = (
    "Dataset",
    "Domain",
    "Total Samples",
    "Tables",
    "Evidence Types",
    "Label/Question Types",
)


def run(scale: Scale) -> ExperimentResult:
    rows = []
    for name in ("feverous", "tatqa", "wikisql", "semtabfacts"):
        stats = benchmark_statistics(benchmark(name, scale))
        rows.append(
            {
                "Dataset": stats.name,
                "Domain": stats.domain,
                "Total Samples": stats.total_samples,
                "Tables": stats.n_tables,
                "Evidence Types": _fmt_counts(stats.evidence_counts),
                "Label/Question Types": _fmt_counts(
                    stats.label_counts or stats.question_type_counts, top=4
                ),
            }
        )
    return ExperimentResult(
        experiment="table2",
        title="Table II: dataset statistics (synthetic stand-ins)",
        columns=COLUMNS,
        rows=tuple(rows),
    )


def _fmt_counts(counts: dict[str, int], top: int | None = None) -> str:
    items = sorted(counts.items(), key=lambda pair: -pair[1])
    if top is not None:
        items = items[:top]
    return ", ".join(f"{count} {name}" for name, count in items)
