"""Table V — results on SEM-TAB-FACTS (3-way micro F1, dev and test).

Rows: TAPAS supervised; Random / MQA-QG / TAPAS-Transfer / UCTR
unsupervised; TAPAS few-shot and few-shot + UCTR.  TAPAS-Transfer
trains on the FEVEROUS-like (general-domain, 2-way) gold data and is
applied to the science benchmark directly, reproducing the label-gap
handicap the paper discusses.
"""

from __future__ import annotations

from repro.eval.metrics import micro_f1
from repro.experiments.config import (
    ExperimentResult,
    Scale,
    benchmark,
    mqaqg_synthetic,
    uctr_synthetic,
)
from repro.models.baselines import RandomVerifier, transfer_verifier
from repro.models.verifier import VerifierConfig
from repro.pipelines.samples import ReasoningSample
from repro.train import TrainingPlan, few_shot_subset, train_verifier

COLUMNS = ("Setting", "Model", "Dev micro-F1", "Test micro-F1")

_THREE_WAY = VerifierConfig(three_way=True)


def run(scale: Scale) -> ExperimentResult:
    bench = benchmark("semtabfacts", scale)
    gold_train = [s for s in bench.train.gold if s.label is not None]
    dev = [s for s in bench.dev.gold if s.label is not None]
    test = [s for s in bench.test.gold if s.label is not None]
    synthetic = uctr_synthetic("semtabfacts", scale)
    mqaqg = mqaqg_synthetic("semtabfacts", scale)
    shots = few_shot_subset(gold_train, k=scale.fewshot_k, seed=scale.seed)

    # TAPAS-Transfer trains on the TABFACT-like corpus (general-domain,
    # table-only, 2-way), exactly the paper's transfer source.
    general = benchmark("tabfact", scale)
    transfer_source = [s for s in general.train.gold if s.label is not None]

    models = [
        ("Supervised", "TAPAS",
         train_verifier(TrainingPlan.supervised(gold_train), _THREE_WAY)),
        ("Unsupervised", "Random", RandomVerifier(three_way=True, seed=scale.seed)),
        ("Unsupervised", "MQA-QG",
         train_verifier(TrainingPlan.unsupervised(mqaqg), _THREE_WAY)),
        ("Unsupervised", "TAPAS-Transfer",
         transfer_verifier(transfer_source, three_way=True, seed=scale.seed)),
        ("Unsupervised", "UCTR",
         train_verifier(TrainingPlan.unsupervised(synthetic), _THREE_WAY)),
        ("Few-Shot", "TAPAS",
         train_verifier(TrainingPlan.supervised(shots), _THREE_WAY)),
        ("Few-Shot", "TAPAS+UCTR",
         train_verifier(TrainingPlan.few_shot(synthetic, shots), _THREE_WAY)),
    ]
    rows = []
    for setting, label, model in models:
        rows.append(
            {
                "Setting": setting,
                "Model": label,
                "Dev micro-F1": _micro(model, dev),
                "Test micro-F1": _micro(model, test),
            }
        )
    return ExperimentResult(
        experiment="table5",
        title="Table V: results on SEM-TAB-FACTS (3-way micro F1)",
        columns=COLUMNS,
        rows=tuple(rows),
        notes=f"{len(gold_train)} gold train, {len(synthetic)} UCTR synthetic",
    )


def _micro(model, samples: list[ReasoningSample]) -> float:
    predictions = model.predict(samples)
    golds = [s.label for s in samples]
    return micro_f1(predictions, golds)
