"""Table VI — results on WikiSQL (denotation accuracy, dev and test).

Rows: TAPAS / TAPEX supervised; zero-shot TAPEX, MQA-QG, UCTR
unsupervised; TAPEX few-shot and few-shot + UCTR.  "Zero-shot TAPEX" is
the untrained scorer falling back to lexical-overlap heuristics — the
analogue of applying the released tapex-base checkpoint off the shelf.
"""

from __future__ import annotations

from repro.experiments.config import (
    ExperimentResult,
    Scale,
    benchmark,
    mqaqg_synthetic,
    uctr_synthetic,
)
from repro.models.qa import QAConfig, TagOpQA
from repro.pipelines.samples import ReasoningSample
from repro.train import TrainingPlan, evaluate_qa, few_shot_subset, train_qa

COLUMNS = ("Setting", "Model", "Dev Denotation Acc", "Test Denotation Acc")


def run(scale: Scale) -> ExperimentResult:
    bench = benchmark("wikisql", scale)
    gold_train = list(bench.train.gold)
    dev = list(bench.dev.gold)
    test = list(bench.test.gold)
    synthetic = uctr_synthetic("wikisql", scale)
    mqaqg = mqaqg_synthetic("wikisql", scale)
    shots = few_shot_subset(gold_train, k=scale.fewshot_k, seed=scale.seed)

    # A weaker supervised configuration stands in for TAPAS (the paper's
    # second-best supervised model): a narrower scorer trained shorter.
    tapas_config = QAConfig(hidden_dims=(16,), epochs=10, seed=scale.seed + 1)

    models = [
        ("Supervised", "TAPAS",
         train_qa(TrainingPlan.supervised(gold_train), tapas_config)),
        ("Supervised", "TAPEX",
         train_qa(TrainingPlan.supervised(gold_train))),
        ("Unsupervised", "TAPEX (zero-shot)", TagOpQA()),
        ("Unsupervised", "MQA-QG",
         train_qa(TrainingPlan.unsupervised(mqaqg))),
        ("Unsupervised", "UCTR",
         train_qa(TrainingPlan.unsupervised(synthetic))),
        ("Few-Shot", "TAPEX",
         train_qa(TrainingPlan.supervised(shots))),
        ("Few-Shot", "TAPEX+UCTR",
         train_qa(TrainingPlan.few_shot(synthetic, shots))),
    ]
    rows = []
    for setting, label, model in models:
        rows.append(
            {
                "Setting": setting,
                "Model": label,
                "Dev Denotation Acc": evaluate_qa(model, dev).denotation,
                "Test Denotation Acc": evaluate_qa(model, test).denotation,
            }
        )
    return ExperimentResult(
        experiment="table6",
        title="Table VI: results on WikiSQL (denotation accuracy)",
        columns=COLUMNS,
        rows=tuple(rows),
        notes=f"{len(gold_train)} gold train, {len(synthetic)} UCTR synthetic",
    )
