"""Run every experiment and render the full report.

Usage::

    python -m repro.experiments.runner [--scale smoke|paper]
        [--only table3] [--workers N] [--report report.json]
        [--validate]

``--workers`` parallelizes UCTR synthetic-data generation inside the
experiments (results are identical for any worker count); ``--report``
writes the merged generation telemetry of the whole run as a JSON
run-report.  ``--validate`` runs the semantic re-execution gate over
every synthetic corpus the experiments generated, prints a per-corpus
verdict line, and folds the counters into the ``--report`` validation
section (schema v4); the run exits non-zero if any corpus carries stale
or unexecutable samples.  A per-benchmark generation summary is printed
after the experiment tables — see EXPERIMENTS.md ("Reading the
telemetry") for how to interpret it.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from typing import Callable

from repro.experiments import PAPER, SMOKE, ExperimentResult, Scale
from repro.experiments import (  # noqa: F401 (registry imports)
    ablation_autogen,
    analysis_diversity,
    figure1_topic_shift,
    robustness,
    figure5_data_curve,
    table2_statistics,
    table3_tatqa,
    table4_feverous,
    table5_semtabfacts,
    table6_wikisql,
    table7_augmentation,
    table8_ablation,
    table9_examples,
)
from repro.experiments.config import generation_telemetry, synthetic_corpora
from repro.telemetry import Telemetry, build_report, write_report
from repro.validate import validate_samples

REGISTRY: dict[str, Callable[[Scale], ExperimentResult]] = {
    "table2": table2_statistics.run,
    "table3": table3_tatqa.run,
    "table4": table4_feverous.run,
    "table5": table5_semtabfacts.run,
    "table6": table6_wikisql.run,
    "table7": table7_augmentation.run,
    "table8": table8_ablation.run,
    "table9": table9_examples.run,
    "figure1": figure1_topic_shift.run,
    "figure5": figure5_data_curve.run,
    # extensions beyond the paper's tables
    "diversity": analysis_diversity.run,
    "autogen": ablation_autogen.run,
    "robustness": robustness.run,
}


def run_all(
    scale: Scale, only: list[str] | None = None
) -> dict[str, ExperimentResult]:
    """Execute the selected experiments; returns results by id."""
    names = only or list(REGISTRY)
    results: dict[str, ExperimentResult] = {}
    for name in names:
        if name not in REGISTRY:
            raise KeyError(f"unknown experiment {name!r}")
        results[name] = REGISTRY[name](scale)
    return results


def render_generation_telemetry() -> str:
    """One line per UCTR generation run executed by the experiments."""
    log = generation_telemetry()
    if not log:
        return ""
    lines = ["generation telemetry (per synthetic corpus):"]
    for (benchmark, scale_name, variant), snapshot in sorted(log.items()):
        telemetry = Telemetry.from_snapshot(snapshot)
        attempts = telemetry.count("attempts")
        successes = telemetry.count("successes")
        seconds = telemetry.seconds("generate")
        rate = successes / seconds if seconds > 0 else 0.0
        line = (
            f"  {benchmark}/{variant}@{scale_name}: "
            f"{successes} samples from {attempts} attempts "
            f"({successes / attempts if attempts else 0:.0%} accepted) "
            f"in {seconds:.1f}s ({rate:.0f}/s)"
        )
        quarantined = telemetry.events("quarantine")
        retries = telemetry.count("retries")
        if quarantined or retries:
            line += (
                f" [quarantined={len(quarantined)}, retries={retries}]"
            )
        lines.append(line)
    return "\n".join(lines)


def validate_corpora(telemetry: Telemetry | None = None) -> tuple[str, bool]:
    """Semantic re-execution gate over every generated synthetic corpus.

    Returns ``(rendered per-corpus verdict lines, all_clean)``; counters
    and flagged-sample events fold into ``telemetry`` when provided, so
    they ride into the merged run-report's ``validation`` section.
    """
    corpora = synthetic_corpora()
    if not corpora:
        return "", True
    lines = ["corpus validation (semantic re-execution gate):"]
    all_clean = True
    for (name, scale_name, variant), samples in sorted(corpora.items()):
        summary = validate_samples(samples, telemetry)
        all_clean = all_clean and summary.clean
        lines.append(
            f"  {name}/{variant}@{scale_name}: {summary.render()}"
            + ("" if summary.clean else "  ← FAIL")
        )
    return "\n".join(lines), all_clean


def merged_generation_report(
    scale: Scale, validation: Telemetry | None = None
) -> dict:
    """All generation telemetry of this run folded into one report."""
    merged = Telemetry()
    total = 0
    for snapshot in generation_telemetry().values():
        merged.merge(snapshot)
        total += sum(
            Telemetry.from_snapshot(snapshot).section("emitted").values()
        )
    if validation is not None:
        merged.merge(validation.snapshot())
    return build_report(
        merged,
        seed=scale.seed,
        workers=scale.workers,
        samples_written=total,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("smoke", "paper"), default="paper")
    parser.add_argument("--only", nargs="*", default=None,
                        help="experiment ids (default: all)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for UCTR generation")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write merged generation telemetry as JSON")
    parser.add_argument("--validate", action="store_true",
                        help="re-execute every generated synthetic corpus "
                             "through the semantic gate; exit non-zero on "
                             "stale or unexecutable samples")
    args = parser.parse_args(argv)
    scale = SMOKE if args.scale == "smoke" else PAPER
    if args.workers != 1:
        scale = replace(scale, workers=args.workers)
    started = time.time()
    results = run_all(scale, args.only)
    for name, result in results.items():
        print()
        print(result.render())
    telemetry_text = render_generation_telemetry()
    if telemetry_text:
        print()
        print(telemetry_text)
    all_clean = True
    validation_telemetry: Telemetry | None = None
    if args.validate:
        validation_telemetry = Telemetry()
        validation_text, all_clean = validate_corpora(validation_telemetry)
        if validation_text:
            print()
            print(validation_text)
    if args.report:
        path = write_report(
            args.report,
            merged_generation_report(scale, validation_telemetry),
        )
        print(f"wrote generation report to {path}")
    print(f"\ncompleted {len(results)} experiments in "
          f"{time.time() - started:.1f}s at scale {scale.name!r}")
    return 0 if all_clean else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
