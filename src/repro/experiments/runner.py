"""Run every experiment and render the full report.

Usage::

    python -m repro.experiments.runner [--scale smoke|paper] [--only table3]
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import PAPER, SMOKE, ExperimentResult, Scale
from repro.experiments import (  # noqa: F401 (registry imports)
    ablation_autogen,
    analysis_diversity,
    figure1_topic_shift,
    figure5_data_curve,
    table2_statistics,
    table3_tatqa,
    table4_feverous,
    table5_semtabfacts,
    table6_wikisql,
    table7_augmentation,
    table8_ablation,
    table9_examples,
)

REGISTRY: dict[str, Callable[[Scale], ExperimentResult]] = {
    "table2": table2_statistics.run,
    "table3": table3_tatqa.run,
    "table4": table4_feverous.run,
    "table5": table5_semtabfacts.run,
    "table6": table6_wikisql.run,
    "table7": table7_augmentation.run,
    "table8": table8_ablation.run,
    "table9": table9_examples.run,
    "figure1": figure1_topic_shift.run,
    "figure5": figure5_data_curve.run,
    # extensions beyond the paper's tables
    "diversity": analysis_diversity.run,
    "autogen": ablation_autogen.run,
}


def run_all(
    scale: Scale, only: list[str] | None = None
) -> dict[str, ExperimentResult]:
    """Execute the selected experiments; returns results by id."""
    names = only or list(REGISTRY)
    results: dict[str, ExperimentResult] = {}
    for name in names:
        if name not in REGISTRY:
            raise KeyError(f"unknown experiment {name!r}")
        results[name] = REGISTRY[name](scale)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("smoke", "paper"), default="paper")
    parser.add_argument("--only", nargs="*", default=None,
                        help="experiment ids (default: all)")
    args = parser.parse_args(argv)
    scale = SMOKE if args.scale == "smoke" else PAPER
    started = time.time()
    results = run_all(scale, args.only)
    for name, result in results.items():
        print()
        print(result.render())
    print(f"\ncompleted {len(results)} experiments in "
          f"{time.time() - started:.1f}s at scale {scale.name!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
