"""Table VII — UCTR as a data-augmentation technique.

For each benchmark: the fully supervised baseline vs the same model
pre-trained on UCTR synthetic data and then fine-tuned on the full gold
training set.  The paper's expectation: clear gains on the low-resource
domains (TAT-QA, SEM-TAB-FACTS), roughly neutral on the data-rich ones
(FEVEROUS, WikiSQL).
"""

from __future__ import annotations

from repro.eval.report import em_f1
from repro.experiments.config import (
    ExperimentResult,
    Scale,
    benchmark,
    uctr_synthetic,
)
from repro.models.verifier import VerifierConfig
from repro.train import (
    TrainingPlan,
    evaluate_qa,
    evaluate_verifier,
    train_qa,
    train_verifier,
)

COLUMNS = ("Model", "TAT-QA Dev", "TAT-QA Test", "SEM-TAB-FACTS Dev",
           "SEM-TAB-FACTS Test", "WiKiSQL Dev", "WiKiSQL Test",
           "FEVEROUS Dev")


def run(scale: Scale) -> ExperimentResult:
    rows = {
        "Baseline": {"Model": "Baseline"},
        "Baseline+UCTR": {"Model": "Baseline+UCTR"},
    }
    _tatqa(scale, rows)
    _semtabfacts(scale, rows)
    _wikisql(scale, rows)
    _feverous(scale, rows)
    return ExperimentResult(
        experiment="table7",
        title="Table VII: results of data augmentation",
        columns=COLUMNS,
        rows=(rows["Baseline"], rows["Baseline+UCTR"]),
    )


def _tatqa(scale: Scale, rows) -> None:
    bench = benchmark("tatqa", scale)
    gold = list(bench.train.gold)
    synthetic = uctr_synthetic("tatqa", scale)
    baseline = train_qa(TrainingPlan.supervised(gold))
    augmented = train_qa(TrainingPlan.augmentation(synthetic, gold))
    for split, column in (("dev", "TAT-QA Dev"), ("test", "TAT-QA Test")):
        samples = list(bench.split(split).gold)
        base = evaluate_qa(baseline, samples)
        aug = evaluate_qa(augmented, samples)
        rows["Baseline"][column] = em_f1(base.em, base.f1)
        rows["Baseline+UCTR"][column] = em_f1(aug.em, aug.f1)


def _semtabfacts(scale: Scale, rows) -> None:
    bench = benchmark("semtabfacts", scale)
    gold = [s for s in bench.train.gold if s.label is not None]
    synthetic = uctr_synthetic("semtabfacts", scale)
    config = VerifierConfig(three_way=True)
    baseline = train_verifier(TrainingPlan.supervised(gold), config)
    augmented = train_verifier(TrainingPlan.augmentation(synthetic, gold), config)
    for split, column in (
        ("dev", "SEM-TAB-FACTS Dev"),
        ("test", "SEM-TAB-FACTS Test"),
    ):
        samples = [s for s in bench.split(split).gold if s.label is not None]
        rows["Baseline"][column] = evaluate_verifier(baseline, samples).accuracy
        rows["Baseline+UCTR"][column] = evaluate_verifier(augmented, samples).accuracy


def _wikisql(scale: Scale, rows) -> None:
    bench = benchmark("wikisql", scale)
    gold = list(bench.train.gold)
    synthetic = uctr_synthetic("wikisql", scale)
    baseline = train_qa(TrainingPlan.supervised(gold))
    augmented = train_qa(TrainingPlan.augmentation(synthetic, gold))
    for split, column in (("dev", "WiKiSQL Dev"), ("test", "WiKiSQL Test")):
        samples = list(bench.split(split).gold)
        rows["Baseline"][column] = evaluate_qa(baseline, samples).denotation
        rows["Baseline+UCTR"][column] = evaluate_qa(augmented, samples).denotation


def _feverous(scale: Scale, rows) -> None:
    bench = benchmark("feverous", scale)
    gold = [s for s in bench.train.gold if s.label is not None]
    synthetic = uctr_synthetic("feverous", scale)
    baseline = train_verifier(TrainingPlan.supervised(gold))
    augmented = train_verifier(TrainingPlan.augmentation(synthetic, gold))
    dev = [s for s in bench.dev.gold if s.label is not None]
    rows["Baseline"]["FEVEROUS Dev"] = evaluate_verifier(baseline, dev).accuracy
    rows["Baseline+UCTR"]["FEVEROUS Dev"] = evaluate_verifier(augmented, dev).accuracy
