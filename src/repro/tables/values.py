"""Typed cell values and type inference.

Real-world tables store everything as strings; reasoning programs need
numbers.  This module is the boundary between the two worlds: it parses
raw cell strings into typed :class:`Value` objects and infers column
types by unanimity over non-null cells (a column is numeric only when
*every* non-null cell parses as a number), the same pragmatics
SQUALL-style template placeholders rely on (``c2_number`` means
"column 2, numeric").

Hot-path caching
----------------
``Value`` objects are immutable, so every derived quantity is a pure
function of ``(raw, type, typed)`` and can be memoized on the instance:
the numeric coercion of ``raw`` (one regex run per value instead of one
per comparison), the sort key, and the canonical distinct-count key.
:func:`parse_value` additionally runs behind a bounded LRU keyed on the
raw string.  None of this consumes randomness or changes any result, so
cached and cache-free execution are byte-identical.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from functools import lru_cache
from enum import Enum
from typing import Any

from repro.errors import ValueParseError


class ValueType(str, Enum):
    """Runtime type of a table cell."""

    NUMBER = "number"
    TEXT = "text"
    DATE = "date"
    BOOL = "bool"
    NULL = "null"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_NUMBER_RE = re.compile(
    r"""^\s*
        (?P<sign>[-+])?
        (?P<currency>[$€£¥])?
        (?P<body>\d{1,3}(?:,\d{3})+(?:\.\d+)?|\d+(?:\.\d+)?|\.\d+)
        \s*(?P<percent>%)?
        \s*$""",
    re.VERBOSE,
)

#: accounting negatives: "(1,200)" means -1200.  The inner part must not
#: carry its own sign — "(-5)" is not an accounting convention and would
#: otherwise double-negate.
_PAREN_NEGATIVE_RE = re.compile(r"^\s*\(\s*(?P<inner>[^()+-][^()]*)\)\s*$")

_DATE_RE = re.compile(
    r"""^\s*(?P<year>\d{4})-(?P<month>\d{1,2})-(?P<day>\d{1,2})\s*$"""
    r"""|^\s*(?P<month2>january|february|march|april|may|june|july|august|"""
    r"""september|october|november|december)\s+(?P<day2>\d{1,2}),?\s+"""
    r"""(?P<year2>\d{4})\s*$""",
    re.VERBOSE | re.IGNORECASE,
)

_MONTHS = {
    name: index
    for index, name in enumerate(
        (
            "january february march april may june july august "
            "september october november december"
        ).split(),
        start=1,
    )
}

_DAYS_IN_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)

_BOOL_WORDS = {"true": True, "yes": True, "false": False, "no": False}

_NULL_WORDS = {"", "-", "--", "n/a", "na", "none", "null", "nil"}

#: sentinel for "not computed yet" in the per-instance memo slots
#: (``None`` is a real cached outcome for numeric coercion).
_UNSET = object()


@dataclass(frozen=True, order=False)
class Value:
    """A typed, comparable table cell.

    ``raw`` preserves the original surface string so generated sentences
    can quote the table verbatim; ``typed`` carries the parsed payload
    (float for numbers, ``(y, m, d)`` tuple for dates, bool, or the
    normalized string).

    Derived quantities (numeric coercion, sort key, canonical key) are
    memoized lazily on the instance — safe because the dataclass is
    frozen and the memo slots are not dataclass fields, so ``==``,
    ``hash``, ``repr``, and pickling semantics are unaffected.
    """

    raw: str
    type: ValueType
    typed: Any

    # -- constructors ---------------------------------------------------
    @staticmethod
    def number(value: float, raw: str | None = None) -> "Value":
        """Build a numeric value, defaulting ``raw`` to a compact repr."""
        if raw is None:
            raw = format_number(value)
        return Value(raw=raw, type=ValueType.NUMBER, typed=float(value))

    @staticmethod
    def text(value: str) -> "Value":
        return Value(raw=value, type=ValueType.TEXT, typed=value.strip())

    @staticmethod
    def date(year: int, month: int, day: int, raw: str | None = None) -> "Value":
        if raw is None:
            raw = f"{year:04d}-{month:02d}-{day:02d}"
        return Value(raw=raw, type=ValueType.DATE, typed=(year, month, day))

    @staticmethod
    def boolean(value: bool, raw: str | None = None) -> "Value":
        if raw is None:
            raw = "true" if value else "false"
        return Value(raw=raw, type=ValueType.BOOL, typed=bool(value))

    @staticmethod
    def null(raw: str = "") -> "Value":
        return Value(raw=raw, type=ValueType.NULL, typed=None)

    # -- predicates ------------------------------------------------------
    @property
    def is_null(self) -> bool:
        return self.type is ValueType.NULL

    @property
    def is_number(self) -> bool:
        return self.type is ValueType.NUMBER

    def as_number(self) -> float:
        """Return the numeric payload, parsing text lazily if needed."""
        if self.type is ValueType.NUMBER:
            return float(self.typed)
        if self.type is ValueType.DATE:
            year, month, day = self.typed
            return year * 10000 + month * 100 + day
        if self.type is ValueType.BOOL:
            return 1.0 if self.typed else 0.0
        parsed = self._coerced()
        if parsed is None:
            raise ValueParseError(f"value {self.raw!r} is not numeric")
        return parsed

    # -- memoized derived quantities -------------------------------------
    def _coerced(self) -> float | None:
        """:func:`coerce_number` of ``raw``, computed at most once."""
        cached = self.__dict__.get("_coerced_memo", _UNSET)
        if cached is _UNSET:
            cached = coerce_number(self.raw)
            object.__setattr__(self, "_coerced_memo", cached)
        return cached

    # -- comparisons -----------------------------------------------------
    def _key(self) -> tuple:
        """Sort key: group by type, order within type (memoized)."""
        cached = self.__dict__.get("_key_memo")
        if cached is None:
            if self.type is ValueType.NULL:
                cached = (0, 0)
            elif self.type in (ValueType.NUMBER, ValueType.BOOL, ValueType.DATE):
                cached = (1, self.as_number())
            else:
                cached = (2, self.typed.lower())
            object.__setattr__(self, "_key_memo", cached)
        return cached

    def canonical_key(self) -> tuple:
        """The equivalence-class key consistent with :meth:`equals`.

        Two non-null values are ``equals`` exactly when their canonical
        keys match (modulo float tolerance): typed payload for dates and
        booleans, the coerced number when the surface form is numeric
        (so ``"1,000"``, ``"1000"``, and ``"$1,000"`` share one key),
        case-folded text otherwise.  ``COUNT(DISTINCT …)`` and
        :meth:`~repro.tables.table.Table.distinct_values` key on this.

        The key is a pure function of the frozen ``(raw, type,
        typed)`` fields — the contract that lets the columnar engine
        (:mod:`repro.tables.columnar`) cache per-column key arrays
        without any determinism risk.
        """
        cached = self.__dict__.get("_canonical_memo")
        if cached is None:
            if self.type is ValueType.DATE:
                cached = ("date", self.typed)
            elif self.type is ValueType.BOOL:
                cached = ("bool", self.typed)
            elif self.type is ValueType.NULL:
                cached = ("null",)
            else:
                number = self._coerced()
                if number is not None:
                    cached = ("num", number)
                else:
                    cached = ("text", self.raw.strip().lower())
            object.__setattr__(self, "_canonical_memo", cached)
        return cached

    def __lt__(self, other: "Value") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "Value") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "Value") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "Value") -> bool:
        return self._key() >= other._key()

    def equals(self, other: "Value") -> bool:
        """Semantic equality: typed for dates/booleans, numeric when both
        sides coerce to numbers, case-folded text otherwise."""
        if self.is_null or other.is_null:
            return self.is_null and other.is_null
        if self.type is ValueType.DATE and other.type is ValueType.DATE:
            return self.typed == other.typed
        if self.type is ValueType.BOOL and other.type is ValueType.BOOL:
            return self.typed == other.typed
        self_num = self._coerced()
        other_num = other._coerced()
        if self_num is not None and other_num is not None:
            return math.isclose(self_num, other_num, rel_tol=1e-9, abs_tol=1e-9)
        return self.raw.strip().lower() == other.raw.strip().lower()

    def __str__(self) -> str:
        return self.raw


def format_number(value: float) -> str:
    """Render a float compactly and re-parseably.

    Integers drop the trailing ``.0``; other values use positional
    notation with up to six significant digits (never scientific
    notation, which :func:`coerce_number` does not read).  Magnitudes
    below 1e-9 collapse to ``0``.
    """
    if not math.isfinite(value):
        return f"{value:g}"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    if abs(value) < 1e-9:
        return "0"
    magnitude = math.floor(math.log10(abs(value)))
    decimals = max(0, 5 - magnitude)
    rendered = f"{value:.{decimals}f}"
    if "." in rendered:
        rendered = rendered.rstrip("0").rstrip(".")
    return rendered if rendered not in ("", "-") else "0"


def coerce_number(raw: str) -> float | None:
    """Parse a human-formatted number; ``None`` when it is not one.

    Accepts thousands separators, currency symbols, signs, percent
    suffixes (``"$1,234.5"`` → 1234.5; ``"12%"`` → 12.0), and
    accounting-style parenthesized negatives (``"(1,200)"`` → -1200.0).
    """
    match = _NUMBER_RE.match(raw)
    if not match:
        paren = _PAREN_NEGATIVE_RE.match(raw)
        if paren:
            inner = coerce_number(paren.group("inner"))
            if inner is not None:
                return -inner
        return None
    body = match.group("body").replace(",", "")
    number = float(body)
    if match.group("sign") == "-":
        number = -number
    return number


def days_in_month(year: int, month: int) -> int:
    """Number of days in ``month`` of ``year`` (leap-year aware)."""
    if month == 2 and (year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)):
        return 29
    return _DAYS_IN_MONTH[month - 1]


def _parse_value_uncached(raw: str) -> Value:
    """Parse one raw cell string into the most specific :class:`Value`."""
    stripped = raw.strip()
    lowered = stripped.lower()
    if lowered in _NULL_WORDS:
        return Value.null(raw)
    if lowered in _BOOL_WORDS:
        return Value.boolean(_BOOL_WORDS[lowered], raw)
    date_match = _DATE_RE.match(stripped)
    if date_match:
        if date_match.group("year"):
            year = int(date_match.group("year"))
            month = int(date_match.group("month"))
            day = int(date_match.group("day"))
        else:
            year = int(date_match.group("year2"))
            month = _MONTHS[date_match.group("month2").lower()]
            day = int(date_match.group("day2"))
        if 1 <= month <= 12 and 1 <= day <= days_in_month(year, month):
            return Value.date(year, month, day, raw)
    number = coerce_number(stripped)
    if number is not None:
        return Value.number(number, raw)
    return Value.text(raw)


@lru_cache(maxsize=4096)
def parse_value(raw: str) -> Value:
    """Parse one raw cell string into the most specific :class:`Value`.

    Memoized behind a bounded LRU: table corpora repeat the same surface
    strings constantly (years, grades, team names), and ``Value`` is
    immutable, so handing every caller the same instance is safe — and
    makes the per-instance memo fields (:meth:`Value._key`,
    :meth:`Value.canonical_key`) shared across all appearances of the
    string.  Use ``parse_value.__wrapped__`` for a cache-free parse.
    """
    return _parse_value_uncached(raw)


def infer_type(values: list[Value]) -> ValueType:
    """Infer a column type by unanimity over non-null cells.

    A column is numeric/date/bool only when *every* non-null cell parses
    as that type; otherwise it degrades to text, which is always safe.
    (Unanimity, not majority vote: a single stray string in a "numeric"
    column would make aggregates over it raise.)
    """
    non_null = [value for value in values if not value.is_null]
    if not non_null:
        return ValueType.TEXT
    types = {value.type for value in non_null}
    if types == {ValueType.NUMBER}:
        return ValueType.NUMBER
    if types == {ValueType.DATE}:
        return ValueType.DATE
    if types == {ValueType.BOOL}:
        return ValueType.BOOL
    return ValueType.TEXT
