"""Typed cell values and type inference.

Real-world tables store everything as strings; reasoning programs need
numbers.  This module is the boundary between the two worlds: it parses
raw cell strings into typed :class:`Value` objects and infers column
types by majority vote, the same pragmatics SQUALL-style template
placeholders rely on (``c2_number`` means "column 2, numeric").
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.errors import ValueParseError


class ValueType(str, Enum):
    """Runtime type of a table cell."""

    NUMBER = "number"
    TEXT = "text"
    DATE = "date"
    BOOL = "bool"
    NULL = "null"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_NUMBER_RE = re.compile(
    r"""^\s*
        (?P<sign>[-+])?
        (?P<currency>[$€£¥])?
        (?P<body>\d{1,3}(?:,\d{3})+(?:\.\d+)?|\d+(?:\.\d+)?|\.\d+)
        \s*(?P<percent>%)?
        \s*$""",
    re.VERBOSE,
)

_DATE_RE = re.compile(
    r"""^\s*(?P<year>\d{4})-(?P<month>\d{1,2})-(?P<day>\d{1,2})\s*$"""
    r"""|^\s*(?P<month2>january|february|march|april|may|june|july|august|"""
    r"""september|october|november|december)\s+(?P<day2>\d{1,2}),?\s+"""
    r"""(?P<year2>\d{4})\s*$""",
    re.VERBOSE | re.IGNORECASE,
)

_MONTHS = {
    name: index
    for index, name in enumerate(
        (
            "january february march april may june july august "
            "september october november december"
        ).split(),
        start=1,
    )
}

_BOOL_WORDS = {"true": True, "yes": True, "false": False, "no": False}

_NULL_WORDS = {"", "-", "--", "n/a", "na", "none", "null", "nil"}


@dataclass(frozen=True, order=False)
class Value:
    """A typed, comparable table cell.

    ``raw`` preserves the original surface string so generated sentences
    can quote the table verbatim; ``typed`` carries the parsed payload
    (float for numbers, ``(y, m, d)`` tuple for dates, bool, or the
    normalized string).
    """

    raw: str
    type: ValueType
    typed: Any

    # -- constructors ---------------------------------------------------
    @staticmethod
    def number(value: float, raw: str | None = None) -> "Value":
        """Build a numeric value, defaulting ``raw`` to a compact repr."""
        if raw is None:
            raw = format_number(value)
        return Value(raw=raw, type=ValueType.NUMBER, typed=float(value))

    @staticmethod
    def text(value: str) -> "Value":
        return Value(raw=value, type=ValueType.TEXT, typed=value.strip())

    @staticmethod
    def date(year: int, month: int, day: int, raw: str | None = None) -> "Value":
        if raw is None:
            raw = f"{year:04d}-{month:02d}-{day:02d}"
        return Value(raw=raw, type=ValueType.DATE, typed=(year, month, day))

    @staticmethod
    def boolean(value: bool, raw: str | None = None) -> "Value":
        if raw is None:
            raw = "true" if value else "false"
        return Value(raw=raw, type=ValueType.BOOL, typed=bool(value))

    @staticmethod
    def null(raw: str = "") -> "Value":
        return Value(raw=raw, type=ValueType.NULL, typed=None)

    # -- predicates ------------------------------------------------------
    @property
    def is_null(self) -> bool:
        return self.type is ValueType.NULL

    @property
    def is_number(self) -> bool:
        return self.type is ValueType.NUMBER

    def as_number(self) -> float:
        """Return the numeric payload, parsing text lazily if needed."""
        if self.type is ValueType.NUMBER:
            return float(self.typed)
        if self.type is ValueType.DATE:
            year, month, day = self.typed
            return year * 10000 + month * 100 + day
        if self.type is ValueType.BOOL:
            return 1.0 if self.typed else 0.0
        parsed = coerce_number(self.raw)
        if parsed is None:
            raise ValueParseError(f"value {self.raw!r} is not numeric")
        return parsed

    # -- comparisons -----------------------------------------------------
    def _key(self) -> tuple:
        """Sort key: group by type, order within type."""
        if self.type is ValueType.NULL:
            return (0, 0)
        if self.type in (ValueType.NUMBER, ValueType.BOOL, ValueType.DATE):
            return (1, self.as_number())
        return (2, self.typed.lower())

    def __lt__(self, other: "Value") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "Value") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "Value") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "Value") -> bool:
        return self._key() >= other._key()

    def equals(self, other: "Value") -> bool:
        """Semantic equality: numeric when both sides are numeric."""
        if self.is_null or other.is_null:
            return self.is_null and other.is_null
        self_num = coerce_number(self.raw)
        other_num = coerce_number(other.raw)
        if self_num is not None and other_num is not None:
            return math.isclose(self_num, other_num, rel_tol=1e-9, abs_tol=1e-9)
        return self.raw.strip().lower() == other.raw.strip().lower()

    def __str__(self) -> str:
        return self.raw


def format_number(value: float) -> str:
    """Render a float compactly and re-parseably.

    Integers drop the trailing ``.0``; other values use positional
    notation with up to six significant digits (never scientific
    notation, which :func:`coerce_number` does not read).  Magnitudes
    below 1e-9 collapse to ``0``.
    """
    if not math.isfinite(value):
        return f"{value:g}"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    if abs(value) < 1e-9:
        return "0"
    magnitude = math.floor(math.log10(abs(value)))
    decimals = max(0, 5 - magnitude)
    rendered = f"{value:.{decimals}f}"
    if "." in rendered:
        rendered = rendered.rstrip("0").rstrip(".")
    return rendered if rendered not in ("", "-") else "0"


def coerce_number(raw: str) -> float | None:
    """Parse a human-formatted number; ``None`` when it is not one.

    Accepts thousands separators, currency symbols, signs, and percent
    suffixes (``"$1,234.5"`` → 1234.5; ``"12%"`` → 12.0).
    """
    match = _NUMBER_RE.match(raw)
    if not match:
        return None
    body = match.group("body").replace(",", "")
    number = float(body)
    if match.group("sign") == "-":
        number = -number
    return number


def parse_value(raw: str) -> Value:
    """Parse one raw cell string into the most specific :class:`Value`."""
    stripped = raw.strip()
    lowered = stripped.lower()
    if lowered in _NULL_WORDS:
        return Value.null(raw)
    if lowered in _BOOL_WORDS:
        return Value.boolean(_BOOL_WORDS[lowered], raw)
    date_match = _DATE_RE.match(stripped)
    if date_match:
        if date_match.group("year"):
            year = int(date_match.group("year"))
            month = int(date_match.group("month"))
            day = int(date_match.group("day"))
        else:
            year = int(date_match.group("year2"))
            month = _MONTHS[date_match.group("month2").lower()]
            day = int(date_match.group("day2"))
        if 1 <= month <= 12 and 1 <= day <= 31:
            return Value.date(year, month, day, raw)
    number = coerce_number(stripped)
    if number is not None:
        return Value.number(number, raw)
    return Value.text(raw)


def infer_type(values: list[Value]) -> ValueType:
    """Infer a column type by majority over non-null cells.

    A column is numeric/date/bool only when *every* non-null cell parses
    as that type; otherwise it degrades to text, which is always safe.
    """
    non_null = [value for value in values if not value.is_null]
    if not non_null:
        return ValueType.TEXT
    types = {value.type for value in non_null}
    if types == {ValueType.NUMBER}:
        return ValueType.NUMBER
    if types == {ValueType.DATE}:
        return ValueType.DATE
    if types == {ValueType.BOOL}:
        return ValueType.BOOL
    return ValueType.TEXT
