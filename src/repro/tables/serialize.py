"""Table serialization: JSON round-trips and sequence linearization.

Linearization follows the flat "header: h1 | h2 ... row 1: c11 | c12 ..."
scheme popularized by TAPEX, which is what our featurizers consume.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import SchemaError, TableError
from repro.tables.schema import Column, Schema
from repro.tables.table import Row, Table
from repro.tables.values import Value, ValueType, parse_value


def table_to_json(table: Table) -> dict[str, Any]:
    """Serialize a table to a JSON-compatible dict."""
    return {
        "title": table.title,
        "caption": table.caption,
        "row_name_column": table.row_name_column,
        "columns": [
            {"name": column.name, "type": column.type.value}
            for column in table.schema
        ],
        "rows": [[cell.raw for cell in row] for row in table.rows],
    }


def table_from_json(payload: dict[str, Any]) -> Table:
    """Inverse of :func:`table_to_json`.

    Cell values are re-parsed from their raw strings, but the recorded
    column types win over re-inference so the round-trip is exact.
    """
    columns = []
    for entry in payload.get("columns", []):
        columns.append(Column(entry["name"], ValueType(entry.get("type", "text"))))
    schema = Schema(tuple(columns))
    rows = []
    for raw_row in payload.get("rows", []):
        if len(raw_row) != len(schema):
            raise SchemaError(
                f"serialized row width {len(raw_row)} != schema width {len(schema)}"
            )
        rows.append(Row(tuple(parse_value(str(cell)) for cell in raw_row)))
    return Table(
        schema=schema,
        rows=tuple(rows),
        title=payload.get("title", ""),
        caption=payload.get("caption", ""),
        row_name_column=payload.get("row_name_column"),
    )


def dumps(table: Table) -> str:
    """JSON string form of a table."""
    return json.dumps(table_to_json(table), ensure_ascii=False)


def loads(text: str) -> Table:
    """Parse a table from its JSON string form."""
    return table_from_json(json.loads(text))


def linearize_table(
    table: Table, max_rows: int | None = None, *, style: str = "flat"
) -> str:
    """Flatten a table to a single token-friendly string.

    ``style="flat"`` (the default, byte-for-byte unchanged — pinned by
    a regression test) is the TAPEX scheme the featurizers consume:
    ``title : T header : h1 | h2 row 1 : c11 | c12 row 2 : ...``

    ``style="passage"`` renders the table as prose for retrieval — the
    caption plus one sentence per row with column names inlined
    (``T . C . col1 is v1 ; col2 is v2 . ...``), the table→passage
    shape of open-table-discovery retrievers.  Shared by the store
    indexer's provenance snippets and any future dense retriever.
    """
    if style == "passage":
        return _linearize_passage(table, max_rows)
    if style != "flat":
        raise TableError(f"unknown linearization style {style!r}")
    parts: list[str] = []
    if table.title:
        parts.append(f"title : {table.title}")
    parts.append("header : " + " | ".join(table.column_names))
    rows = table.rows if max_rows is None else table.rows[:max_rows]
    for number, row in enumerate(rows, start=1):
        cells = " | ".join(cell.raw for cell in row)
        parts.append(f"row {number} : {cells}")
    return " ".join(parts)


def _linearize_passage(table: Table, max_rows: int | None) -> str:
    """The ``style="passage"`` rendering of :func:`linearize_table`."""
    sentences: list[str] = []
    if table.title:
        sentences.append(f"{table.title} .")
    if table.caption:
        sentences.append(f"{table.caption} .")
    count = table.n_rows if max_rows is None else min(max_rows, table.n_rows)
    for index in range(count):
        row_text = linearize_row(table, index)
        if row_text:
            sentences.append(f"{row_text} .")
    return " ".join(sentences)


def linearize_row(table: Table, row_index: int) -> str:
    """Flatten one row as ``col1 is v1 ; col2 is v2 ; ...``."""
    row = table.rows[row_index]
    pieces = [
        f"{column.name} is {cell.raw}"
        for column, cell in zip(table.schema, row)
        if not cell.is_null
    ]
    return " ; ".join(pieces)
