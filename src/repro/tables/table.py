"""The :class:`Table` class — the program context of all three DSLs.

Tables are immutable: every relational operation (filter, project, sort,
drop/append row) returns a new ``Table``.  Immutability keeps the
Table-Splitting and Table-Expansion pipelines (paper Section III) safe to
compose, because the original evidence table is never clobbered by the
operators that derive sub-tables or expanded tables from it.

Immutability is also the load-bearing wall of the hot path: the SQL
executor runs on a columnar view (:mod:`repro.tables.columnar`) that is
memoized on each frozen ``Table`` instance, and that memo is only safe
because no code path can change a table in place — a "modified" table
is always a *new* instance with a fresh, empty cache.  See
docs/PERFORMANCE.md for the full performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import SchemaError
from repro.tables.columnar import ColumnarTable, columnar_view
from repro.tables.schema import Column, Schema
from repro.tables.values import Value, ValueType, infer_type, parse_value


@dataclass(frozen=True)
class Row:
    """One table record: a tuple of cells aligned with the schema."""

    cells: tuple[Value, ...]

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[Value]:
        return iter(self.cells)

    def __getitem__(self, index: int) -> Value:
        return self.cells[index]


@dataclass(frozen=True)
class Table:
    """An immutable relational table with typed columns.

    ``title`` and ``caption`` carry the table's identity in generated
    sentences; the optional ``row_name_column`` records which column acts
    as the "row name" for Text-To-Table matching (paper Section IV-A).

    **Immutability contract.** Instances are frozen and every relational
    operation returns a new ``Table``; callers must never mutate
    ``rows`` / ``schema`` through ``object.__setattr__``.  The hot-path
    caches depend on it: the columnar execution view (:meth:`columnar`)
    and the schema's name→index map are both memoized per instance as
    pure functions of the frozen fields, which is what makes cached,
    cache-free, serial, and parallel execution byte-identical.
    """

    schema: Schema
    rows: tuple[Row, ...] = field(default_factory=tuple)
    title: str = ""
    caption: str = ""
    row_name_column: str | None = None

    def __post_init__(self) -> None:
        width = len(self.schema)
        for position, row in enumerate(self.rows):
            if len(row) != width:
                raise SchemaError(
                    f"row {position} has {len(row)} cells, expected {width}"
                )

    # -- constructors -------------------------------------------------------
    @staticmethod
    def from_rows(
        header: Sequence[str],
        raw_rows: Iterable[Sequence[object]],
        title: str = "",
        caption: str = "",
        row_name_column: str | None = None,
    ) -> "Table":
        """Build a table from raw cell data, inferring column types.

        Cells may be strings (parsed), numbers, or ready-made
        :class:`Value` objects.
        """
        parsed_rows: list[Row] = []
        for position, raw_row in enumerate(raw_rows):
            cells = tuple(_to_value(cell) for cell in raw_row)
            if len(cells) != len(header):
                raise SchemaError(
                    f"row {position} has {len(cells)} cells, expected "
                    f"{len(header)}"
                )
            parsed_rows.append(Row(cells))
        columns = []
        for position, name in enumerate(header):
            column_values = [row[position] for row in parsed_rows]
            columns.append(Column(str(name), infer_type(column_values)))
        return Table(
            schema=Schema(tuple(columns)),
            rows=tuple(parsed_rows),
            title=title,
            caption=caption,
            row_name_column=row_name_column,
        )

    # -- basic accessors ------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def n_columns(self) -> int:
        return len(self.schema)

    @property
    def column_names(self) -> list[str]:
        return self.schema.names

    def __len__(self) -> int:
        return self.n_rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def cell(self, row_index: int, column: str) -> Value:
        """The cell at ``row_index`` in the named column."""
        return self.rows[row_index][self.schema.index(column)]

    def columnar(self) -> ColumnarTable:
        """The cached column-major execution view of this table.

        Built lazily and memoized on the instance — safe because the
        table is immutable, so the view is a pure function of it and
        can never go stale.  The SQL executor, :meth:`sort_by`,
        :meth:`distinct_values`, and the logic engine's row views all
        run on it.
        """
        return columnar_view(self)

    def column_values(self, column: str) -> list[Value]:
        """All cells in the named column, top to bottom."""
        return list(self.columnar().vector(column).cells)

    def distinct_values(self, column: str) -> list[Value]:
        """Distinct non-null cells of a column, preserving first-seen order.

        Distinctness follows :meth:`Value.canonical_key`, the same
        equivalence :meth:`Value.equals` implements — ``"1,000"`` and
        ``"$1,000"`` are one value, not two.
        """
        vector = self.columnar().vector(column)
        validity = vector.validity()
        keys = vector.canonical_keys()
        seen: set[tuple] = set()
        out: list[Value] = []
        for index, value in enumerate(vector.cells):
            if not validity[index]:
                continue
            key = keys[index]
            if key not in seen:
                seen.add(key)
                out.append(value)
        return out

    # -- relational operations (all return new tables) ----------------------
    def filter_rows(self, predicate: Callable[[Row], bool]) -> "Table":
        kept = tuple(row for row in self.rows if predicate(row))
        return replace(self, rows=kept)

    def select_rows(self, indices: Sequence[int]) -> "Table":
        kept = tuple(self.rows[index] for index in indices)
        return replace(self, rows=kept)

    def drop_row(self, index: int) -> "Table":
        if not 0 <= index < self.n_rows:
            raise IndexError(f"row index {index} out of range")
        kept = self.rows[:index] + self.rows[index + 1 :]
        return replace(self, rows=kept)

    def append_row(self, cells: Sequence[object]) -> "Table":
        row = Row(tuple(_to_value(cell) for cell in cells))
        if len(row) != self.n_columns:
            raise SchemaError(
                f"appended row has {len(row)} cells, expected {self.n_columns}"
            )
        return replace(self, rows=self.rows + (row,))

    def project(self, columns: Sequence[str]) -> "Table":
        """Keep only the named columns, in the given order."""
        indices = [self.schema.index(name) for name in columns]
        new_schema = Schema(tuple(self.schema.columns[i] for i in indices))
        new_rows = tuple(
            Row(tuple(row[i] for i in indices)) for row in self.rows
        )
        return replace(self, schema=new_schema, rows=new_rows)

    def sort_by(self, column: str, descending: bool = False) -> "Table":
        """A new table with rows stably ordered by the named column.

        Sorts row indices on the columnar view's precomputed key array
        (``Value._key()`` per cell) — same ordering as sorting the rows
        themselves, without a method call per comparison.
        """
        keys = self.columnar().vector(column).sort_keys()
        order = sorted(
            range(self.n_rows), key=keys.__getitem__, reverse=descending
        )
        return replace(self, rows=tuple(self.rows[i] for i in order))

    def head(self, n: int) -> "Table":
        return replace(self, rows=self.rows[: max(n, 0)])

    # -- row-name helpers (Text-To-Table integration) ------------------------
    def row_name(self, row_index: int) -> str:
        """Human identifier of a row: the row-name column, else first cell."""
        column = self.row_name_column or (
            self.column_names[0] if self.column_names else None
        )
        if column is None or self.n_rows == 0:
            return ""
        return self.cell(row_index, column).raw

    def row_names(self) -> list[str]:
        """:meth:`row_name` for every row, via one columnar scan.

        Equivalent to ``[self.row_name(i) for i in range(self.n_rows)]``
        without a schema lookup per row; empty when the table has no
        rows or no columns.
        """
        column = self.row_name_column or (
            self.column_names[0] if self.column_names else None
        )
        if column is None or self.n_rows == 0:
            return []
        return [cell.raw for cell in self.columnar().vector(column).cells]

    def find_row_by_name(self, name: str) -> int | None:
        """Index of the row whose row-name matches ``name`` (case-folded)."""
        target = name.strip().lower()
        for index, row_name in enumerate(self.row_names()):
            if row_name.strip().lower() == target:
                return index
        return None

    # -- typed column summaries ----------------------------------------------
    def numeric_column_names(self) -> list[str]:
        return [column.name for column in self.schema.numeric_columns()]

    def column_type(self, column: str) -> ValueType:
        return self.schema.column(column).type

    def retype(self) -> "Table":
        """Re-infer all column types from current cell contents."""
        columns = []
        for position, column in enumerate(self.schema.columns):
            cells = [row[position] for row in self.rows]
            columns.append(Column(column.name, infer_type(cells)))
        return replace(self, schema=Schema(tuple(columns)))


def _to_value(cell: object) -> Value:
    if isinstance(cell, Value):
        return cell
    if isinstance(cell, bool):
        return Value.boolean(cell)
    if isinstance(cell, (int, float)):
        return Value.number(float(cell))
    if cell is None:
        return Value.null()
    return parse_value(str(cell))
