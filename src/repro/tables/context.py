"""Table-text contexts: a table plus its surrounding paragraphs.

The paper's heterogeneous setting (Section II-A "Context") reasons over a
table *and* the free text around it.  ``TableContext`` is the unlabeled
input unit of the whole framework: the unsupervised dataset is just a
list of these.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Any, Iterator

from repro.tables.serialize import table_from_json, table_to_json
from repro.tables.table import Table

_SENTENCE_SPLIT_RE = re.compile(r"(?<=[.!?])\s+(?=[A-Z0-9])")


def split_sentences(text: str) -> list[str]:
    """Split a paragraph into sentences on terminal punctuation."""
    stripped = text.strip()
    if not stripped:
        return []
    return [part.strip() for part in _SENTENCE_SPLIT_RE.split(stripped) if part.strip()]


@dataclass(frozen=True)
class Paragraph:
    """A block of text associated with a table."""

    text: str
    source: str = "context"

    @property
    def sentences(self) -> list[str]:
        return split_sentences(self.text)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


@dataclass(frozen=True)
class TableContext:
    """A table together with its surrounding paragraphs.

    ``uid`` identifies the context across pipeline stages; ``meta``
    carries dataset-specific annotations (domain, topic, split) that the
    experiments use for stratified reporting.
    """

    table: Table
    paragraphs: tuple[Paragraph, ...] = field(default_factory=tuple)
    uid: str = ""
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def text(self) -> str:
        """All paragraph text joined into one string."""
        return " ".join(paragraph.text for paragraph in self.paragraphs)

    @property
    def sentences(self) -> list[str]:
        out: list[str] = []
        for paragraph in self.paragraphs:
            out.extend(paragraph.sentences)
        return out

    @property
    def has_text(self) -> bool:
        return any(paragraph.text.strip() for paragraph in self.paragraphs)

    def with_table(self, table: Table) -> "TableContext":
        return replace(self, table=table)

    def with_paragraphs(self, paragraphs: list[Paragraph]) -> "TableContext":
        return replace(self, paragraphs=tuple(paragraphs))

    def add_paragraph(self, text: str, source: str = "generated") -> "TableContext":
        extended = self.paragraphs + (Paragraph(text=text, source=source),)
        return replace(self, paragraphs=extended)

    def __iter__(self) -> Iterator[Paragraph]:
        return iter(self.paragraphs)

    # -- serialization -----------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        return {
            "uid": self.uid,
            "meta": dict(self.meta),
            "table": table_to_json(self.table),
            "paragraphs": [
                {"text": paragraph.text, "source": paragraph.source}
                for paragraph in self.paragraphs
            ],
        }

    @staticmethod
    def from_json(payload: dict[str, Any]) -> "TableContext":
        return TableContext(
            table=table_from_json(payload["table"]),
            paragraphs=tuple(
                Paragraph(text=entry["text"], source=entry.get("source", "context"))
                for entry in payload.get("paragraphs", [])
            ),
            uid=payload.get("uid", ""),
            meta=dict(payload.get("meta", {})),
        )
