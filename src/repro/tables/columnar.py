"""The columnar execution substrate behind the SQL/logic hot path.

``Table`` stores rows of boxed :class:`~repro.tables.values.Value`
objects — the right shape for serialization and for the NL boundary,
but the wrong shape for program execution, where WHERE / ORDER BY /
DISTINCT / aggregate loops visit one *column* at a time and pay a
method dispatch plus several attribute loads per cell.  This module is
the column-major view of a table: each :class:`ColumnVector` exposes
the column as flat primitive arrays —

* a **validity mask** (``True`` where the cell is non-null),
* **sort keys** (``Value._key()`` tuples, so ``sorted`` runs on plain
  list indexing instead of per-element method calls),
* **canonical keys** (``Value.canonical_key()`` tuples, the
  distinct-count equivalence),
* **numeric payloads** in both flavors the executor needs
  (``Value.as_number()`` semantics for inequalities and aggregates,
  ``coerce_number(raw)`` semantics for ``equals``),
* **interned, case-folded strings** for textual comparison, and
* pre-built ``(row_index, column_name)`` **highlight pairs**, so
  evidence tracking is a ``set.update`` over existing tuples instead of
  one tuple allocation per touched cell.

Boxed ``Value`` objects are *not* abandoned: ``ColumnVector.cells``
keeps the original instances, and every result the executor emits
materializes from there — the serialize / NL boundary never sees
anything but ``Value``.

Determinism and caching contract
--------------------------------
The view is a **pure function of an immutable table**.  ``Table`` is a
frozen dataclass and every relational operation returns a *new* table,
so a view cached on an instance (``columnar_view``) can never go stale;
all arrays are derived from the frozen ``(raw, type, typed)`` fields of
the cells and are built lazily, at most once per (table, column,
array).  Nothing here consumes randomness, so columnar and row-oriented
execution are byte-identical — property-tested by
``tests/test_prop_columnar_row_equivalence.py`` and required by the
serial ≡ parallel guarantee (see docs/PERFORMANCE.md).

Array construction is timed under the ``columnar`` profiling stage
(``sampler/executor/columnar`` in a profiled generation run), which is
how the amortized cost of building a view stays visible.
"""

from __future__ import annotations

from sys import intern
from typing import TYPE_CHECKING

from repro import profiling
from repro.tables.values import Value, ValueType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tables.table import Table

#: attribute name under which the view is memoized on the frozen Table.
_VIEW_SLOT = "_columnar_memo"


class ColumnVector:
    """One table column as lazily built primitive arrays.

    All arrays are aligned with the table's row order: index ``i`` of
    every array describes the cell at row ``i``.  Each array is built
    at most once, on first demand — a query that never sorts a column
    never pays for its sort keys.
    """

    __slots__ = (
        "name",
        "cells",
        "memo",
        "_validity",
        "_sort_keys",
        "_sort_asc",
        "_sort_desc",
        "_canonical_keys",
        "_eq_arrays",
        "_numbers",
        "_lowered",
        "_highlight_pairs",
        "_non_null_count",
        "_distinct_count",
    )

    def __init__(self, name: str, cells: tuple[Value, ...]):
        self.name = name
        #: the boxed values, column-major — the materialization boundary.
        self.cells = cells
        #: executor-owned memo (e.g. WHERE survivor masks keyed by the
        #: condition's operator and literal identity).  Entries must be
        #: pure functions of the immutable column plus the key — that is
        #: what keeps cached and cache-free execution byte-identical.
        self.memo: dict = {}
        self._validity: list[bool] | None = None
        self._sort_keys: list[tuple] | None = None
        self._sort_asc: list[int] | None = None
        self._sort_desc: list[int] | None = None
        self._canonical_keys: list[tuple] | None = None
        self._eq_arrays: tuple[list, list, list, list] | None = None
        self._numbers: list[float | None] | None = None
        self._lowered: list[str] | None = None
        self._highlight_pairs: list[tuple[int, str]] | None = None
        self._non_null_count: int | None = None
        self._distinct_count: int | None = None

    def __len__(self) -> int:
        return len(self.cells)

    # -- lazy arrays -----------------------------------------------------
    def validity(self) -> list[bool]:
        """``True`` where the cell is non-null (the validity mask)."""
        built = self._validity
        if built is None:
            with profiling.stage("columnar"):
                built = [not cell.is_null for cell in self.cells]
            self._validity = built
        return built

    def sort_keys(self) -> list[tuple]:
        """Per-cell ``Value._key()`` tuples (ORDER BY / ``sort_by``)."""
        built = self._sort_keys
        if built is None:
            with profiling.stage("columnar"):
                built = [cell._key() for cell in self.cells]
            self._sort_keys = built
        return built

    def sort_order(self, descending: bool = False) -> list[int]:
        """All row indices, stably ordered by the column's sort keys.

        Cached per direction: repeated ORDER BY queries over the same
        table reuse the permutation instead of re-sorting.  Because the
        sort is stable (ties keep ascending row order, for either
        direction), the sorted form of *any* surviving-row subset is
        exactly this permutation filtered to the subset — which is how
        the executor orders WHERE survivors without sorting at all.
        Callers must treat the returned list as read-only.
        """
        built = self._sort_desc if descending else self._sort_asc
        if built is None:
            keys = self.sort_keys()
            with profiling.stage("columnar"):
                built = sorted(
                    range(len(self.cells)),
                    key=keys.__getitem__,
                    reverse=descending,
                )
            if descending:
                self._sort_desc = built
            else:
                self._sort_asc = built
        return built

    def canonical_keys(self) -> list[tuple]:
        """Per-cell ``Value.canonical_key()`` tuples (DISTINCT)."""
        built = self._canonical_keys
        if built is None:
            with profiling.stage("columnar"):
                built = [cell.canonical_key() for cell in self.cells]
            self._canonical_keys = built
        return built

    def equality_arrays(self) -> tuple[list, list, list, list]:
        """``(types, typeds, coerced_numbers, stripped_lowered)``.

        Exactly the quantities :meth:`Value.equals` consults, split into
        flat arrays so a WHERE ``=`` / ``!=`` loop can hoist the literal
        branches and compare primitives: the cell's :class:`ValueType`,
        its typed payload (date tuples, booleans), ``coerce_number`` of
        the raw string (``None`` when the surface form is not numeric),
        and the interned ``raw.strip().lower()`` fallback text.
        """
        built = self._eq_arrays
        if built is None:
            with profiling.stage("columnar"):
                types = []
                typeds = []
                coerced = []
                stripped = []
                for cell in self.cells:
                    types.append(cell.type)
                    typeds.append(cell.typed)
                    coerced.append(cell._coerced())
                    stripped.append(intern(cell.raw.strip().lower()))
                built = (types, typeds, coerced, stripped)
            self._eq_arrays = built
        return built

    def numbers(self) -> list[float | None]:
        """Per-cell ``Value.as_number()``, or ``None`` where it raises.

        The numeric payload inequality comparisons and SUM / AVG / MIN /
        MAX aggregate over: the typed float for numbers,
        ``y*10000 + m*100 + d`` for dates, 0/1 for booleans, and the
        coerced surface form for text.
        """
        built = self._numbers
        if built is None:
            with profiling.stage("columnar"):
                built = []
                for cell in self.cells:
                    kind = cell.type
                    if kind is ValueType.NUMBER:
                        built.append(float(cell.typed))
                    elif kind is ValueType.DATE:
                        year, month, day = cell.typed
                        built.append(
                            float(year * 10000 + month * 100 + day)
                        )
                    elif kind is ValueType.BOOL:
                        built.append(1.0 if cell.typed else 0.0)
                    else:
                        built.append(cell._coerced())
            self._numbers = built
        return built

    def lowered(self) -> list[str]:
        """Interned ``raw.lower()`` per cell (textual ``<``/``>`` etc.)."""
        built = self._lowered
        if built is None:
            with profiling.stage("columnar"):
                built = [intern(cell.raw.lower()) for cell in self.cells]
            self._lowered = built
        return built

    def highlight_pairs(self) -> list[tuple[int, str]]:
        """Pre-built ``(row_index, column_name)`` evidence tuples."""
        built = self._highlight_pairs
        if built is None:
            with profiling.stage("columnar"):
                name = self.name
                built = [(index, name) for index in range(len(self.cells))]
            self._highlight_pairs = built
        return built

    def non_null_count(self) -> int:
        """Number of non-null cells (full-column ``COUNT(col)``)."""
        built = self._non_null_count
        if built is None:
            built = sum(1 for flag in self.validity() if flag)
            self._non_null_count = built
        return built

    def distinct_count(self) -> int:
        """Distinct non-null canonical keys (full ``COUNT(DISTINCT)``)."""
        built = self._distinct_count
        if built is None:
            validity = self.validity()
            keys = self.canonical_keys()
            built = len(
                {keys[i] for i in range(len(keys)) if validity[i]}
            )
            self._distinct_count = built
        return built


class ColumnarTable:
    """The column-major view of one immutable :class:`Table`.

    Vectors are created on demand and keyed by schema position, so a
    query touching two of twelve columns builds exactly two.
    """

    __slots__ = ("table", "n_rows", "_vectors", "_by_name")

    def __init__(self, table: "Table"):
        self.table = table
        self.n_rows: int = table.n_rows
        self._vectors: dict[int, ColumnVector] = {}
        #: query-supplied spelling → vector, filled on first resolution
        #: so repeated lookups skip the schema's case-fold entirely.
        self._by_name: dict[str, ColumnVector] = {}

    def vector(self, column: str) -> ColumnVector:
        """The :class:`ColumnVector` for the named column (cached).

        Raises :class:`~repro.errors.ColumnNotFoundError` exactly like
        ``Schema.index`` — the columnar path reports unknown columns
        identically to the row path.  Lookups are cached under the
        exact spelling the caller used (lookups are case-insensitive,
        so several spellings may map to one vector).
        """
        vector = self._by_name.get(column)
        if vector is not None:
            return vector
        index = self.table.schema.index(column)
        vector = self._vectors.get(index)
        if vector is None:
            with profiling.stage("columnar"):
                name = self.table.schema.columns[index].name
                cells = tuple(
                    row.cells[index] for row in self.table.rows
                )
                vector = ColumnVector(name, cells)
            self._vectors[index] = vector
        self._by_name[column] = vector
        return vector

    def vectors(self) -> list[ColumnVector]:
        """All column vectors, in schema order."""
        return [
            self.vector(column.name) for column in self.table.schema.columns
        ]


def columnar_view(table: "Table") -> ColumnarTable:
    """The cached :class:`ColumnarTable` view of ``table``.

    Memoized on the frozen instance (like ``Schema``'s name→index map):
    the view is a pure function of the immutable table, so it can never
    go stale, and ``dataclasses.replace``-derived tables start with a
    fresh, empty cache.  Concurrent first access from two threads can
    at worst build the view twice; both results are equivalent and the
    attribute write is atomic.
    """
    view = table.__dict__.get(_VIEW_SLOT)
    if view is None:
        view = ColumnarTable(table)
        object.__setattr__(table, _VIEW_SLOT, view)
    return view
