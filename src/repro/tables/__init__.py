"""Table substrate: typed values, schemas, tables, and table-text contexts.

This package is the "program context" of the paper (Section II-A): the
structured evidence that programs execute against.  A
:class:`~repro.tables.table.Table` is a relational table with typed
columns; a :class:`~repro.tables.context.TableContext` pairs a table with
its surrounding paragraphs for joint table-text reasoning.
"""

from repro.tables.values import (
    Value,
    ValueType,
    parse_value,
    infer_type,
    coerce_number,
)
from repro.tables.columnar import ColumnarTable, ColumnVector, columnar_view
from repro.tables.schema import Column, Schema
from repro.tables.table import Row, Table
from repro.tables.context import Paragraph, TableContext
from repro.tables.serialize import (
    table_from_json,
    table_to_json,
    linearize_table,
)

__all__ = [
    "Value",
    "ValueType",
    "parse_value",
    "infer_type",
    "coerce_number",
    "Column",
    "ColumnarTable",
    "ColumnVector",
    "columnar_view",
    "Schema",
    "Row",
    "Table",
    "Paragraph",
    "TableContext",
    "table_from_json",
    "table_to_json",
    "linearize_table",
]
