"""Column and schema definitions for relational tables."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ColumnNotFoundError, SchemaError
from repro.tables.values import ValueType


@dataclass(frozen=True)
class Column:
    """A named, typed table column.

    ``name`` is the header string exactly as shown to the NL-Generator;
    ``type`` is the inferred :class:`~repro.tables.values.ValueType` used
    by the type-aware program sampler (paper Section IV-C).

    Immutability contract: ``Column`` is frozen and must stay that way —
    schemas, tables, and the columnar execution view all memoize state
    derived from it (see :class:`Schema` and
    :mod:`repro.tables.columnar`).
    """

    name: str
    type: ValueType = ValueType.TEXT

    @property
    def is_numeric(self) -> bool:
        return self.type is ValueType.NUMBER

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}:{self.type.value}"


@dataclass(frozen=True)
class Schema:
    """An ordered collection of uniquely named columns.

    Lookups are case-insensitive and O(1) via a name→index map built
    once in ``__post_init__`` and memoized on the frozen instance.
    The memo is the template for every cache in the table substrate:
    a pure function of immutable fields, stored outside the dataclass
    machinery so ``==``, ``hash``, ``repr``, and pickling are
    untouched, and therefore invisible to determinism — cached and
    cache-free lookups return identical results by construction.
    """

    columns: tuple[Column, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        lowered = [name.lower() for name in names]
        if len(set(lowered)) != len(lowered):
            duplicates = sorted(
                {name for name in lowered if lowered.count(name) > 1}
            )
            raise SchemaError(f"duplicate column names: {duplicates}")
        if any(not name.strip() for name in names):
            raise SchemaError("column names must be non-empty")
        # Case-folded name→index map, memoized on the frozen instance so
        # every lookup is O(1) instead of an O(columns) scan.  The map is
        # pure function of ``columns`` (validated unique above), so it
        # never goes stale; it is not a dataclass field, so ``==``,
        # ``hash``, and ``repr`` are untouched.
        index_map: dict[str, int] = {}
        for index, name in enumerate(names):
            index_map.setdefault(name.strip().lower(), index)
        object.__setattr__(self, "_index_map", index_map)

    # -- queries ----------------------------------------------------------
    @property
    def names(self) -> list[str]:
        return [column.name for column in self.columns]

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        return self.try_index(name) is not None

    def try_index(self, name: str) -> int | None:
        """Index of the column named ``name`` (case-insensitive), or None."""
        index_map = self.__dict__.get("_index_map")
        if index_map is None:  # unpickled before __post_init__ memo existed
            index_map = {}
            for index, column in enumerate(self.columns):
                index_map.setdefault(column.name.strip().lower(), index)
            object.__setattr__(self, "_index_map", index_map)
        return index_map.get(name.strip().lower())

    def index(self, name: str) -> int:
        found = self.try_index(name)
        if found is None:
            raise ColumnNotFoundError(name, self.names)
        return found

    def column(self, name: str) -> Column:
        return self.columns[self.index(name)]

    def numeric_columns(self) -> list[Column]:
        return [column for column in self.columns if column.is_numeric]

    def text_columns(self) -> list[Column]:
        return [
            column for column in self.columns if column.type is ValueType.TEXT
        ]

    def columns_of_type(self, value_type: ValueType) -> list[Column]:
        return [column for column in self.columns if column.type is value_type]
