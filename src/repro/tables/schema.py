"""Column and schema definitions for relational tables."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ColumnNotFoundError, SchemaError
from repro.tables.values import ValueType


@dataclass(frozen=True)
class Column:
    """A named, typed table column.

    ``name`` is the header string exactly as shown to the NL-Generator;
    ``type`` is the inferred :class:`~repro.tables.values.ValueType` used
    by the type-aware program sampler (paper Section IV-C).
    """

    name: str
    type: ValueType = ValueType.TEXT

    @property
    def is_numeric(self) -> bool:
        return self.type is ValueType.NUMBER

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}:{self.type.value}"


@dataclass(frozen=True)
class Schema:
    """An ordered collection of uniquely named columns."""

    columns: tuple[Column, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        lowered = [name.lower() for name in names]
        if len(set(lowered)) != len(lowered):
            duplicates = sorted(
                {name for name in lowered if lowered.count(name) > 1}
            )
            raise SchemaError(f"duplicate column names: {duplicates}")
        if any(not name.strip() for name in names):
            raise SchemaError("column names must be non-empty")

    # -- queries ----------------------------------------------------------
    @property
    def names(self) -> list[str]:
        return [column.name for column in self.columns]

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        return self.try_index(name) is not None

    def try_index(self, name: str) -> int | None:
        """Index of the column named ``name`` (case-insensitive), or None."""
        target = name.strip().lower()
        for index, column in enumerate(self.columns):
            if column.name.strip().lower() == target:
                return index
        return None

    def index(self, name: str) -> int:
        found = self.try_index(name)
        if found is None:
            raise ColumnNotFoundError(name, self.names)
        return found

    def column(self, name: str) -> Column:
        return self.columns[self.index(name)]

    def numeric_columns(self) -> list[Column]:
        return [column for column in self.columns if column.is_numeric]

    def text_columns(self) -> list[Column]:
        return [
            column for column in self.columns if column.type is ValueType.TEXT
        ]

    def columns_of_type(self, value_type: ValueType) -> list[Column]:
        return [column for column in self.columns if column.type is value_type]
