"""Few-shot sampling utilities (the paper's 50-label setting)."""

from __future__ import annotations

import random

from repro.pipelines.samples import ReasoningSample
from repro.rng import make_rng


def few_shot_subset(
    gold: list[ReasoningSample], k: int = 50, seed: int = 0
) -> list[ReasoningSample]:
    """``k`` gold samples chosen uniformly at random (paper Section V-B)."""
    rng = make_rng(seed)
    if k >= len(gold):
        return list(gold)
    return rng.sample(list(gold), k)


def label_budget_curve(
    gold: list[ReasoningSample],
    budgets: list[int],
    seed: int = 0,
) -> dict[int, list[ReasoningSample]]:
    """Nested subsets of increasing size for the Figure 5 curve.

    Subsets are nested (each budget extends the previous draw) so the
    curve is monotone in data rather than jumping between draws.
    """
    rng = make_rng(seed)
    order = list(gold)
    rng.shuffle(order)
    return {budget: order[: min(budget, len(order))] for budget in sorted(budgets)}
