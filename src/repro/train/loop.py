"""Training plans: the paper's four regimes over one model family.

* supervised      — fit on gold train data.
* unsupervised    — fit on synthetic data only (UCTR or a baseline).
* few-shot        — fit on synthetic, fine-tune on K gold samples.
* augmentation    — fit on synthetic, fine-tune on the full gold set.

Persisted corpora enter training through
:func:`load_training_samples`, which layers the integrity stack under
the plans: manifest verification and contract-checked loading
(:mod:`repro.io`) plus the optional semantic re-execution gate
(``validate=True``), so stale pseudo-labels are dropped before they can
poison a model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.eval.metrics import label_accuracy, micro_f1, qa_scores, denotation_accuracy
from repro.models.qa import QAConfig, TagOpQA
from repro.models.verifier import FactVerifier, VerifierConfig
from repro.pipelines.samples import ReasoningSample


@dataclass(frozen=True)
class TrainingPlan:
    """What a model trains on, in order."""

    primary: tuple[ReasoningSample, ...]
    fine_tune: tuple[ReasoningSample, ...] = ()
    name: str = ""

    @staticmethod
    def supervised(gold: list[ReasoningSample]) -> "TrainingPlan":
        return TrainingPlan(primary=tuple(gold), name="supervised")

    @staticmethod
    def unsupervised(synthetic: list[ReasoningSample]) -> "TrainingPlan":
        return TrainingPlan(primary=tuple(synthetic), name="unsupervised")

    @staticmethod
    def few_shot(
        synthetic: list[ReasoningSample], shots: list[ReasoningSample]
    ) -> "TrainingPlan":
        return TrainingPlan(
            primary=tuple(synthetic), fine_tune=tuple(shots), name="few_shot"
        )

    @staticmethod
    def augmentation(
        synthetic: list[ReasoningSample], gold: list[ReasoningSample]
    ) -> "TrainingPlan":
        return TrainingPlan(
            primary=tuple(synthetic), fine_tune=tuple(gold), name="augmentation"
        )


def load_training_samples(
    path: str | Path,
    *,
    validate: bool = False,
    on_error: str = "raise",
    integrity: str = "verify",
    telemetry=None,
):
    """Load a persisted corpus for training, optionally semantically gated.

    Loads through :func:`repro.io.load_samples` (manifest verification
    and the ``on_error`` degradation contract apply).  With
    ``validate=True``, every sample additionally passes the semantic
    re-execution gate; ``stale`` and ``unexecutable`` samples are
    dropped from the returned list so they cannot poison training.

    Returns ``(samples, summary)`` — ``summary`` is the gate's
    :class:`~repro.validate.semantic.ValidationSummary`, or ``None``
    when ``validate=False``.  ``telemetry`` (a
    :class:`~repro.telemetry.Telemetry` sink) receives the gate's
    counters and flagged-sample events when provided.
    """
    from repro.io import load_samples
    from repro.validate import validate_samples

    loaded = load_samples(path, on_error=on_error, integrity=integrity)
    samples = list(loaded)  # LoadResult iterates its intact records
    if not validate:
        return samples, None
    summary = validate_samples(samples, telemetry)
    flagged = {verdict.uid for verdict in summary.flagged}
    if flagged:
        samples = [s for s in samples if s.uid not in flagged]
    return samples, summary


#: labeled budgets below this use gentle sequential adaptation; at or
#: above it, the labeled data is mixed into training directly.
_MIXTURE_THRESHOLD = 100

#: replication factor for human-labeled data in mixture training.
_GOLD_REPLICATION = 3


def _staged(plan: TrainingPlan) -> tuple[list[ReasoningSample], list[ReasoningSample]]:
    """Resolve a plan into (initial training set, adaptation set).

    Small labeled budgets (the few-shot regime) adapt a synthetic-
    pretrained model with a brief low-LR pass.  Substantial labeled sets
    (the paper's augmentation stage) instead train on the *union* of
    synthetic and human data with the human data replicated — at MLP
    capacity, sequential fine-tuning from a synthetic optimum lands in a
    poorly generalizing basin, whereas the mixture recovers the paper's
    result (augmented >= supervised on low-resource domains, parity on
    data-rich ones).
    """
    primary = list(plan.primary)
    adaptation = list(plan.fine_tune)
    if adaptation and (
        plan.name == "augmentation" or len(adaptation) >= _MIXTURE_THRESHOLD
    ):
        return primary + adaptation * _GOLD_REPLICATION, []
    return primary, adaptation


def train_verifier(
    plan: TrainingPlan, config: VerifierConfig | None = None
) -> FactVerifier:
    """Train a fact verifier under ``plan``."""
    initial, adaptation = _staged(plan)
    verifier = FactVerifier(config)
    verifier.fit(initial)
    if adaptation:
        verifier.fine_tune(adaptation)
    return verifier


def train_qa(plan: TrainingPlan, config: QAConfig | None = None) -> TagOpQA:
    """Train a QA model under ``plan`` (same staging as the verifier)."""
    initial, adaptation = _staged(plan)
    model = TagOpQA(config)
    model.fit(initial)
    if adaptation:
        model.fine_tune(adaptation)
    return model


@dataclass(frozen=True)
class VerifierScores:
    accuracy: float
    f1: float


def evaluate_verifier(
    verifier, samples: list[ReasoningSample]
) -> VerifierScores:
    usable = [s for s in samples if s.label is not None]
    if not usable:
        # Zeroed scores, not a crash: an empty (or all-unlabeled) eval
        # split is a data problem the caller reports, and some verifier
        # implementations choke on an empty predict batch.
        return VerifierScores(accuracy=0.0, f1=0.0)
    predictions = verifier.predict(usable)
    golds = [s.label for s in usable]
    return VerifierScores(
        accuracy=label_accuracy(predictions, golds),
        f1=micro_f1(predictions, golds),
    )


@dataclass(frozen=True)
class QAScores:
    em: float
    f1: float
    denotation: float


def evaluate_qa(model, samples: list[ReasoningSample]) -> QAScores:
    if not samples:
        return QAScores(em=0.0, f1=0.0, denotation=0.0)
    # One predict_batch call instead of a per-sample Python loop: the
    # batched path shares the model's per-batch bookkeeping (and is the
    # same code path the serving engine exercises).  Scores are
    # guaranteed identical to per-sample predict — see the
    # predict_batch contract and the regression test in
    # tests/test_train_staging.py.
    predictions = model.predict_batch(samples)
    golds = [list(sample.answer) for sample in samples]
    em, f1 = qa_scores(predictions, golds)
    return QAScores(em=em, f1=f1, denotation=denotation_accuracy(predictions, golds))
