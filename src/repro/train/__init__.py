"""Training harness: settings (supervised / unsupervised / few-shot /
augmentation) expressed as training plans over the task models."""

from repro.train.loop import (
    TrainingPlan,
    load_training_samples,
    train_verifier,
    train_qa,
    evaluate_verifier,
    evaluate_qa,
)
from repro.train.fewshot import few_shot_subset

__all__ = [
    "TrainingPlan",
    "load_training_samples",
    "train_verifier",
    "train_qa",
    "evaluate_verifier",
    "evaluate_qa",
    "few_shot_subset",
]
