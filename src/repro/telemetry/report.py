"""The JSON run-report: one document summarizing a generation run.

``repro generate --report report.json`` (and the experiments runner)
serializes a :class:`Telemetry` sink plus run metadata into a stable,
versioned schema.  The invariants consumers may rely on: the
per-pipeline ``emitted`` counts sum to ``samples_written`` (both are
tallied from the *final* sample list after any global budget trim), and
per pipeline ``attempts == successes + rejects`` — every sampler
attempt ends in exactly one outcome, retried attempts included, because
the runtime merges only the successful attempt's counters.

Schema version 2 adds the resilience sections: ``quarantine`` (the
structured records of contexts isolated by the fault-tolerant runtime)
and ``retries`` (how often contexts, chunks, and pools were retried).

Schema version 3 adds the ``profile`` section — per-stage wall-clock
breakdown of the hot path (sampler, executor, filters, NL-gen,
serialization) recorded by :mod:`repro.profiling` when a run is
profiled (``repro generate --profile``).  The section is present in
every v3 report with ``enabled: false`` when profiling was off; the
validator still accepts v2 reports, which simply lack it.

Schema version 4 adds the ``validation`` section — the semantic
re-execution gate's verdict counts (``ok``/``stale``/``unexecutable``/
``skipped``) and the structured verdicts of every flagged sample,
recorded by :mod:`repro.validate.semantic` (``repro validate``, or
``--validate`` on the experiments runner).  Like ``profile``, the
section is always present (``enabled: false`` when the gate did not
run), and the validator still accepts v2/v3 reports.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.fsio import atomic_write_text
from repro.profiling import PROFILE_PREFIX, profile_section
from repro.telemetry.core import Telemetry

#: bump when the report layout changes incompatibly.
REPORT_SCHEMA_VERSION = 4

#: schema versions :func:`validate_report` accepts (older versions stay
#: readable: every section they define is a subset of the current one).
SUPPORTED_SCHEMA_VERSIONS = (2, 3, 4)

#: the ``kind`` discriminator written into every report.
REPORT_KIND = "uctr-generation-report"

#: verdict classes of the semantic re-execution gate (kept in sync with
#: :class:`repro.validate.semantic.SampleStatus`; spelled out here so
#: telemetry does not import the validation layer that imports it).
VALIDATION_STATUSES = ("ok", "stale", "unexecutable", "skipped")


def build_report(
    telemetry: Telemetry,
    *,
    seed: int | None = None,
    workers: int = 1,
    contexts: int | None = None,
    samples_written: int | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the versioned run-report dict from a telemetry sink."""
    pipelines: dict[str, Any] = {}
    for name in telemetry.pipelines():
        attempts = telemetry.keys_under("attempts", name)
        successes = telemetry.keys_under("successes", name)
        pipelines[name] = {
            "attempts": sum(attempts.values()),
            "successes": sum(successes.values()),
            "rejects": sum(telemetry.keys_under("rejects", name).values()),
            "emitted": telemetry.count("emitted", name),
            "program_kinds": {
                kind: {
                    "attempts": attempts.get(kind, 0),
                    "successes": successes.get(kind, 0),
                }
                for kind in sorted(set(attempts) | set(successes))
            },
            "reject_reasons": telemetry.keys_under("rejects", name),
        }
    quarantined = telemetry.events("quarantine")
    validation_counts = telemetry.section("validation")
    validation: dict[str, Any] = {"enabled": bool(validation_counts)}
    if validation_counts:
        validation.update(
            {
                "checked": sum(validation_counts.values()),
                "counts": {
                    status: validation_counts.get(status, 0)
                    for status in VALIDATION_STATUSES
                },
                "flagged": telemetry.events("validation"),
            }
        )
    timers = telemetry.snapshot()["timers"]
    report: dict[str, Any] = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "kind": REPORT_KIND,
        "seed": seed,
        "workers": workers,
        "contexts": contexts,
        "samples_written": samples_written,
        "pipelines": pipelines,
        "drops": telemetry.section("drops"),
        "shortfalls": telemetry.section("shortfalls"),
        "quarantine": {
            "count": len(quarantined),
            "contexts": quarantined,
        },
        "retries": telemetry.section("retries"),
        "validation": validation,
        "timers": {
            name: dict(stat)
            for name, stat in timers.items()
            if not name.startswith(PROFILE_PREFIX)
        },
        "profile": profile_section(timers),
    }
    seconds = telemetry.seconds("generate")
    if seconds > 0 and samples_written is not None:
        report["samples_per_second"] = round(samples_written / seconds, 2)
    if extra:
        report.update(extra)
    return report


def write_report(path: str | Path, report: dict[str, Any]) -> Path:
    """Atomically write a report dict as pretty JSON; returns the path."""
    return atomic_write_text(
        path, json.dumps(report, indent=2, sort_keys=True) + "\n"
    )


def load_report(path: str | Path) -> dict[str, Any]:
    """Read back a report written by :func:`write_report`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def validate_report(report: dict[str, Any]) -> list[str]:
    """Return a list of schema problems (empty == valid)."""
    problems: list[str] = []
    if report.get("kind") != REPORT_KIND:
        problems.append(f"kind is {report.get('kind')!r}, not {REPORT_KIND!r}")
    version = report.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        problems.append(f"unknown schema_version {version!r}")
    profile = report.get("profile")
    if (
        isinstance(version, int)
        and version >= 3
        and not isinstance(profile, dict)
    ):
        problems.append(f"v{version} report is missing its profile section")
    validation = report.get("validation")
    if (
        isinstance(version, int)
        and version >= 4
        and not isinstance(validation, dict)
    ):
        problems.append(
            f"v{version} report is missing its validation section"
        )
    if isinstance(validation, dict) and validation.get("enabled"):
        counts = validation.get("counts")
        if not isinstance(counts, dict) or any(
            not isinstance(counts.get(status), int)
            for status in VALIDATION_STATUSES
        ):
            problems.append(
                "validation.counts must carry integer "
                f"{'/'.join(VALIDATION_STATUSES)} counts"
            )
        else:
            flagged = validation.get("flagged")
            expected = counts.get("stale", 0) + counts.get("unexecutable", 0)
            if not isinstance(flagged, list) or len(flagged) != expected:
                problems.append(
                    "validation.flagged does not match the stale + "
                    "unexecutable counts"
                )
    if isinstance(profile, dict):
        stages = profile.get("stages")
        if not isinstance(stages, dict):
            problems.append("profile.stages must be a dict")
        else:
            for stage_name, entry in stages.items():
                if not isinstance(entry, dict) or not isinstance(
                    entry.get("seconds"), (int, float)
                ):
                    problems.append(
                        f"profile.stages[{stage_name!r}] malformed"
                    )
    pipelines = report.get("pipelines")
    if not isinstance(pipelines, dict):
        problems.append("pipelines must be a dict")
        return problems
    for name, stats in pipelines.items():
        for field in ("attempts", "successes", "rejects", "emitted"):
            if not isinstance(stats.get(field), int):
                problems.append(f"pipelines[{name!r}].{field} missing")
        attempts = stats.get("attempts")
        successes = stats.get("successes")
        rejects = stats.get("rejects")
        if (
            isinstance(attempts, int)
            and isinstance(successes, int)
            and isinstance(rejects, int)
            and attempts != successes + rejects
        ):
            problems.append(
                f"pipelines[{name!r}] does not reconcile: "
                f"attempts={attempts} != successes+rejects="
                f"{successes + rejects}"
            )
    quarantine = report.get("quarantine")
    if quarantine is not None:
        contexts_list = quarantine.get("contexts")
        if not isinstance(contexts_list, list) or quarantine.get(
            "count"
        ) != len(contexts_list):
            problems.append(
                "quarantine.count does not match quarantine.contexts"
            )
    written = report.get("samples_written")
    if isinstance(written, int):
        total = sum(stats.get("emitted", 0) for stats in pipelines.values())
        if total != written:
            problems.append(
                f"emitted counts sum to {total}, samples_written={written}"
            )
    return problems


def render_summary(report: dict[str, Any]) -> str:
    """A compact human-readable digest for CLI output."""
    lines = [
        f"generation report (seed={report.get('seed')}, "
        f"workers={report.get('workers')}, "
        f"contexts={report.get('contexts')}, "
        f"samples={report.get('samples_written')})"
    ]
    for name, stats in sorted(report.get("pipelines", {}).items()):
        attempts = stats["attempts"]
        rate = stats["successes"] / attempts if attempts else 0.0
        lines.append(
            f"  {name:<12} emitted={stats['emitted']:<5} "
            f"attempts={attempts:<6} success-rate={rate:.0%}"
        )
    quarantine = report.get("quarantine") or {}
    if quarantine.get("count"):
        reasons = sorted(
            {
                entry.get("error") or entry.get("reason", "?")
                for entry in quarantine.get("contexts", [])
            }
        )
        lines.append(
            f"  quarantined: {quarantine['count']} context(s) "
            f"({', '.join(reasons)})"
        )
    retries = report.get("retries") or {}
    if retries:
        total = sum(retries.values())
        lines.append(f"  retries: {total} ({', '.join(sorted(retries))})")
    validation = report.get("validation") or {}
    if validation.get("enabled"):
        counts = validation.get("counts", {})
        lines.append(
            "  validation: "
            + " ".join(f"{s}={counts.get(s, 0)}" for s in VALIDATION_STATUSES)
        )
    rate = report.get("samples_per_second")
    if rate is not None:
        lines.append(f"  throughput: {rate} samples/sec")
    return "\n".join(lines)
