"""The JSON run-report: one document summarizing a generation run.

``repro generate --report report.json`` (and the experiments runner)
serializes a :class:`Telemetry` sink plus run metadata into a stable,
versioned schema.  The invariant consumers may rely on: the per-pipeline
``emitted`` counts sum to ``samples_written``, because both are tallied
from the *final* sample list after any global budget trim.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.telemetry.core import Telemetry

#: bump when the report layout changes incompatibly.
REPORT_SCHEMA_VERSION = 1

#: the ``kind`` discriminator written into every report.
REPORT_KIND = "uctr-generation-report"


def build_report(
    telemetry: Telemetry,
    *,
    seed: int | None = None,
    workers: int = 1,
    contexts: int | None = None,
    samples_written: int | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the versioned run-report dict from a telemetry sink."""
    pipelines: dict[str, Any] = {}
    for name in telemetry.pipelines():
        attempts = telemetry.keys_under("attempts", name)
        successes = telemetry.keys_under("successes", name)
        pipelines[name] = {
            "attempts": sum(attempts.values()),
            "successes": sum(successes.values()),
            "rejects": sum(telemetry.keys_under("rejects", name).values()),
            "emitted": telemetry.count("emitted", name),
            "program_kinds": {
                kind: {
                    "attempts": attempts.get(kind, 0),
                    "successes": successes.get(kind, 0),
                }
                for kind in sorted(set(attempts) | set(successes))
            },
            "reject_reasons": telemetry.keys_under("rejects", name),
        }
    report: dict[str, Any] = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "kind": REPORT_KIND,
        "seed": seed,
        "workers": workers,
        "contexts": contexts,
        "samples_written": samples_written,
        "pipelines": pipelines,
        "drops": telemetry.section("drops"),
        "shortfalls": telemetry.section("shortfalls"),
        "timers": {
            name: dict(stat)
            for name, stat in telemetry.snapshot()["timers"].items()
        },
    }
    seconds = telemetry.seconds("generate")
    if seconds > 0 and samples_written is not None:
        report["samples_per_second"] = round(samples_written / seconds, 2)
    if extra:
        report.update(extra)
    return report


def write_report(path: str | Path, report: dict[str, Any]) -> Path:
    """Write a report dict as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_report(path: str | Path) -> dict[str, Any]:
    """Read back a report written by :func:`write_report`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def validate_report(report: dict[str, Any]) -> list[str]:
    """Return a list of schema problems (empty == valid)."""
    problems: list[str] = []
    if report.get("kind") != REPORT_KIND:
        problems.append(f"kind is {report.get('kind')!r}, not {REPORT_KIND!r}")
    if report.get("schema_version") != REPORT_SCHEMA_VERSION:
        problems.append("unknown schema_version "
                        f"{report.get('schema_version')!r}")
    pipelines = report.get("pipelines")
    if not isinstance(pipelines, dict):
        problems.append("pipelines must be a dict")
        return problems
    for name, stats in pipelines.items():
        for field in ("attempts", "successes", "rejects", "emitted"):
            if not isinstance(stats.get(field), int):
                problems.append(f"pipelines[{name!r}].{field} missing")
    written = report.get("samples_written")
    if isinstance(written, int):
        total = sum(stats.get("emitted", 0) for stats in pipelines.values())
        if total != written:
            problems.append(
                f"emitted counts sum to {total}, samples_written={written}"
            )
    return problems


def render_summary(report: dict[str, Any]) -> str:
    """A compact human-readable digest for CLI output."""
    lines = [
        f"generation report (seed={report.get('seed')}, "
        f"workers={report.get('workers')}, "
        f"contexts={report.get('contexts')}, "
        f"samples={report.get('samples_written')})"
    ]
    for name, stats in sorted(report.get("pipelines", {}).items()):
        attempts = stats["attempts"]
        rate = stats["successes"] / attempts if attempts else 0.0
        lines.append(
            f"  {name:<12} emitted={stats['emitted']:<5} "
            f"attempts={attempts:<6} success-rate={rate:.0%}"
        )
    rate = report.get("samples_per_second")
    if rate is not None:
        lines.append(f"  throughput: {rate} samples/sec")
    return "\n".join(lines)
