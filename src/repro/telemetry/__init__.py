"""Observability for the generation engine (counters, timers, reports).

Generation used to be a black box: ``UCTR.generate`` returned a sample
list and discarded everything it learned along the way — how many
programs were drawn, which validity filter killed the rest, where the
per-context budget went unfilled.  This package makes that visible
without perturbing the samples themselves:

* :mod:`repro.telemetry.core` — the :class:`Telemetry` sink: additive
  counters (attempts / rejects / successes / drops / shortfalls /
  emitted, keyed per pipeline and program kind) and wall-clock timers,
  with snapshot/merge so worker processes can ship their accounting to
  the parent.
* :mod:`repro.telemetry.report` — the versioned JSON run-report written
  by ``repro generate --report`` and the experiments runner, plus its
  validator and a human-readable digest.

A :class:`Telemetry` handle rides inside
:class:`repro.pipelines.base.PipelineTools`; every pipeline and the
sampler/filter chain report through it.  Recording never draws from an
RNG, so instrumented runs are sample-for-sample identical to bare ones.
"""

from repro.telemetry.core import SECTIONS, Telemetry
from repro.telemetry.report import (
    REPORT_KIND,
    REPORT_SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    build_report,
    load_report,
    render_summary,
    validate_report,
    write_report,
)

__all__ = [
    "SECTIONS",
    "Telemetry",
    "REPORT_KIND",
    "REPORT_SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "build_report",
    "load_report",
    "render_summary",
    "validate_report",
    "write_report",
]
