"""Counters and timers for the generation engine.

:class:`Telemetry` is an additive event sink: pipelines report every
program-sampling *attempt*, each *reject* with its reason (a failed
validity filter, an unsplittable table, …), each *success*, and any
per-context *drop* or end-of-budget *shortfall*.  Nothing here touches a
random number generator, so instrumented and uninstrumented runs emit
identical samples.

Counters live in named sections keyed by ``/``-joined paths
(``"table_only/sql"``, ``"splitting/filter:non_empty"``) so merging two
sinks — the parent process folding in a worker's snapshot — is a plain
per-key sum.  :meth:`Telemetry.snapshot` and :meth:`Telemetry.merge`
round-trip through JSON-compatible dicts, which is how worker processes
ship their accounting back over a pipe.
"""

from __future__ import annotations

import time
from collections import Counter, defaultdict
from contextlib import contextmanager
from typing import Any, Iterator

#: counter sections with a defined meaning; ad-hoc sections are allowed.
SECTIONS = (
    "attempts",    # one per draw_program call, keyed pipeline/kind
    "successes",   # emitted by a pipeline, keyed pipeline/kind
    "rejects",     # one per failed attempt, keyed pipeline/reason
    "drops",       # context-level failures not tied to an attempt
    "shortfalls",  # budget a pipeline could not fill, keyed pipeline/reason
    "emitted",     # samples surviving the final budget trim, keyed pipeline
)


def _event_sort_key(event: dict[str, Any]) -> tuple:
    """Deterministic ordering regardless of worker completion order."""
    return (
        str(event.get("kind", "")),
        event.get("index", -1) if isinstance(event.get("index"), int) else -1,
        str(event.get("uid", "")),
        str(event.get("reason", "")),
    )


class Telemetry:
    """Additive counters + wall-clock timers + structured events."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = defaultdict(Counter)
        self._timers: dict[str, dict[str, float]] = {}
        self._events: list[dict[str, Any]] = []

    # -- generic counters ---------------------------------------------------
    def increment(self, section: str, key: str, amount: int = 1) -> None:
        """Add ``amount`` to ``section``'s counter for ``key``."""
        self._counters[section][key] += amount

    def count(self, section: str, key: str | None = None) -> int:
        """Total for one key, or the whole section when ``key`` is None."""
        counter = self._counters.get(section)
        if counter is None:
            return 0
        if key is None:
            return sum(counter.values())
        return counter.get(key, 0)

    def section(self, name: str) -> dict[str, int]:
        """A copy of one section's counters."""
        return dict(self._counters.get(name, {}))

    def keys_under(self, section: str, prefix: str) -> dict[str, int]:
        """Counters in ``section`` whose key starts with ``prefix + "/"``."""
        marker = prefix + "/"
        return {
            key[len(marker):]: value
            for key, value in self._counters.get(section, {}).items()
            if key.startswith(marker)
        }

    # -- the generation-engine vocabulary -----------------------------------
    def attempt(self, pipeline: str, kind: str) -> None:
        """One call into the sampler on behalf of ``pipeline``."""
        self.increment("attempts", f"{pipeline}/{kind}")

    def success(self, pipeline: str, kind: str) -> None:
        """An attempt that became an emitted sample."""
        self.increment("successes", f"{pipeline}/{kind}")

    def reject(self, pipeline: str, reason: str) -> None:
        """An attempt discarded for ``reason`` (filter name, failure mode)."""
        self.increment("rejects", f"{pipeline}/{reason}")

    def drop(self, pipeline: str, reason: str) -> None:
        """A context-level failure that preempted any attempts."""
        self.increment("drops", f"{pipeline}/{reason}")

    def shortfall(self, pipeline: str, amount: int, reason: str) -> None:
        """Budget the pipeline could not fill for one context."""
        if amount > 0:
            self.increment("shortfalls", f"{pipeline}/{reason}", amount)

    def emitted(self, pipeline: str, amount: int = 1) -> None:
        """A sample that survived the final budget trim."""
        self.increment("emitted", pipeline, amount)

    # -- structured events --------------------------------------------------
    def event(self, kind: str, payload: dict[str, Any]) -> None:
        """Record a structured event (e.g. a quarantine record).

        Unlike counters, events keep their full payload; they ride along
        in :meth:`snapshot`/:meth:`merge` so workers can ship structured
        records (not just counts) back to the parent.
        """
        self._events.append({"kind": kind, **payload})

    def events(self, kind: str | None = None) -> list[dict[str, Any]]:
        """All events (optionally of one kind), in a deterministic order."""
        found = [
            dict(event)
            for event in self._events
            if kind is None or event.get("kind") == kind
        ]
        return sorted(found, key=_event_sort_key)

    # -- timers -------------------------------------------------------------
    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate wall-clock seconds under ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - started)

    def add_time(self, name: str, seconds: float, calls: int = 1) -> None:
        stat = self._timers.setdefault(name, {"seconds": 0.0, "calls": 0})
        stat["seconds"] += seconds
        stat["calls"] += calls

    def seconds(self, name: str) -> float:
        return self._timers.get(name, {}).get("seconds", 0.0)

    # -- snapshot / merge ---------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A JSON-compatible dump of every counter, timer, and event."""
        out: dict[str, Any] = {
            "counters": {
                section: dict(counter)
                for section, counter in self._counters.items()
                if counter
            },
            "timers": {
                name: dict(stat) for name, stat in self._timers.items()
            },
        }
        if self._events:
            out["events"] = self.events()
        return out

    def merge(self, snapshot: "Telemetry | dict[str, Any]") -> "Telemetry":
        """Fold another sink (or its :meth:`snapshot`) into this one."""
        if isinstance(snapshot, Telemetry):
            snapshot = snapshot.snapshot()
        for section, counter in snapshot.get("counters", {}).items():
            for key, value in counter.items():
                self._counters[section][key] += value
        for name, stat in snapshot.get("timers", {}).items():
            self.add_time(
                name, stat.get("seconds", 0.0), int(stat.get("calls", 0))
            )
        self._events.extend(
            dict(event) for event in snapshot.get("events", [])
        )
        return self

    @staticmethod
    def from_snapshot(snapshot: dict[str, Any]) -> "Telemetry":
        return Telemetry().merge(snapshot)

    # -- derived views ------------------------------------------------------
    def pipelines(self) -> list[str]:
        """Every pipeline name seen by any counter section."""
        names: set[str] = set()
        for section in ("attempts", "successes", "rejects", "drops",
                        "shortfalls"):
            for key in self._counters.get(section, {}):
                names.add(key.split("/", 1)[0])
        names.update(self._counters.get("emitted", {}))
        return sorted(names)

    def reconciles(self, pipeline: str) -> bool:
        """attempts == successes + rejects for ``pipeline``.

        Every sampler attempt must end in exactly one of the two; a
        False return means a pipeline forgot to report an outcome.
        """
        attempts = sum(self.keys_under("attempts", pipeline).values())
        successes = sum(self.keys_under("successes", pipeline).values())
        rejects = sum(self.keys_under("rejects", pipeline).values())
        return attempts == successes + rejects

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        totals = {s: self.count(s) for s in SECTIONS if self.count(s)}
        return f"Telemetry({totals})"
