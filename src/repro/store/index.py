"""The inverted index over a table store, and its parallel build job.

Index schema
------------
One JSON document (``index/index.json`` + integrity sidecar) holding

* ``doc_meta`` — ``[ordinal, uid, title, length]`` per document, in
  ordinal order (``length`` is the weighted term mass BM25 normalizes
  by),
* ``postings`` — term → ``[[ordinal, weighted_tf], …]`` with ordinals
  ascending,
* ``avgdl`` / ``docs`` — the corpus statistics scoring needs,
* ``shards`` — the name + SHA-256 of every shard the index was built
  from, which is how staleness is *detected* rather than assumed.

Terms are case-folded and fielded by weight, not by namespace: caption
and title tokens count ×3, column-name tokens ×2, cell values and
paragraph text ×1.  Cell terms come from the columnar substrate's
cached canonical keys (:meth:`ColumnVector.canonical_keys`): numbers
index under one canonical spelling (``"1,000"``, ``"1000"`` and
``1e3`` all become ``1000``), dates under ``YYYY-MM-DD``, booleans
under ``true``/``false``, and text cells under their case-folded word
tokens — the same canonicalization :func:`query_terms` applies to the
question, so surface-form mismatches cannot split the vocabulary.

Determinism and resume
----------------------
The build is a per-shard map followed by an ordered merge:

1. Every shard gets a **part file** (``index/parts/<shard>.part.json``
   + sidecar) that is a pure function of that shard's bytes and its
   start ordinal.  Parts are written atomically; a ``kill -9`` leaves
   at most an ignored ``*.tmp``.
2. A rebuild *skips* every part whose sidecar verifies and whose
   recorded shard SHA-256 still matches the store manifest — that is
   the whole checkpoint/resume story, inherited from the atomic-file
   discipline of :mod:`repro.runtime.checkpoint` rather than
   re-implemented.
3. The merge concatenates parts in shard order, so postings lists come
   out ordinal-ascending no matter which worker built which part, and
   the final index is serialized with sorted keys — **byte-identical
   at any worker count**, and byte-identical whether the store was
   filled in one ``add`` or a hundred.

Workers are OS processes (:class:`~concurrent.futures.ProcessPoolExecutor`
with the runtime's preferred start method); each shard build runs under
the runtime's :class:`~repro.runtime.retry.RetryPolicy` so one flaky
read does not kill an hours-long build.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any

from repro.errors import IntegrityError, StoreError
from repro.fsio import atomic_write_text
from repro.models.features import extract_numbers, tokenize
from repro.runtime.retry import RetryPolicy, run_with_retry
from repro.store.store import ShardRecord, TableStore
from repro.tables.context import TableContext
from repro.validate.manifest import verify_manifest, write_manifest

#: bump when the index layout changes incompatibly.
INDEX_SCHEMA_VERSION = 1

INDEX_KIND = "uctr-table-index"
PART_KIND = "uctr-index-part"

#: ``record_kind`` in the sidecars (index = docs, part = docs in shard).
INDEX_RECORD_KIND = "table-index"
PART_RECORD_KIND = "table-index-part"

INDEX_DIR = "index"
PART_DIR = "parts"
INDEX_NAME = "index.json"

#: field weights (caption/title > column names > cells/paragraphs).
CAPTION_WEIGHT = 3.0
HEADER_WEIGHT = 2.0
CELL_WEIGHT = 1.0
TEXT_WEIGHT = 1.0

#: test-only hook: sleep this many seconds inside each part build, so
#: fault tests can land a ``kill -9`` mid-build deterministically.
PART_DELAY_ENV = "REPRO_STORE_PART_DELAY_S"


def number_term(value: float) -> str:
    """The canonical index term for a numeric value.

    ``%g`` collapses every surface spelling of the same number —
    ``1,000`` in a cell and ``1000`` in a question meet at ``"1000"``.
    """
    return format(value, "g")


def date_term(year: int, month: int, day: int) -> str:
    return f"{year:04d}-{month:02d}-{day:02d}"


def _charge(terms: dict[str, float], tokens: list[str], weight: float) -> None:
    for token in tokens:
        terms[token] = terms.get(token, 0.0) + weight


def document_terms(context: TableContext) -> dict[str, float]:
    """Weighted term frequencies for one stored context.

    Cell terms lean on the columnar substrate: each column's cached
    ``canonical_keys()`` gives the already case-folded, already typed
    per-cell keys, so indexing shares both the work and the equality
    semantics of the SQL executor's DISTINCT.
    """
    table = context.table
    terms: dict[str, float] = {}
    _charge(terms, tokenize(table.title), CAPTION_WEIGHT)
    _charge(terms, tokenize(table.caption), CAPTION_WEIGHT)
    for name in table.column_names:
        _charge(terms, tokenize(name), HEADER_WEIGHT)
    view = table.columnar()
    for vector in view.vectors():
        validity = vector.validity()
        for index, key in enumerate(vector.canonical_keys()):
            if not validity[index]:
                continue
            kind = key[0]
            if kind == "num":
                _charge(terms, [number_term(key[1])], CELL_WEIGHT)
            elif kind == "date":
                year, month, day = key[1]
                _charge(terms, [date_term(year, month, day)], CELL_WEIGHT)
            elif kind == "bool":
                _charge(
                    terms, ["true" if key[1] else "false"], CELL_WEIGHT
                )
            else:  # text: the canonical key carries the folded raw form
                _charge(terms, tokenize(key[1]), CELL_WEIGHT)
    for paragraph in context.paragraphs:
        _charge(terms, tokenize(paragraph.text), TEXT_WEIGHT)
    return terms


def query_terms(question: str) -> list[str]:
    """Index-side canonicalization of a question (dedup, order kept)."""
    seen: dict[str, None] = {}
    for token in tokenize(question):
        seen.setdefault(token)
    for value in extract_numbers(question):
        seen.setdefault(number_term(value))
    return list(seen)


# -- part files --------------------------------------------------------------


def part_path_for(root: str | Path, shard_name: str) -> Path:
    stem = shard_name.rsplit(".", 1)[0]
    return Path(root) / INDEX_DIR / PART_DIR / f"{stem}.part.json"


def _part_generator(shard: ShardRecord, start: int) -> dict[str, Any]:
    return {
        "shard": shard.name,
        "shard_sha256": shard.data_sha256,
        "start": start,
    }


def part_is_current(
    root: str | Path, shard: ShardRecord, start: int
) -> bool:
    """True when the shard's part exists, verifies, and is not stale."""
    path = part_path_for(root, shard.name)
    if not path.exists():
        return False
    try:
        manifest = verify_manifest(path, required=True)
    except IntegrityError:
        return False
    return manifest.generator == _part_generator(shard, start)


def build_part(root: str | Path, shard_name: str) -> dict[str, Any]:
    """Build one shard's index part (atomic write + sidecar).

    Pure function of the shard's bytes and its start ordinal: the same
    shard always produces the same part bytes, which is what makes the
    merged index invariant to worker count and to resume.
    """
    delay = float(os.environ.get(PART_DELAY_ENV, "0") or 0)
    if delay > 0:
        time.sleep(delay)
    store = TableStore.open(root)
    record = next(
        (shard for shard in store.shards() if shard.name == shard_name),
        None,
    )
    if record is None:
        raise StoreError(f"unknown shard {shard_name!r} in {root}")
    start = store.shard_start(shard_name)
    rows = store.read_shard(shard_name)
    doc_meta: list[list[Any]] = []
    postings: dict[str, list[list[Any]]] = {}
    for payload in rows:
        ordinal = int(payload["doc"])
        context = TableContext.from_json(payload["context"])
        terms = document_terms(context)
        length = sum(terms.values())
        doc_meta.append(
            [ordinal, context.uid, context.table.title, round(length, 4)]
        )
        for term in sorted(terms):
            postings.setdefault(term, []).append(
                [ordinal, round(terms[term], 4)]
            )
    part = {
        "schema_version": INDEX_SCHEMA_VERSION,
        "kind": PART_KIND,
        "shard": shard_name,
        "shard_sha256": record.data_sha256,
        "start": start,
        "doc_meta": doc_meta,
        "postings": postings,
    }
    path = part_path_for(root, shard_name)
    atomic_write_text(
        path,
        json.dumps(part, sort_keys=True, separators=(",", ":"),
                   ensure_ascii=False) + "\n",
    )
    write_manifest(
        path,
        record_kind=PART_RECORD_KIND,
        records=len(doc_meta),
        generator=_part_generator(record, start),
    )
    return {"shard": shard_name, "docs": len(doc_meta),
            "terms": len(postings)}


def _part_job(root: str, shard_name: str, max_attempts: int) -> str:
    """Worker entry point (picklable): build one part with retries."""
    run_with_retry(
        lambda _attempt: build_part(root, shard_name),
        RetryPolicy(max_attempts=max_attempts, backoff_base=0.05),
    )
    return shard_name


def _load_part(root: str | Path, shard: ShardRecord) -> dict[str, Any]:
    path = part_path_for(root, shard.name)
    verify_manifest(path, required=True)
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("shard_sha256") != shard.data_sha256:
        raise IntegrityError(
            "index part was built from different shard bytes",
            path=str(path),
        )
    return payload


# -- the merged index --------------------------------------------------------


def index_path_for(root: str | Path) -> Path:
    return Path(root) / INDEX_DIR / INDEX_NAME


def build_index(
    root: str | Path,
    *,
    workers: int = 1,
    telemetry: Any = None,
    max_attempts: int = 3,
) -> dict[str, Any]:
    """(Re)build the inverted index for the store at ``root``.

    Naturally resumable: parts that already verify against the current
    shard bytes are reused, everything else is (re)built — so re-running
    after *any* interruption, including ``kill -9``, continues instead
    of starting over, and the final index bytes are identical either
    way.  Returns a summary dict.
    """
    if workers < 1:
        raise StoreError("workers must be >= 1")
    store = TableStore.open(root)
    root = store.root
    shards = store.shards()
    starts: dict[str, int] = {}
    start = 0
    for shard in shards:
        starts[shard.name] = start
        start += shard.records
    pending = [
        shard.name for shard in shards
        if not part_is_current(root, shard, starts[shard.name])
    ]
    reused = len(shards) - len(pending)
    started_at = time.perf_counter()
    if pending:
        if workers > 1 and len(pending) > 1:
            import multiprocessing

            from repro.parallel import pick_start_method

            context = multiprocessing.get_context(pick_start_method())
            with ProcessPoolExecutor(
                max_workers=min(workers, len(pending)),
                mp_context=context,
            ) as executor:
                for _ in executor.map(
                    _part_job,
                    [str(root)] * len(pending),
                    pending,
                    [max_attempts] * len(pending),
                ):
                    pass
        else:
            for shard_name in pending:
                _part_job(str(root), shard_name, max_attempts)
    # ordered merge: shard order == ordinal order, any worker schedule.
    doc_meta: list[list[Any]] = []
    postings: dict[str, list[list[Any]]] = {}
    for shard in shards:
        part = _load_part(root, shard)
        doc_meta.extend(part["doc_meta"])
        for term, entries in part["postings"].items():
            postings.setdefault(term, []).extend(entries)
    docs = len(doc_meta)
    total_length = sum(entry[3] for entry in doc_meta)
    payload = {
        "schema_version": INDEX_SCHEMA_VERSION,
        "kind": INDEX_KIND,
        "docs": docs,
        "avgdl": round(total_length / docs, 6) if docs else 0.0,
        "doc_meta": doc_meta,
        "postings": postings,
        "shards": [
            {"name": shard.name, "data_sha256": shard.data_sha256}
            for shard in shards
        ],
    }
    path = index_path_for(root)
    text = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ) + "\n"
    atomic_write_text(path, text)
    write_manifest(
        path,
        record_kind=INDEX_RECORD_KIND,
        records=docs,
        generator={"shards": payload["shards"]},
    )
    elapsed = time.perf_counter() - started_at
    if telemetry is not None:
        telemetry.increment("store", "index_builds")
        telemetry.increment("store", "parts_built", len(pending))
        telemetry.increment("store", "parts_reused", reused)
        telemetry.increment("store", "docs_indexed", docs)
    return {
        "docs": docs,
        "terms": len(postings),
        "shards": len(shards),
        "parts_built": len(pending),
        "parts_reused": reused,
        "workers": workers,
        "build_s": round(elapsed, 3),
        "index_bytes": len(text.encode("utf-8")),
    }


class StoreIndex:
    """The parsed, verified inverted index of one store."""

    def __init__(self, payload: dict[str, Any]):
        self.docs: int = int(payload["docs"])
        self.avgdl: float = float(payload["avgdl"])
        #: ordinal -> (uid, title, length)
        self.doc_meta: dict[int, tuple[str, str, float]] = {
            int(entry[0]): (str(entry[1]), str(entry[2]), float(entry[3]))
            for entry in payload["doc_meta"]
        }
        self.postings: dict[str, list[tuple[int, float]]] = {
            term: [(int(doc), float(tf)) for doc, tf in entries]
            for term, entries in payload["postings"].items()
        }
        self.shards: list[dict[str, str]] = list(payload["shards"])


def load_index(root: str | Path, *, store: TableStore | None = None) -> StoreIndex:
    """Load and verify the index at ``root``; refuse stale or damaged.

    ``store`` (opened separately or passed in) provides the current
    shard fingerprints; an index built from different bytes raises
    :class:`StoreError` telling the operator to rebuild, because
    serving scores from a stale index would silently mis-rank.
    """
    store = store or TableStore.open(root)
    path = index_path_for(store.root)
    if not path.exists():
        raise StoreError(
            f"no index at {path} (run `repro store build` first)"
        )
    verify_manifest(path, required=True)
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("kind") != INDEX_KIND or payload.get(
        "schema_version"
    ) != INDEX_SCHEMA_VERSION:
        raise StoreError(f"{path} is not a readable {INDEX_KIND}")
    current = [
        {"name": shard.name, "data_sha256": shard.data_sha256}
        for shard in store.shards()
    ]
    if payload.get("shards") != current:
        raise StoreError(
            f"index at {path} is stale: the store's shards changed "
            "since it was built (run `repro store build` to refresh)"
        )
    return StoreIndex(payload)
