"""The table corpus store: persistence, indexing, ranked retrieval.

The corpus layer under ``POST /v1/ask`` — the paper's pipeline assumes
the relevant table arrives with every request; production serving must
first *find* it among millions.  This package is that substrate:

* :mod:`repro.store.store` — :class:`TableStore`: append-only JSONL
  shards + an atomic, self-digesting store manifest, each shard under a
  SHA-256 integrity sidecar (the model registry's tamper-refusal
  contract applied to corpora).  Reads verify; damage raises a typed
  :class:`~repro.errors.IntegrityError`.
* :mod:`repro.store.index` — the inverted index over case-folded cell
  canonical keys, column names, and captions, built as a
  checkpoint/resume-capable parallel job (per-shard atomic part files,
  ordered merge): byte-identical output at any worker count, safe
  under ``kill -9``.
* :mod:`repro.store.retrieval` — :class:`Retriever`: BM25 ranking over
  the index, feeding the top table to the existing QA model.
* :mod:`repro.store.synth` — deterministic synthetic corpora with
  known gold tables, for the recall benchmarks and smoke tests.

CLI: ``repro store build|add|query|verify`` and ``repro serve --store``.
"""

from repro.store.index import (
    StoreIndex,
    build_index,
    build_part,
    document_terms,
    load_index,
    query_terms,
)
from repro.store.retrieval import (
    DEFAULT_TOP_K,
    RetrievalHit,
    Retriever,
)
from repro.store.store import (
    DEFAULT_SHARD_SIZE,
    ShardRecord,
    TableStore,
    doc_id_for,
    open_or_create,
    ordinal_for,
)
from repro.store.synth import (
    GoldQuestion,
    gold_questions,
    synth_corpus,
    synth_table_context,
)

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "DEFAULT_TOP_K",
    "GoldQuestion",
    "RetrievalHit",
    "Retriever",
    "ShardRecord",
    "StoreIndex",
    "TableStore",
    "build_index",
    "build_part",
    "doc_id_for",
    "document_terms",
    "gold_questions",
    "load_index",
    "open_or_create",
    "ordinal_for",
    "query_terms",
    "synth_corpus",
    "synth_table_context",
]
