"""BM25 ranked retrieval over a store's inverted index.

The scoring is textbook Okapi BM25 (k1 = 1.5, b = 0.75) with the
robust idf form ``ln(1 + (N - df + 0.5) / (df + 0.5))``, applied to
the *weighted* term frequencies the indexer recorded (caption ×3,
headers ×2, cells ×1) — so a question word that hits a table's caption
outranks the same word buried in a cell, without a separate fielded
query language.

Determinism: scores are pure arithmetic over the index, and ties break
on ascending ordinal — two stores with byte-identical indexes return
byte-identical rankings, which the worker-count property test relies
on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import StoreError
from repro.store.index import StoreIndex, load_index, query_terms
from repro.store.store import TableStore, doc_id_for
from repro.tables.context import TableContext
from repro.tables.serialize import linearize_table

#: BM25 shape parameters (the standard Robertson/Okapi defaults).
BM25_K1 = 1.5
BM25_B = 0.75

#: default result depth for /v1/ask and `repro store query`.
DEFAULT_TOP_K = 5


@dataclass(frozen=True)
class RetrievalHit:
    """One ranked retrieval result."""

    doc_id: str
    ordinal: int
    uid: str
    title: str
    score: float

    def to_json(self) -> dict[str, Any]:
        return {
            "doc_id": self.doc_id,
            "uid": self.uid,
            "title": self.title,
            "score": round(self.score, 4),
        }


class Retriever:
    """A store + its index, ready to answer ``search``/``fetch``.

    Construct via :meth:`open` (verifies the store manifest and refuses
    a stale index) or directly from an already-open pair.
    """

    def __init__(self, store: TableStore, index: StoreIndex):
        self.store = store
        self.index = index

    @classmethod
    def open(cls, root: str | Path) -> "Retriever":
        store = TableStore.open(root)
        return cls(store, load_index(root, store=store))

    @property
    def doc_count(self) -> int:
        return self.index.docs

    def search(
        self, question: str, *, k: int = DEFAULT_TOP_K
    ) -> list[RetrievalHit]:
        """Top-``k`` tables for a question, best first.

        An empty result means no indexed table shares a single term
        with the question — the ``retrieval_miss`` case upstream.
        """
        if k < 1:
            raise StoreError("k must be >= 1")
        index = self.index
        if index.docs == 0:
            return []
        scores: dict[int, float] = {}
        for term in query_terms(question):
            entries = index.postings.get(term)
            if not entries:
                continue
            df = len(entries)
            idf = math.log(
                1.0 + (index.docs - df + 0.5) / (df + 0.5)
            )
            for ordinal, tf in entries:
                length = index.doc_meta[ordinal][2]
                denom = tf + BM25_K1 * (
                    1.0 - BM25_B + BM25_B * length / max(index.avgdl, 1e-9)
                )
                scores[ordinal] = scores.get(ordinal, 0.0) + idf * (
                    tf * (BM25_K1 + 1.0) / denom
                )
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        out: list[RetrievalHit] = []
        for ordinal, score in ranked[:k]:
            uid, title, _length = index.doc_meta[ordinal]
            out.append(RetrievalHit(
                doc_id=doc_id_for(ordinal), ordinal=ordinal,
                uid=uid, title=title, score=score,
            ))
        return out

    def fetch(self, doc_id: str) -> TableContext:
        """The stored context behind a hit (verified shard read)."""
        return self.store.get(doc_id)

    def passage(self, doc_id: str, *, max_rows: int | None = 2) -> str:
        """The passage linearization of a stored table (provenance)."""
        context = self.fetch(doc_id)
        return linearize_table(
            context.table, max_rows=max_rows, style="passage"
        )
