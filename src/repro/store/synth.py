"""Deterministic synthetic corpora with known gold tables.

The retrieval benchmark needs a corpus where every question has exactly
one *intended* table, so recall@k is measurable without human labels.
:func:`synth_corpus` builds tables whose discriminating vocabulary is
synthetic-but-word-like: entity and company names are composed from a
fixed syllable inventory (``"rovintas"``, ``"melkado"``…), giving a
name space large enough that a (company, entity) pair is essentially
unique across tens of thousands of tables, while the *rest* of the
vocabulary — column names, cities, sectors — is deliberately shared
across the whole corpus, so ranking has realistic noise to beat rather
than a trivially disjoint vocabulary.

Everything draws from named RNG streams (:func:`repro.rng.rng_from_key`)
keyed by ``(seed, index)``: table ``i`` of seed ``s`` is identical on
every machine, worker count, and Python version — the property the
byte-identical-index tests build on.

:func:`gold_questions` asks about one cell of one table, phrased the
way the loadgen phrases QA questions, and anchored with the table's
company name so the question names its table without quoting an id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.rng import rng_from_key
from repro.tables.context import Paragraph, TableContext
from repro.tables.table import Table

_SYLLABLES = (
    "ka", "ro", "vin", "tas", "mel", "dor", "fen", "lu", "zar", "bex",
    "qui", "nor", "sal", "tep", "gri", "mo", "hav", "yel", "dra", "pon",
    "cu", "rix", "ald", "ster", "uma", "jeth", "ov", "wen", "kip", "zol",
    "arn", "bla", "cev", "dug", "eri", "fos", "gan", "hul", "ivo", "jas",
)

_SECTORS = (
    "quarterly", "annual", "regional", "interim", "operations",
    "logistics", "production", "sales",
)

_METRICS = (
    "revenue", "units", "profit", "headcount", "rating", "backlog",
    "uptime", "margin",
)

_CITIES = (
    "lisbon", "oslo", "nairobi", "quito", "osaka", "perth", "austin",
    "leipzig", "tunis", "bogota", "hanoi", "turku", "adelaide",
    "calgary", "porto", "riga", "malmo", "davao", "cusco", "tartu",
)


def _word(rng, syllables: int = 3) -> str:
    return "".join(
        _SYLLABLES[rng.randrange(len(_SYLLABLES))]
        for _ in range(syllables)
    )


def synth_table_context(seed: int, index: int) -> TableContext:
    """Table ``index`` of the seed's corpus (pure function of both)."""
    rng = rng_from_key(str(seed), "store-synth", str(index))
    company = _word(rng)
    sector = _SECTORS[rng.randrange(len(_SECTORS))]
    metrics = sorted(rng.sample(_METRICS, 2))
    header = ["name", *metrics, "city"]
    n_rows = 4 + rng.randrange(4)
    rows: list[list[str]] = []
    for _ in range(n_rows):
        entity = _word(rng)
        values = [str(100 + rng.randrange(9900)) for _ in metrics]
        city = _CITIES[rng.randrange(len(_CITIES))]
        rows.append([entity, *values, city])
    table = Table.from_rows(
        header,
        rows,
        title=f"{company} {sector} report",
        caption=f"performance figures reported by {company}",
        row_name_column="name",
    )
    paragraph = Paragraph(
        text=(
            f"{company} filed its {sector} report covering "
            f"{n_rows} teams."
        ),
        source="synth",
    )
    return TableContext(
        table=table,
        paragraphs=(paragraph,),
        uid=f"synth-{seed}-{index:06d}",
        meta={"generator": "store-synth", "seed": seed, "index": index},
    )


def synth_corpus(
    n_tables: int, *, seed: int = 0
) -> Iterator[TableContext]:
    """``n_tables`` deterministic contexts (lazily, for big corpora)."""
    for index in range(n_tables):
        yield synth_table_context(seed, index)


@dataclass(frozen=True)
class GoldQuestion:
    """A question with its known intended table and answer cell."""

    question: str
    uid: str
    answer: str

    def to_json(self) -> dict[str, Any]:
        return {
            "question": self.question,
            "uid": self.uid,
            "answer": self.answer,
        }


def gold_questions(
    n_questions: int,
    *,
    corpus_size: int,
    seed: int = 0,
) -> list[GoldQuestion]:
    """Questions whose gold table is known by construction.

    Question ``j`` targets a deterministic table of the same seed's
    corpus, asks for one metric cell of one row, and anchors the
    company name from the table's title — the signal that makes the
    gold table retrievable among ``corpus_size`` neighbors sharing the
    column/city vocabulary.
    """
    out: list[GoldQuestion] = []
    for j in range(n_questions):
        rng = rng_from_key(str(seed), "store-gold", str(j))
        index = rng.randrange(corpus_size)
        context = synth_table_context(seed, index)
        table = context.table
        row = rng.randrange(table.n_rows)
        metrics = [
            name for name in table.column_names
            if name not in ("name", "city")
        ]
        column = metrics[rng.randrange(len(metrics))]
        name = table.row_name(row)
        company = table.title.split()[0]
        out.append(GoldQuestion(
            question=(
                f"what is the {column} for {name} "
                f"in the {company} report ?"
            ),
            uid=context.uid,
            answer=table.cell(row, column).raw,
        ))
    return out
