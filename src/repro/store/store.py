"""The persistent sharded table store.

A store directory holds the corpus a ``/v1/ask`` deployment retrieves
from: every :class:`~repro.tables.context.TableContext` ever added, in
append-only JSONL shards, under exactly the tamper-refusal contract the
model registry established for artifacts —

* ``shards/shard-NNNNNN.jsonl`` — one document per line
  (``{"doc": ordinal, "context": TableContext.to_json()}``), plus a
  sidecar ``.manifest.json`` recording the shard's exact SHA-256 and
  byte count (:func:`repro.validate.manifest.write_manifest`).
* ``manifest.json`` — the store manifest: shard list with per-shard
  record counts and digests, total document count, shard size, and a
  self-digest (``manifest_sha256``) so a bit-flip inside the manifest is
  as detectable as one in a shard.  Written atomically
  (:mod:`repro.fsio`), always *after* the shards it describes.

Reads verify before trusting: a flipped byte, a truncated shard, a
dropped sidecar, or a store manifest that fails its self-digest all
surface as a typed :class:`~repro.errors.IntegrityError` — never as a
wrong answer three stages later.  Logical misuse (unknown doc id, not a
store directory) raises :class:`~repro.errors.StoreError`.

Crash recovery follows the redo-log discipline of
:mod:`repro.runtime.checkpoint`: appends go *data first, manifest
second*, so a crash mid-add can leave only a torn tail **beyond** what
the manifest records.  The next append truncates the tail shard back to
its manifested byte count and continues; readers never see the torn
region because every read is length-checked against the manifest.
Document ids are dense ordinals (``t00000042``), so the mapping from id
to ``(shard, line)`` is arithmetic, not an index lookup.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import FileFormatError, IntegrityError, StoreError
from repro.fsio import atomic_write_text, sha256_file, sha256_text
from repro.tables.context import TableContext
from repro.validate.manifest import verify_manifest, write_manifest

#: bump when the store layout changes incompatibly.
STORE_SCHEMA_VERSION = 1

#: the ``kind`` discriminator in the store manifest.
STORE_KIND = "uctr-table-store"

#: ``record_kind`` written into every shard's sidecar manifest.
SHARD_RECORD_KIND = "table-shard"

#: default documents per shard.
DEFAULT_SHARD_SIZE = 512

#: parsed shards kept hot for repeated :meth:`TableStore.get` calls.
_SHARD_CACHE_SLOTS = 8

STORE_MANIFEST_NAME = "manifest.json"
SHARD_DIR = "shards"


def doc_id_for(ordinal: int) -> str:
    """The document id of the ``ordinal``-th table ever added."""
    return f"t{ordinal:08d}"


def ordinal_for(doc_id: str) -> int:
    """Inverse of :func:`doc_id_for`; raises :class:`StoreError`."""
    if (
        not isinstance(doc_id, str)
        or len(doc_id) < 2
        or doc_id[0] != "t"
        or not doc_id[1:].isdigit()
    ):
        raise StoreError(f"malformed doc id {doc_id!r} (expected tNNNNNNNN)")
    return int(doc_id[1:])


@dataclass(frozen=True)
class ShardRecord:
    """One shard as the store manifest describes it."""

    name: str
    records: int
    data_sha256: str
    data_bytes: int

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "records": self.records,
            "data_sha256": self.data_sha256,
            "data_bytes": self.data_bytes,
        }


def _self_digest(payload: dict[str, Any]) -> str:
    body = {k: v for k, v in payload.items() if k != "manifest_sha256"}
    return sha256_text(
        json.dumps(body, sort_keys=True, separators=(",", ":"))
    )


def _dump_line(payload: dict[str, Any]) -> str:
    """The canonical one-line form every shard record is written in.

    Sorted keys and fixed separators make shard bytes a pure function
    of *content and append order* — which is what lets an index rebuilt
    from shards be byte-identical to one built incrementally.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ) + "\n"


class TableStore:
    """A verified, append-only corpus of tables on disk.

    Use :meth:`create` for a new directory and :meth:`open` for an
    existing one; both return a ready instance.  ``add`` appends,
    ``get`` retrieves by doc id, ``verify`` audits every byte.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        shard_size: int,
        shards: list[ShardRecord],
    ):
        self.root = Path(root)
        self.shard_size = shard_size
        self._shards = shards
        #: shard name -> parsed records, verified-at-load (bounded LRU).
        self._cache: dict[str, list[dict[str, Any]]] = {}

    # -- construction -------------------------------------------------------
    @classmethod
    def create(
        cls, root: str | Path, *, shard_size: int = DEFAULT_SHARD_SIZE
    ) -> "TableStore":
        """Initialize an empty store directory (idempotent-unfriendly:
        refuses a directory that already holds a store)."""
        root = Path(root)
        if (root / STORE_MANIFEST_NAME).exists():
            raise StoreError(
                f"{root} already holds a table store (open it instead)"
            )
        if shard_size < 1:
            raise StoreError("shard_size must be >= 1")
        (root / SHARD_DIR).mkdir(parents=True, exist_ok=True)
        store = cls(root, shard_size=shard_size, shards=[])
        store._write_store_manifest()
        return store

    @classmethod
    def open(cls, root: str | Path) -> "TableStore":
        """Open an existing store, verifying the manifest's self-digest."""
        root = Path(root)
        manifest_file = root / STORE_MANIFEST_NAME
        if not manifest_file.exists():
            raise StoreError(
                f"{root} is not a table store (no {STORE_MANIFEST_NAME}; "
                "create one with `repro store build`)"
            )
        try:
            payload = json.loads(manifest_file.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise IntegrityError(
                f"unreadable store manifest ({error})",
                path=str(manifest_file),
            ) from error
        if not isinstance(payload, dict) or payload.get("kind") != STORE_KIND:
            raise StoreError(
                f"{manifest_file} is not a {STORE_KIND} manifest"
            )
        if payload.get("manifest_sha256") != _self_digest(payload):
            raise IntegrityError(
                "store manifest failed its self-digest (the manifest "
                "itself is corrupt)",
                path=str(manifest_file),
            )
        if payload.get("schema_version") != STORE_SCHEMA_VERSION:
            raise StoreError(
                "unsupported store schema_version "
                f"{payload.get('schema_version')!r}"
            )
        try:
            shards = [
                ShardRecord(
                    name=str(entry["name"]),
                    records=int(entry["records"]),
                    data_sha256=str(entry["data_sha256"]),
                    data_bytes=int(entry["data_bytes"]),
                )
                for entry in payload["shards"]
            ]
            shard_size = int(payload["shard_size"])
        except (KeyError, TypeError, ValueError) as error:
            raise IntegrityError(
                f"malformed store manifest field ({error!r})",
                path=str(manifest_file),
            ) from error
        return cls(root, shard_size=shard_size, shards=shards)

    # -- introspection ------------------------------------------------------
    @property
    def doc_count(self) -> int:
        return sum(shard.records for shard in self._shards)

    def __len__(self) -> int:
        return self.doc_count

    def shards(self) -> list[ShardRecord]:
        """The manifest's shard list (copy; newest last)."""
        return list(self._shards)

    def shard_path(self, name: str) -> Path:
        return self.root / SHARD_DIR / name

    def shard_start(self, name: str) -> int:
        """Global ordinal of the first document in the named shard."""
        start = 0
        for shard in self._shards:
            if shard.name == name:
                return start
            start += shard.records
        raise StoreError(f"unknown shard {name!r} in {self.root}")

    # -- writes -------------------------------------------------------------
    def add(self, contexts: Iterable[TableContext]) -> list[str]:
        """Append contexts; returns their doc ids in order.

        Appends are fsynced before any manifest mentions them (data
        first, manifest second); a crash at any point leaves either the
        old manifest state (torn tail truncated on the next add) or the
        new one, never a readable half-write.
        """
        contexts = list(contexts)
        if not contexts:
            return []
        self._recover_tail()
        ordinal = self.doc_count
        doc_ids: list[str] = []
        touched: dict[str, int] = {}  # shard name -> records after append
        shards = list(self._shards)
        position = 0
        while position < len(contexts):
            if shards and shards[-1].records < self.shard_size:
                tail = shards[-1]
            else:
                tail = ShardRecord(
                    name=f"shard-{len(shards):06d}.jsonl",
                    records=0,
                    data_sha256="",
                    data_bytes=0,
                )
                shards.append(tail)
            room = self.shard_size - tail.records
            batch = contexts[position:position + room]
            path = self.shard_path(tail.name)
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("a", encoding="utf-8") as handle:
                for context in batch:
                    handle.write(_dump_line({
                        "doc": ordinal,
                        "context": context.to_json(),
                    }))
                    doc_ids.append(doc_id_for(ordinal))
                    ordinal += 1
                handle.flush()
                os.fsync(handle.fileno())
            new_count = tail.records + len(batch)
            shards[-1] = ShardRecord(
                name=tail.name, records=new_count,
                data_sha256="", data_bytes=0,
            )
            touched[tail.name] = new_count
            position += len(batch)
        # re-hash every touched shard and land its sidecar, then the
        # store manifest last — the commit point of the whole append.
        for index, shard in enumerate(shards):
            if shard.name not in touched:
                continue
            path = self.shard_path(shard.name)
            write_manifest(
                path,
                record_kind=SHARD_RECORD_KIND,
                records=touched[shard.name],
                generator={"store": STORE_KIND, "shard": shard.name},
            )
            digest, size = sha256_file(path)
            shards[index] = ShardRecord(
                name=shard.name, records=touched[shard.name],
                data_sha256=digest, data_bytes=size,
            )
        self._shards = shards
        self._cache.clear()
        self._write_store_manifest()
        return doc_ids

    def _recover_tail(self) -> None:
        """Truncate a torn append beyond the manifested tail-shard size.

        Bytes *past* ``data_bytes`` are an append that never committed
        (the redo-log case) and are safely discarded; a shard *shorter*
        than its manifest is real damage and refuses as corruption.
        """
        if not self._shards:
            return
        tail = self._shards[-1]
        path = self.shard_path(tail.name)
        if not path.is_file():
            raise IntegrityError(
                "manifest lists a shard that is missing on disk",
                path=str(path),
            )
        size = path.stat().st_size
        if size < tail.data_bytes:
            raise IntegrityError(
                f"tail shard truncated: manifest says {tail.data_bytes} "
                f"bytes, file has {size}",
                path=str(path),
            )
        if size > tail.data_bytes:
            with path.open("rb+") as handle:
                handle.truncate(tail.data_bytes)
                handle.flush()
                os.fsync(handle.fileno())

    def _write_store_manifest(self) -> None:
        payload: dict[str, Any] = {
            "schema_version": STORE_SCHEMA_VERSION,
            "kind": STORE_KIND,
            "shard_size": self.shard_size,
            "docs": self.doc_count,
            "shards": [shard.to_json() for shard in self._shards],
        }
        payload["manifest_sha256"] = _self_digest(payload)
        atomic_write_text(
            self.root / STORE_MANIFEST_NAME,
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
            + "\n",
        )

    # -- reads --------------------------------------------------------------
    def _shard_for(self, ordinal: int) -> tuple[ShardRecord, int]:
        """``(shard, offset within shard)`` for a global ordinal."""
        start = 0
        for shard in self._shards:
            if ordinal < start + shard.records:
                return shard, ordinal - start
            start += shard.records
        raise StoreError(
            f"doc {doc_id_for(ordinal)} not in store "
            f"(holds {self.doc_count} documents)"
        )

    def read_shard(self, name: str) -> list[dict[str, Any]]:
        """Verified parse of one whole shard (list of record payloads).

        Verification is two-layer: the sidecar manifest must match the
        bytes (flip/truncate detection) *and* agree with the store
        manifest's own record of the shard (so a swapped shard+sidecar
        pair from another store is refused too).
        """
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        record = next(
            (shard for shard in self._shards if shard.name == name), None
        )
        if record is None:
            raise StoreError(f"unknown shard {name!r} in {self.root}")
        path = self.shard_path(name)
        manifest = verify_manifest(path, required=True)
        if (
            manifest.data_sha256 != record.data_sha256
            or manifest.records != record.records
        ):
            raise IntegrityError(
                "shard sidecar disagrees with the store manifest "
                f"(sidecar: {manifest.records} records "
                f"sha {manifest.data_sha256[:12]}…; store: "
                f"{record.records} records sha "
                f"{record.data_sha256[:12]}…)",
                path=str(path),
            )
        rows: list[dict[str, Any]] = []
        with path.open("r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as error:
                    raise FileFormatError(
                        f"invalid JSON in shard: {error}",
                        path=str(path), line_number=number,
                    ) from error
                rows.append(payload)
        if len(rows) != record.records:
            raise IntegrityError(
                f"shard holds {len(rows)} records, manifest says "
                f"{record.records}",
                path=str(path),
            )
        while len(self._cache) >= _SHARD_CACHE_SLOTS:
            self._cache.pop(next(iter(self._cache)))
        self._cache[name] = rows
        return rows

    def get(self, doc_id: str) -> TableContext:
        """The stored context for a doc id (verified read)."""
        shard, offset = self._shard_for(ordinal_for(doc_id))
        payload = self.read_shard(shard.name)[offset]
        return TableContext.from_json(payload["context"])

    def iter_docs(self) -> Iterator[tuple[str, TableContext]]:
        """All ``(doc_id, context)`` pairs in insertion order."""
        for shard in self._shards:
            for payload in self.read_shard(shard.name):
                yield (
                    doc_id_for(int(payload["doc"])),
                    TableContext.from_json(payload["context"]),
                )

    def verify(self) -> dict[str, Any]:
        """Audit every shard against both manifest layers.

        Returns a summary dict; raises :class:`IntegrityError` on the
        first mismatch (tamper, truncation, dropped sidecar).
        """
        self._cache.clear()
        docs = 0
        for shard in self._shards:
            rows = self.read_shard(shard.name)
            expected = range(docs, docs + shard.records)
            actual = [int(payload["doc"]) for payload in rows]
            if actual != list(expected):
                raise IntegrityError(
                    f"shard ordinals {actual[:3]}… do not match their "
                    f"manifest position (expected to start at {docs})",
                    path=str(self.shard_path(shard.name)),
                )
            docs += shard.records
        self._cache.clear()
        return {
            "ok": True,
            "docs": docs,
            "shards": len(self._shards),
            "bytes": sum(shard.data_bytes for shard in self._shards),
        }


def open_or_create(
    root: str | Path, *, shard_size: int = DEFAULT_SHARD_SIZE
) -> TableStore:
    """Open ``root`` as a store, creating it when empty/absent."""
    root = Path(root)
    if (root / STORE_MANIFEST_NAME).exists():
        return TableStore.open(root)
    return TableStore.create(root, shard_size=shard_size)


def add_contexts(
    store: TableStore, contexts: Sequence[TableContext]
) -> list[str]:
    """Convenience wrapper mirroring :meth:`TableStore.add`."""
    return store.add(contexts)
