"""Program template substrate.

A *template* is a program with its table-specific parts abstracted into
placeholders: ``c1, c2, ...`` for columns and ``val1, val2, ...`` for
cell values, exactly as SQUALL writes them (paper Section IV-B).  The
template pools mirror the three sources the paper samples from —
SQUALL (SQL), Logic2Text (logical forms), and FinQA (arithmetic).
"""

from repro.templates.template import (
    Placeholder,
    PlaceholderKind,
    ProgramTemplate,
)
from repro.templates.extract import abstract_program, dedup_templates
from repro.templates.pools import (
    TemplatePool,
    squall_pool,
    logic2text_pool,
    finqa_pool,
    pool_for_kind,
)

__all__ = [
    "Placeholder",
    "PlaceholderKind",
    "ProgramTemplate",
    "abstract_program",
    "dedup_templates",
    "TemplatePool",
    "squall_pool",
    "logic2text_pool",
    "finqa_pool",
    "pool_for_kind",
]
