"""Abstraction: concrete programs → reusable templates.

This implements the paper's template collection step (Section IV-B):
given a concrete program written against one table, replace its column
names with ``c1, c2, ...`` and its cell values with ``val1, val2, ...``
(tied to the column they came from), then deduplicate by structural
signature ("different questions or claims may have the same underlying
logic structure ... dropping redundant program templates").
"""

from __future__ import annotations

from repro.errors import TemplateError
from repro.programs.arith.ast import (
    ArithProgram,
    CellRef,
    ColumnRef,
    NumberLiteral,
    StepRef,
)
from repro.programs.base import Program, ProgramKind
from repro.programs.logic.ops import OPERATORS
from repro.programs.logic.parser import LogicNode, LogicProgram
from repro.programs.sql.ast import ArithmeticItem, ColumnItem
from repro.programs.sql.parser import SqlProgram
from repro.tables.table import Table
from repro.templates.template import Placeholder, PlaceholderKind, ProgramTemplate


class _Namer:
    """Allocates stable placeholder names and records their specs."""

    def __init__(self, table: Table):
        self.table = table
        self.columns: dict[str, str] = {}  # column name -> placeholder
        self.placeholders: list[Placeholder] = []
        self._value_count = 0
        self._ordinal_count = 0

    def column(self, name: str) -> str:
        key = name.strip().lower()
        if key not in self.columns:
            token = f"c{len(self.columns) + 1}"
            self.columns[key] = token
            self.placeholders.append(
                Placeholder(
                    name=token,
                    kind=PlaceholderKind.COLUMN,
                    value_type=self.table.schema.column(name).type,
                )
            )
        return self.columns[key]

    def value(self, column: str) -> str:
        self._value_count += 1
        token = f"val{self._value_count}"
        self.placeholders.append(
            Placeholder(
                name=token,
                kind=PlaceholderKind.VALUE,
                column_ref=self.column(column),
            )
        )
        return token

    def rowname(self) -> str:
        self._value_count += 1
        token = f"val{self._value_count}"
        self.placeholders.append(
            Placeholder(name=token, kind=PlaceholderKind.ROWNAME)
        )
        return token

    def ordinal(self) -> str:
        self._ordinal_count += 1
        token = f"n{self._ordinal_count}"
        self.placeholders.append(
            Placeholder(name=token, kind=PlaceholderKind.ORDINAL)
        )
        return token


def abstract_program(
    program: Program, table: Table, category: str = "general", source: str = ""
) -> ProgramTemplate:
    """Abstract ``program`` (written against ``table``) into a template."""
    if isinstance(program, SqlProgram):
        return _abstract_sql(program, table, category, source)
    if isinstance(program, LogicProgram):
        return _abstract_logic(program, table, category, source)
    if isinstance(program, ArithProgram):
        return _abstract_arith(program, table, category, source)
    raise TemplateError(f"cannot abstract program of type {type(program).__name__}")


def dedup_templates(templates: list[ProgramTemplate]) -> list[ProgramTemplate]:
    """Drop templates with an identical structural signature."""
    seen: set[str] = set()
    unique: list[ProgramTemplate] = []
    for template in templates:
        signature = template.signature()
        if signature not in seen:
            seen.add(signature)
            unique.append(template)
    return unique


# -- SQL ---------------------------------------------------------------------

def _abstract_sql(
    program: SqlProgram, table: Table, category: str, source: str
) -> ProgramTemplate:
    namer = _Namer(table)
    query = program.query
    parts: list[str] = ["select"]
    for index, item in enumerate(query.items):
        if index:
            parts.append(",")
        if isinstance(item, ArithmeticItem):
            parts.append(_abstract_sql_item(item.left, namer))
            parts.append(item.op)
            parts.append(_abstract_sql_item(item.right, namer))
        else:
            parts.append(_abstract_sql_item(item, namer))
    parts.extend(["from", "w"])
    if query.conditions:
        parts.append("where")
        for index, condition in enumerate(query.conditions):
            if index:
                parts.append("and")
            token = namer.column(condition.column)
            value_token = namer.value(condition.column)
            parts.extend([token, condition.op.value, value_token])
    if query.order is not None:
        direction = "desc" if query.order.descending else "asc"
        parts.extend(["order", "by", namer.column(query.order.column), direction])
    if query.limit is not None:
        parts.extend(["limit", str(query.limit)])
    return ProgramTemplate(
        kind=ProgramKind.SQL,
        pattern=" ".join(parts),
        placeholders=tuple(namer.placeholders),
        category=category or _sql_category(program),
        source=source,
    )


def _abstract_sql_item(item: ColumnItem, namer: _Namer) -> str:
    if item.column == "*":
        inner = "*"
    else:
        inner = namer.column(item.column)
    if item.aggregate is None:
        return inner
    if item.distinct:
        inner = f"distinct {inner}"
    return f"{item.aggregate.value} ( {inner} )"


def _sql_category(program: SqlProgram) -> str:
    query = program.query
    aggregates = [
        item.aggregate.value
        for item in query.items
        if isinstance(item, ColumnItem) and item.aggregate is not None
    ]
    if any(isinstance(item, ArithmeticItem) for item in query.items):
        return "diff"
    if "count" in aggregates:
        return "count"
    if aggregates:
        return "aggregation"
    if query.order is not None and query.limit == 1:
        return "superlative"
    if len(query.conditions) > 1:
        return "conjunction"
    return "lookup"


# -- Logical forms -----------------------------------------------------------

def _abstract_logic(
    program: LogicProgram, table: Table, category: str, source: str
) -> ProgramTemplate:
    namer = _Namer(table)
    pattern = _abstract_logic_node(program.root, table, namer)
    meta: dict = {}
    result_slot = _logic_result_slot(program.root, namer)
    if result_slot is not None:
        meta["result_slot"] = result_slot
    return ProgramTemplate(
        kind=ProgramKind.LOGIC,
        pattern=pattern,
        placeholders=tuple(namer.placeholders),
        category=category or OPERATORS[program.root.op].category,
        source=source,
        meta=meta,
    )


def _abstract_logic_node(node: LogicNode | str, table: Table, namer: _Namer) -> str:
    if isinstance(node, str):
        return node
    spec = OPERATORS[node.op]
    rendered: list[str] = []
    for position, arg in enumerate(node.args):
        if isinstance(arg, LogicNode):
            rendered.append(_abstract_logic_node(arg, table, namer))
            continue
        text = arg.strip()
        if text.lower() == "all_rows":
            rendered.append("all_rows")
        elif _is_column_position(spec.name, position) and text in table.schema:
            rendered.append(namer.column(text))
        elif _is_filter_value_position(spec.name, position):
            # Tie the value to the filter's column (previous argument).
            column_arg = node.args[1]
            if isinstance(column_arg, str) and column_arg in table.schema:
                rendered.append(namer.value(column_arg))
            else:
                rendered.append(namer.rowname())
        elif text.replace(".", "", 1).lstrip("-").isdigit() and spec.category in (
            "ordinal",
        ):
            rendered.append(namer.ordinal())
        else:
            # Free value (root comparison target, hop result...).
            if text in table.schema:
                rendered.append(namer.column(text))
            else:
                rendered.append(namer.rowname())
    return f"{node.op} {{ {' ; '.join(rendered)} }}"


def _is_column_position(op: str, position: int) -> bool:
    spec = OPERATORS[op]
    if spec.category in ("filter", "aggregate", "superlative", "majority"):
        return position == 1
    if spec.category in ("hop", "ordinal"):
        return position == 1
    return False


def _is_filter_value_position(op: str, position: int) -> bool:
    spec = OPERATORS[op]
    if spec.category in ("filter", "majority") and spec.arity == 3:
        return position == 2
    return False


def _logic_result_slot(root: LogicNode, namer: _Namer) -> str | None:
    """Name of the placeholder standing for the root's expected result.

    For ``eq { <expr> ; X }``-shaped roots the second argument is
    determined by executing the first; the sampler fills it post-hoc.
    """
    if root.op in ("eq", "not_eq", "round_eq") and len(root.args) == 2:
        if isinstance(root.args[1], str):
            # The last allocated placeholder corresponds to that leaf.
            if namer.placeholders:
                return namer.placeholders[-1].name
    return None


# -- Arithmetic expressions ---------------------------------------------------

def _abstract_arith(
    program: ArithProgram, table: Table, category: str, source: str
) -> ProgramTemplate:
    namer = _Namer(table)
    rownames: dict[str, str] = {}
    parts: list[str] = []
    for step in program.steps:
        args: list[str] = []
        for arg in step.args:
            if isinstance(arg, NumberLiteral):
                args.append(arg.text())
            elif isinstance(arg, StepRef):
                args.append(arg.text())
            elif isinstance(arg, ColumnRef):
                args.append(namer.column(arg.column_name))
            elif isinstance(arg, CellRef):
                row, column = _orient_cell(arg, table)
                key = row.strip().lower()
                if key not in rownames:
                    rownames[key] = namer.rowname()
                args.append(f"the {rownames[key]} of {namer.column(column)}")
        parts.append(f"{step.op} ( {' , '.join(args)} )")
    return ProgramTemplate(
        kind=ProgramKind.ARITH,
        pattern=" , ".join(parts),
        placeholders=tuple(namer.placeholders),
        category=category or program.steps[-1].op,
        source=source,
    )


def _orient_cell(ref: CellRef, table: Table) -> tuple[str, str]:
    """Return (row name, column name) in table orientation."""
    if ref.column_name in table.schema:
        return ref.row_name, ref.column_name
    if ref.row_name in table.schema:
        return ref.column_name, ref.row_name
    raise TemplateError(
        f"cell reference {ref.text()!r} does not mention a known column"
    )
