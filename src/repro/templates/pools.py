"""Built-in template pools mirroring SQUALL, Logic2Text, and FinQA.

The paper collects templates from three parallel corpora (Section IV-B).
Those corpora are not available offline, so each pool below is a curated
inventory covering the same reasoning types: every SQL reasoning type of
Section II-C (equivalence, comparison, counting, sum, diff, conjunction),
every logical-form type (count, superlative, comparative, aggregation,
majority, unique, ordinal), and the FinQA operation set (add, subtract,
multiply, divide, greater, exp + table aggregations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import TemplateError
from repro.programs.base import ProgramKind
from repro.tables.values import ValueType
from repro.templates.template import Placeholder, PlaceholderKind, ProgramTemplate

_NUM = ValueType.NUMBER
_TXT = ValueType.TEXT


def _col(name: str, value_type: ValueType | None = None) -> Placeholder:
    return Placeholder(name=name, kind=PlaceholderKind.COLUMN, value_type=value_type)


def _val(name: str, column: str) -> Placeholder:
    return Placeholder(name=name, kind=PlaceholderKind.VALUE, column_ref=column)


def _row(name: str) -> Placeholder:
    return Placeholder(name=name, kind=PlaceholderKind.ROWNAME)


def _ord(name: str) -> Placeholder:
    return Placeholder(name=name, kind=PlaceholderKind.ORDINAL)


@dataclass(frozen=True)
class TemplatePool:
    """A named collection of program templates of one kind."""

    name: str
    kind: ProgramKind
    templates: tuple[ProgramTemplate, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for template in self.templates:
            if template.kind is not self.kind:
                raise TemplateError(
                    f"pool {self.name!r} holds {self.kind} templates but got "
                    f"{template.kind}"
                )

    def __len__(self) -> int:
        return len(self.templates)

    def __iter__(self):
        return iter(self.templates)

    def by_category(self, category: str) -> list[ProgramTemplate]:
        return [t for t in self.templates if t.category == category]

    @property
    def categories(self) -> list[str]:
        seen: list[str] = []
        for template in self.templates:
            if template.category not in seen:
                seen.append(template.category)
        return seen


def _sql_templates() -> list[ProgramTemplate]:
    make = lambda pattern, placeholders, category: ProgramTemplate(  # noqa: E731
        kind=ProgramKind.SQL,
        pattern=pattern,
        placeholders=tuple(placeholders),
        category=category,
        source="squall",
    )
    return [
        # equivalence / lookup (conditions bind on categorical columns,
        # as SQUALL's string-equality conditions overwhelmingly do)
        make("select c1 from w where c2 = val1",
             [_col("c1"), _col("c2", _TXT), _val("val1", "c2")], "lookup"),
        make("select c1 , c2 from w where c3 = val1",
             [_col("c1"), _col("c2"), _col("c3", _TXT), _val("val1", "c3")],
             "lookup"),
        # comparison via order by / limit (argmax, argmin)
        make("select c1 from w order by c2 desc limit 1",
             [_col("c1"), _col("c2", _NUM)], "superlative"),
        make("select c1 from w order by c2 asc limit 1",
             [_col("c1"), _col("c2", _NUM)], "superlative"),
        make("select c1 from w where c2 = val1 order by c3 desc limit 1",
             [_col("c1"), _col("c2", _TXT), _val("val1", "c2"),
              _col("c3", _NUM)], "superlative"),
        make("select c1 from w order by c2 desc limit n1",
             [_col("c1"), _col("c2", _NUM), _ord("n1")], "ordinal"),
        # numeric comparisons
        make("select c1 from w where c2 > val1",
             [_col("c1"), _col("c2", _NUM), _val("val1", "c2")], "comparative"),
        make("select c1 from w where c2 < val1",
             [_col("c1"), _col("c2", _NUM), _val("val1", "c2")], "comparative"),
        # counting
        make("select count ( * ) from w where c1 = val1",
             [_col("c1", _TXT), _val("val1", "c1")], "count"),
        make("select count ( * ) from w where c1 > val1",
             [_col("c1", _NUM), _val("val1", "c1")], "count"),
        make("select count ( * ) from w where c1 < val1",
             [_col("c1", _NUM), _val("val1", "c1")], "count"),
        make("select count ( distinct c1 ) from w",
             [_col("c1")], "count"),
        make("select count ( * ) from w where c1 = val1 and c2 = val2",
             [_col("c1"), _val("val1", "c1"), _col("c2"), _val("val2", "c2")],
             "count"),
        # aggregation: sum / avg / min / max
        make("select sum ( c1 ) from w",
             [_col("c1", _NUM)], "aggregation"),
        make("select sum ( c1 ) from w where c2 = val1",
             [_col("c1", _NUM), _col("c2", _TXT), _val("val1", "c2")],
             "aggregation"),
        make("select avg ( c1 ) from w",
             [_col("c1", _NUM)], "aggregation"),
        make("select avg ( c1 ) from w where c2 = val1",
             [_col("c1", _NUM), _col("c2", _TXT), _val("val1", "c2")],
             "aggregation"),
        make("select max ( c1 ) from w",
             [_col("c1", _NUM)], "aggregation"),
        make("select min ( c1 ) from w",
             [_col("c1", _NUM)], "aggregation"),
        make("select max ( c1 ) from w where c2 = val1",
             [_col("c1", _NUM), _col("c2", _TXT), _val("val1", "c2")],
             "aggregation"),
        # diff
        make("select max ( c1 ) - min ( c1 ) from w",
             [_col("c1", _NUM)], "diff"),
        # conjunction
        make("select c1 from w where c2 = val1 and c3 = val2",
             [_col("c1"), _col("c2", _TXT), _val("val1", "c2"), _col("c3"),
              _val("val2", "c3")], "conjunction"),
        make("select c1 from w where c2 = val1 and c3 > val2",
             [_col("c1"), _col("c2", _TXT), _val("val1", "c2"),
              _col("c3", _NUM), _val("val2", "c3")], "conjunction"),
    ]


def _logic_templates() -> list[ProgramTemplate]:
    def make(pattern, placeholders, category, result_slot=None):
        meta = {"result_slot": result_slot} if result_slot else {}
        return ProgramTemplate(
            kind=ProgramKind.LOGIC,
            pattern=pattern,
            placeholders=tuple(placeholders),
            category=category,
            source="logic2text",
            meta=meta,
        )

    return [
        # unique lookup: the row where c1=val1 has c2=val2
        make("eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; val2 }",
             [_col("c1", _TXT), _val("val1", "c1"), _col("c2"),
              _val("val2", "c2")],
             "lookup", result_slot="val2"),
        # count
        make("eq { count { filter_eq { all_rows ; c1 ; val1 } } ; n1 }",
             [_col("c1"), _val("val1", "c1"), _ord("n1")],
             "count", result_slot="n1"),
        make("eq { count { filter_greater { all_rows ; c1 ; val1 } } ; n1 }",
             [_col("c1", _NUM), _val("val1", "c1"), _ord("n1")],
             "count", result_slot="n1"),
        make("eq { count { filter_less { all_rows ; c1 ; val1 } } ; n1 }",
             [_col("c1", _NUM), _val("val1", "c1"), _ord("n1")],
             "count", result_slot="n1"),
        # superlative
        make("eq { hop { argmax { all_rows ; c1 } ; c2 } ; val1 }",
             [_col("c1", _NUM), _col("c2"), _val("val1", "c2")],
             "superlative", result_slot="val1"),
        make("eq { hop { argmin { all_rows ; c1 } ; c2 } ; val1 }",
             [_col("c1", _NUM), _col("c2"), _val("val1", "c2")],
             "superlative", result_slot="val1"),
        make("eq { max { all_rows ; c1 } ; val1 }",
             [_col("c1", _NUM), _val("val1", "c1")],
             "superlative", result_slot="val1"),
        make("eq { min { all_rows ; c1 } ; val1 }",
             [_col("c1", _NUM), _val("val1", "c1")],
             "superlative", result_slot="val1"),
        # comparative between two rows
        make("greater { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; "
             "hop { filter_eq { all_rows ; c1 ; val2 } ; c2 } }",
             [_col("c1", _TXT), _val("val1", "c1"), _col("c2", _NUM),
              _val("val2", "c1")], "comparative"),
        make("less { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; "
             "hop { filter_eq { all_rows ; c1 ; val2 } ; c2 } }",
             [_col("c1", _TXT), _val("val1", "c1"), _col("c2", _NUM),
              _val("val2", "c1")], "comparative"),
        # aggregation
        make("round_eq { sum { all_rows ; c1 } ; val1 }",
             [_col("c1", _NUM), _val("val1", "c1")],
             "aggregation", result_slot="val1"),
        make("round_eq { avg { all_rows ; c1 } ; val1 }",
             [_col("c1", _NUM), _val("val1", "c1")],
             "aggregation", result_slot="val1"),
        # majority
        make("most_eq { all_rows ; c1 ; val1 }",
             [_col("c1"), _val("val1", "c1")], "majority"),
        make("all_eq { all_rows ; c1 ; val1 }",
             [_col("c1"), _val("val1", "c1")], "majority"),
        make("most_greater { all_rows ; c1 ; val1 }",
             [_col("c1", _NUM), _val("val1", "c1")], "majority"),
        make("most_less { all_rows ; c1 ; val1 }",
             [_col("c1", _NUM), _val("val1", "c1")], "majority"),
        make("all_greater { all_rows ; c1 ; val1 }",
             [_col("c1", _NUM), _val("val1", "c1")], "majority"),
        # unique
        make("only { filter_eq { all_rows ; c1 ; val1 } }",
             [_col("c1"), _val("val1", "c1")], "unique"),
        # ordinal
        make("eq { nth_max { all_rows ; c1 ; n1 } ; val1 }",
             [_col("c1", _NUM), _ord("n1"), _val("val1", "c1")],
             "ordinal", result_slot="val1"),
        make("eq { hop { nth_argmax { all_rows ; c1 ; n1 } ; c2 } ; val1 }",
             [_col("c1", _NUM), _ord("n1"), _col("c2"), _val("val1", "c2")],
             "ordinal", result_slot="val1"),
        make("eq { hop { nth_argmin { all_rows ; c1 ; n1 } ; c2 } ; val1 }",
             [_col("c1", _NUM), _ord("n1"), _col("c2"), _val("val1", "c2")],
             "ordinal", result_slot="val1"),
        # conjunction of two facts about the same row
        make("and { eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; val2 } ; "
             "eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c3 } ; val3 } }",
             [_col("c1", _TXT), _val("val1", "c1"), _col("c2"),
              _val("val2", "c2"), _col("c3"), _val("val3", "c3")],
             "conjunction",
             result_slot="val3"),
        # comparative diff between two rows
        make("round_eq { diff { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; "
             "hop { filter_eq { all_rows ; c1 ; val2 } ; c2 } } ; val3 }",
             [_col("c1", _TXT), _val("val1", "c1"), _col("c2", _NUM),
              _val("val2", "c1"), _val("val3", "c2")], "comparative",
             result_slot="val3"),
    ]


def _arith_templates() -> list[ProgramTemplate]:
    make = lambda pattern, placeholders, category: ProgramTemplate(  # noqa: E731
        kind=ProgramKind.ARITH,
        pattern=pattern,
        placeholders=tuple(placeholders),
        category=category,
        source="finqa",
    )
    return [
        # change / difference
        make("subtract ( the val1 of c1 , the val2 of c1 )",
             [_row("val1"), _col("c1", _NUM), _row("val2")], "change"),
        make("subtract ( the val1 of c1 , the val1 of c2 )",
             [_row("val1"), _col("c1", _NUM), _col("c2", _NUM)], "change"),
        # percentage change
        make("subtract ( the val1 of c1 , the val2 of c1 ) , "
             "divide ( #0 , the val2 of c1 )",
             [_row("val1"), _col("c1", _NUM), _row("val2")], "pct_change"),
        make("subtract ( the val1 of c1 , the val1 of c2 ) , "
             "divide ( #0 , the val1 of c2 )",
             [_row("val1"), _col("c1", _NUM), _col("c2", _NUM)], "pct_change"),
        # ratio / proportion
        make("divide ( the val1 of c1 , the val2 of c1 )",
             [_row("val1"), _col("c1", _NUM), _row("val2")], "ratio"),
        make("divide ( the val1 of c1 , table_sum ( c1 ) )",
             [_row("val1"), _col("c1", _NUM)], "proportion"),
        # sums and averages
        make("add ( the val1 of c1 , the val2 of c1 )",
             [_row("val1"), _col("c1", _NUM), _row("val2")], "sum"),
        make("add ( the val1 of c1 , the val2 of c1 ) , divide ( #0 , const_2 )",
             [_row("val1"), _col("c1", _NUM), _row("val2")], "average"),
        make("add ( the val1 of c1 , the val1 of c2 )",
             [_row("val1"), _col("c1", _NUM), _col("c2", _NUM)], "sum"),
        make("table_sum ( c1 )", [_col("c1", _NUM)], "sum"),
        make("table_average ( c1 )", [_col("c1", _NUM)], "average"),
        make("table_max ( c1 )", [_col("c1", _NUM)], "superlative"),
        make("table_min ( c1 )", [_col("c1", _NUM)], "superlative"),
        make("subtract ( table_max ( c1 ) , table_min ( c1 ) )",
             [_col("c1", _NUM)], "range"),
        # comparison (yes / no)
        make("greater ( the val1 of c1 , the val2 of c1 )",
             [_row("val1"), _col("c1", _NUM), _row("val2")], "comparison"),
        make("greater ( the val1 of c1 , the val1 of c2 )",
             [_row("val1"), _col("c1", _NUM), _col("c2", _NUM)], "comparison"),
        # growth factor
        make("divide ( the val1 of c1 , the val1 of c2 ) , "
             "subtract ( #0 , const_1 )",
             [_row("val1"), _col("c1", _NUM), _col("c2", _NUM)], "pct_change"),
        # percentage expression (multiply by 100)
        make("divide ( the val1 of c1 , the val2 of c1 ) , "
             "multiply ( #0 , const_100 )",
             [_row("val1"), _col("c1", _NUM), _row("val2")], "ratio"),
        # two-period compound growth rate (exp with a fractional power)
        make("divide ( the val1 of c1 , the val1 of c2 ) , "
             "exp ( #0 , const_0_5 ) , subtract ( #1 , const_1 )",
             [_row("val1"), _col("c1", _NUM), _col("c2", _NUM)], "growth"),
    ]


@lru_cache(maxsize=None)
def squall_pool() -> TemplatePool:
    """SQL templates in the style of SQUALL (built once per process)."""
    return TemplatePool(
        name="squall", kind=ProgramKind.SQL, templates=tuple(_sql_templates())
    )


@lru_cache(maxsize=None)
def logic2text_pool() -> TemplatePool:
    """Logical-form templates in the style of Logic2Text (built once)."""
    return TemplatePool(
        name="logic2text",
        kind=ProgramKind.LOGIC,
        templates=tuple(_logic_templates()),
    )


@lru_cache(maxsize=None)
def finqa_pool() -> TemplatePool:
    """Arithmetic-expression templates in the style of FinQA (built once)."""
    return TemplatePool(
        name="finqa", kind=ProgramKind.ARITH, templates=tuple(_arith_templates())
    )


def pool_for_kind(kind: ProgramKind | str) -> TemplatePool:
    """The default pool for one program kind.

    Pools and their templates are immutable (frozen dataclasses holding
    tuples), so the memoized instances are shared safely: the hot path
    (:meth:`repro.pipelines.base.PipelineTools.templates`) used to
    rebuild ~65 template dataclasses per draw.
    """
    kind = ProgramKind(kind)
    if kind is ProgramKind.SQL:
        return squall_pool()
    if kind is ProgramKind.LOGIC:
        return logic2text_pool()
    return finqa_pool()
