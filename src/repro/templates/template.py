"""Placeholder model and the :class:`ProgramTemplate` type."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import TemplateError
from repro.programs.base import ProgramKind
from repro.tables.values import ValueType


class PlaceholderKind(str, Enum):
    """What a placeholder stands for."""

    COLUMN = "column"
    VALUE = "value"
    ORDINAL = "ordinal"  # small positive integers (nth_max ranks, limits)
    ROWNAME = "rowname"  # a row identifier from the table's row-name column


@dataclass(frozen=True)
class Placeholder:
    """One slot in a template.

    ``name`` is the surface token (``c1``, ``val2``, ``n1``).
    ``value_type`` constrains sampling: a ``c2_number`` SQUALL slot
    becomes ``Placeholder('c2', COLUMN, NUMBER)``.  ``column_ref`` on a
    VALUE placeholder names the column placeholder its values must be
    drawn from, preserving the paper's "for each column, sample the
    values in it" coupling.
    """

    name: str
    kind: PlaceholderKind
    value_type: ValueType | None = None
    column_ref: str | None = None

    def __post_init__(self) -> None:
        if self.kind is PlaceholderKind.VALUE and self.column_ref is None:
            raise TemplateError(
                f"value placeholder {self.name!r} must reference a column"
            )


_PLACEHOLDER_TOKEN_RE = re.compile(r"^(?:c\d+|val\d+|n\d+)$")


def is_placeholder_token(token: str) -> bool:
    """Whether a token is a placeholder surface form."""
    return _PLACEHOLDER_TOKEN_RE.match(token) is not None


@dataclass(frozen=True)
class ProgramTemplate:
    """An abstract program with typed placeholders.

    ``pattern`` is the program source with placeholder tokens in place
    of concrete columns/values; instantiation is plain string
    substitution followed by a real parse, so an instantiated template
    is always a valid program of ``kind``.
    """

    kind: ProgramKind
    pattern: str
    placeholders: tuple[Placeholder, ...]
    #: reasoning category (count/superlative/comparative/...), used for
    #: diversity accounting and the NL grammar.
    category: str = "general"
    #: free-form provenance tag (e.g. "squall", "logic2text", "finqa").
    source: str = ""
    meta: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        names = [placeholder.name for placeholder in self.placeholders]
        if len(set(names)) != len(names):
            raise TemplateError(f"duplicate placeholder names in {self.pattern!r}")
        for placeholder in self.placeholders:
            if not _mentions(self.pattern, placeholder.name):
                raise TemplateError(
                    f"placeholder {placeholder.name!r} does not occur in "
                    f"pattern {self.pattern!r}"
                )
            if placeholder.column_ref is not None and placeholder.column_ref not in names:
                raise TemplateError(
                    f"placeholder {placeholder.name!r} references unknown "
                    f"column placeholder {placeholder.column_ref!r}"
                )

    def __hash__(self) -> int:
        return hash((self.kind, self.pattern))

    @property
    def column_placeholders(self) -> list[Placeholder]:
        return [p for p in self.placeholders if p.kind is PlaceholderKind.COLUMN]

    @property
    def value_placeholders(self) -> list[Placeholder]:
        return [p for p in self.placeholders if p.kind is PlaceholderKind.VALUE]

    @property
    def ordinal_placeholders(self) -> list[Placeholder]:
        return [p for p in self.placeholders if p.kind is PlaceholderKind.ORDINAL]

    def substitute(self, bindings: dict[str, str]) -> str:
        """Fill every placeholder; raises on missing/extra bindings."""
        missing = {p.name for p in self.placeholders} - set(bindings)
        if missing:
            raise TemplateError(f"missing bindings for {sorted(missing)}")
        out = self.pattern
        # Longest names first so "val10" is not clobbered by "val1".
        for name in sorted(bindings, key=len, reverse=True):
            out = _replace_token(out, name, bindings[name])
        return out

    def signature(self) -> str:
        """Structural identity used for deduplication."""
        return f"{self.kind.value}::{self.pattern}"


def _mentions(pattern: str, name: str) -> bool:
    return re.search(rf"(?<![A-Za-z0-9_]){re.escape(name)}(?![A-Za-z0-9_])", pattern) is not None


def _replace_token(pattern: str, name: str, replacement: str) -> str:
    return re.sub(
        rf"(?<![A-Za-z0-9_]){re.escape(name)}(?![A-Za-z0-9_])",
        replacement.replace("\\", "\\\\"),
        pattern,
    )
