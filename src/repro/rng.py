"""Seeded randomness helpers.

All stochastic components of the pipeline (program sampling, dataset
synthesis, model initialization) draw from explicitly passed
:class:`random.Random` or :class:`numpy.random.Generator` instances so
that every experiment in ``repro.experiments`` is reproducible from a
single integer seed.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence, TypeVar

import numpy as np

T = TypeVar("T")

#: Seed used by experiments unless overridden.
DEFAULT_SEED = 20230413


def make_rng(seed: int | None = None) -> random.Random:
    """Return a fresh ``random.Random`` seeded deterministically."""
    return random.Random(DEFAULT_SEED if seed is None else seed)


def make_np_rng(seed: int | None = None) -> np.random.Generator:
    """Return a fresh numpy ``Generator`` seeded deterministically."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn(rng: random.Random, stream: str) -> random.Random:
    """Derive an independent child RNG from ``rng`` for a named stream.

    Deriving children by name keeps unrelated pipeline stages decoupled:
    adding a draw to one stage does not perturb the sequence seen by
    another.
    """
    return random.Random(spawn_key(rng, stream))


def spawn_key(rng: random.Random, stream: str) -> str:
    """The seed string :func:`spawn` would use, without building the RNG.

    Keys are plain strings, so they pickle cheaply across process
    boundaries; :func:`rng_from_key` rebuilds the exact child stream on
    the other side.  Note this *advances* ``rng`` (one 64-bit draw),
    just like :func:`spawn`.
    """
    return f"{rng.getrandbits(64)}:{stream}"


def rng_from_key(key: str, *parts: str) -> random.Random:
    """Rebuild (or further derive) a stream RNG from a spawn key.

    Extra ``parts`` extend the key with ``:``-joined segments — e.g.
    ``rng_from_key(pipeline_key, "context", "17")`` names the stream for
    the 18th context.  String seeding hashes with SHA-512 under
    ``random.seed(..., version=2)``, so the stream depends only on the
    key text: stable across processes, platforms and ``PYTHONHASHSEED``.
    """
    return random.Random(":".join((key,) + parts))


def choice(rng: random.Random, items: Sequence[T]) -> T:
    """``rng.choice`` with a clear error for empty sequences."""
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    return items[rng.randrange(len(items))]


def sample_up_to(rng: random.Random, items: Sequence[T], k: int) -> list[T]:
    """Sample ``min(k, len(items))`` distinct items."""
    k = min(k, len(items))
    return rng.sample(list(items), k)


def shuffled(rng: random.Random, items: Iterable[T]) -> list[T]:
    """Return a shuffled copy of ``items`` without mutating the input."""
    out = list(items)
    rng.shuffle(out)
    return out


def weighted_choice(
    rng: random.Random, items: Sequence[T], weights: Sequence[float]
) -> T:
    """Choose one item with the given (unnormalized) weights."""
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    return rng.choices(list(items), weights=list(weights), k=1)[0]
