"""Text-To-Table: extract a record from text and expand the table.

The operator (paper Section IV-A, Eq. 6) mirrors Wu et al.'s
text-to-table task with the integration step the paper adds: the
extracted one-record table is merged into the original table when it
shares the row-name or column structure.

The extractor is pattern-based: it scans sentences for
``the <column> is/was/of <value>`` clauses over the table's own column
vocabulary, plus an entity mention that acts as the new row's name.  A
row-name pre-filter selects candidate sentences, and extraction failures
raise :class:`~repro.errors.OperatorError` so the pipeline can discard
the sample (the paper's "a filtering step is also needed here").
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import OperatorError
from repro.tables.context import TableContext, split_sentences
from repro.tables.table import Table
from repro.tables.values import Value, parse_value


@dataclass(frozen=True)
class ExpandResult:
    """Outcome of a table expansion."""

    expanded_table: Table
    source_sentence: str
    new_row_index: int
    row_name: str


@dataclass(frozen=True)
class FullExpansion:
    """Outcome of integrating *every* extractable text record."""

    expanded_table: Table
    new_row_indices: tuple[int, ...]
    source_sentences: tuple[str, ...]

    @property
    def n_new_rows(self) -> int:
        return len(self.new_row_indices)


class RecordExtractor:
    """Extracts ``{column: value}`` records from one sentence."""

    #: clause forms: "the <col> is <val>", "<col> of <val>", "<col>: <val>"
    _CLAUSE = r"(?:the\s+)?{column}\s+(?:is|was|were|are|of|:)\s+(?P<value>[^,.;]+?)(?=\s+(?:and|,|\.|;|$))"

    def __init__(self, schema_columns: list[str]):
        if not schema_columns:
            raise OperatorError("extractor needs at least one column")
        self._columns = list(schema_columns)
        self._patterns = {
            column: re.compile(
                self._CLAUSE.format(column=re.escape(column)), re.IGNORECASE
            )
            for column in schema_columns
        }

    def extract(self, sentence: str) -> dict[str, Value]:
        """All ``column -> value`` assignments found in ``sentence``."""
        record: dict[str, Value] = {}
        for column, pattern in self._patterns.items():
            match = pattern.search(sentence)
            if match:
                raw = match.group("value").strip()
                if raw:
                    record[column] = parse_value(raw)
        return record

    def extract_record(
        self, sentence: str, name_column: str
    ) -> dict[str, Value]:
        """Clause extraction plus leading-entity row-name recovery.

        "For compound b , the yield is 4.2 ." assigns the row name from
        the sentence opener when no explicit ``name_column`` clause
        exists.
        """
        record = self.extract(sentence)
        if name_column not in record:
            entity = self.leading_entity(sentence)
            if entity is not None:
                record[name_column] = entity
        return record

    def leading_entity(self, sentence: str) -> Value | None:
        """Entity mention before the first clause, as a row name."""
        match = re.match(
            r"^\s*(?:for|in the case of|regarding|in)?\s*"
            r"([A-Za-z0-9][^,:]*?)\s*[,:]",
            sentence,
            re.IGNORECASE,
        )
        if match is None:
            return None
        candidate = match.group(1).strip()
        if not candidate or len(candidate) > 48:
            return None
        lowered = candidate.lower()
        if any(column.lower() in lowered for column in self._columns):
            return None
        return parse_value(candidate)


class TextToTable:
    """The ``f(T, P) -> T_expand`` operator."""

    def __init__(self, min_extracted_cells: int = 2):
        self._min_cells = min_extracted_cells

    def expand(self, context: TableContext) -> ExpandResult:
        """Expand the context's table with a record from its text."""
        table = context.table
        sentences = context.sentences
        if not sentences:
            raise OperatorError("context has no text to extract from")
        extractor = RecordExtractor(table.column_names)
        name_column = table.row_name_column or table.column_names[0]
        for sentence in self._candidate_sentences(table, sentences):
            record = extractor.extract_record(sentence, name_column)
            if name_column not in record:
                continue
            if len(record) < self._min_cells:
                continue
            if table.find_row_by_name(record[name_column].raw) is not None:
                continue  # the record is already in the table
            expanded = self._integrate(table, record, name_column)
            return ExpandResult(
                expanded_table=expanded,
                source_sentence=sentence,
                new_row_index=expanded.n_rows - 1,
                row_name=record[name_column].raw,
            )
        raise OperatorError("no sentence yielded an integrable record")

    def expand_all(self, context: TableContext) -> FullExpansion:
        """Integrate every extractable text record into the table.

        Aggregate programs (counts, sums) over the expanded table are
        only faithful to the *whole* context when no extractable record
        is left behind, so pipelines that run such programs expand
        exhaustively rather than one record at a time.
        """
        current = context
        new_rows: list[int] = []
        sentences: list[str] = []
        while True:
            try:
                step = self.expand(current)
            except OperatorError:
                break
            new_rows.append(step.new_row_index)
            sentences.append(step.source_sentence)
            current = current.with_table(step.expanded_table)
            if len(new_rows) >= 8:
                break
        if not new_rows:
            raise OperatorError("no sentence yielded an integrable record")
        return FullExpansion(
            expanded_table=current.table,
            new_row_indices=tuple(new_rows),
            source_sentences=tuple(sentences),
        )

    # -- internals ----------------------------------------------------------
    def _candidate_sentences(
        self, table: Table, sentences: list[str]
    ) -> list[str]:
        """Row-name filter: prefer sentences mentioning column names."""
        vocabulary = [column.lower() for column in table.column_names]
        scored: list[tuple[int, str]] = []
        for sentence in sentences:
            lowered = sentence.lower()
            score = sum(1 for column in vocabulary if column in lowered)
            if score:
                scored.append((score, sentence))
        scored.sort(key=lambda pair: -pair[0])
        return [sentence for _, sentence in scored]

    def _integrate(
        self, table: Table, record: dict[str, Value], name_column: str
    ) -> Table:
        """Merge the one-record table into the original (shared columns)."""
        cells = []
        filled = 0
        for column in table.schema:
            value = record.get(column.name)
            if value is None:
                cells.append(Value.null())
            else:
                cells.append(value)
                filled += 1
        if filled < self._min_cells:
            raise OperatorError("extracted record shares too few columns")
        return table.append_row(cells).retype()
