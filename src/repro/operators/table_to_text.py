"""Table-To-Text: split a table into a sub-table and a generated sentence.

Follows the paper: the operator picks one *highlighted* cell (a cell the
program's reasoning touched), verbalizes the row containing it in the
style of MQA-QG's ``DescribeEnt`` operator, removes that row from the
table, and applies a faithfulness filter — if important information from
the row is missing from the sentence, the split is discarded
(:class:`~repro.errors.OperatorError`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import OperatorError
from repro.rng import choice
from repro.tables.table import Table

#: sentence templates for DescribeEnt-style row verbalization.
_ROW_SENTENCE_OPENERS = [
    "For {name} , ",
    "In the case of {name} , ",
    "Regarding {name} , ",
    "{name} : ",
]


@dataclass(frozen=True)
class SplitResult:
    """Outcome of a table split."""

    sub_table: Table
    sentence: str
    row_index: int
    #: cells (row_index, column) moved out of the table into the text.
    moved_cells: frozenset[tuple[int, str]]


class TableToText:
    """The ``f(T) -> (T_sub, S)`` operator."""

    def __init__(self, min_described_cells: int = 2, max_described_cells: int = 6):
        self._min_cells = min_described_cells
        self._max_cells = max_described_cells

    def split(
        self,
        table: Table,
        highlighted_cells: frozenset[tuple[int, str]],
        rng: random.Random,
    ) -> SplitResult:
        """Split ``table`` on a highlighted row.

        The chosen row is the one containing a randomly selected
        highlighted cell; the sub-table keeps every other row.
        """
        if table.n_rows < 2:
            raise OperatorError("cannot split a table with fewer than 2 rows")
        highlighted_rows = sorted({row for row, _ in highlighted_cells})
        if not highlighted_rows:
            raise OperatorError("no highlighted cells to split on")
        row_index = choice(rng, highlighted_rows)
        sentence, described = self.describe_row(table, row_index, rng)
        self._check_faithful(table, row_index, highlighted_cells, described)
        sub_table = table.drop_row(row_index)
        moved = frozenset(
            (row_index, column) for column in described
        )
        return SplitResult(
            sub_table=sub_table,
            sentence=sentence,
            row_index=row_index,
            moved_cells=moved,
        )

    def describe_row(
        self, table: Table, row_index: int, rng: random.Random
    ) -> tuple[str, list[str]]:
        """DescribeEnt: verbalize one row; returns (sentence, columns used)."""
        name = table.row_name(row_index)
        if not name.strip():
            raise OperatorError(f"row {row_index} has no usable row name")
        name_column = table.row_name_column or table.column_names[0]
        described: list[str] = [name_column]
        clauses: list[str] = []
        for column in table.schema:
            if column.name == name_column:
                continue
            cell = table.cell(row_index, column.name)
            if cell.is_null:
                continue
            clauses.append(f"the {column.name} is {cell.raw}")
            described.append(column.name)
            if len(described) > self._max_cells:
                break
        if len(described) < self._min_cells:
            raise OperatorError(
                f"row {row_index} has too few non-null cells to describe"
            )
        opener = choice(rng, _ROW_SENTENCE_OPENERS).format(name=name)
        sentence = opener + " and ".join(clauses) + " ."
        sentence = " ".join(sentence.split())
        return sentence, described

    def _check_faithful(
        self,
        table: Table,
        row_index: int,
        highlighted_cells: frozenset[tuple[int, str]],
        described_columns: list[str],
    ) -> None:
        """The paper's filter: important info must survive verbalization.

        Every highlighted cell in the moved row must appear in the
        generated sentence, otherwise the evidence needed to answer the
        question would be silently destroyed.
        """
        described = {column.lower() for column in described_columns}
        for cell_row, column in highlighted_cells:
            if cell_row != row_index:
                continue
            if column.lower() not in described:
                raise OperatorError(
                    f"highlighted cell ({row_index}, {column}) missing from "
                    "the generated sentence; discarding split"
                )
