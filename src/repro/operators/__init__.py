"""Joint table-text operators (paper Section IV-A).

* :mod:`repro.operators.table_to_text` — ``f(T) -> (T_sub, S)``: verbalize
  one row (MQA-QG's DescribeEnt) and keep the rest as a sub-table.
* :mod:`repro.operators.text_to_table` — ``f(T, P) -> T_expand``: extract a
  record from the surrounding text and merge it into the table.
"""

from repro.operators.table_to_text import TableToText, SplitResult
from repro.operators.text_to_table import TextToTable, ExpandResult, RecordExtractor

__all__ = [
    "TableToText",
    "SplitResult",
    "TextToTable",
    "ExpandResult",
    "RecordExtractor",
]
