"""Sidecar integrity manifests: corpora that can prove they are intact.

Every corpus :func:`repro.io.save_samples`/:func:`repro.io.save_contexts`
writes gets a sibling ``<name>.manifest.json`` recording the data file's
exact SHA-256, byte count, record count, schema version, and the
generator fingerprint of the run that produced it.  Loads verify the
manifest (see :func:`verify_manifest`) before deserializing, so flipping
any single byte of a multi-gigabyte corpus is caught as a typed
:class:`~repro.errors.IntegrityError` at load time — not as a weird
metric three stages later.

The manifest protects *itself* too: ``manifest_sha256`` is a digest of
the manifest's own canonical payload, so a bit-flip inside the manifest
(in the record count, the generator block, even the digest hex) is as
detectable as one in the data.  Both files are written atomically
(:mod:`repro.fsio`), data first, manifest second — a crash between the
two leaves a new data file with a stale manifest, which the next load
reports as a mismatch instead of silently trusting either half.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import IntegrityError
from repro.fsio import atomic_write_text, sha256_file, sha256_text

#: bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA_VERSION = 1

#: the ``kind`` discriminator written into every manifest.
MANIFEST_KIND = "uctr-corpus-manifest"

#: sidecar suffix: ``samples.jsonl`` -> ``samples.jsonl.manifest.json``.
MANIFEST_SUFFIX = ".manifest.json"


def manifest_path(data_path: str | Path) -> Path:
    """The sidecar manifest path for a data file."""
    data_path = Path(data_path)
    return data_path.with_name(data_path.name + MANIFEST_SUFFIX)


def _self_digest(payload: dict[str, Any]) -> str:
    """Digest of the canonical manifest payload (sans the digest field)."""
    body = {k: v for k, v in payload.items() if k != "manifest_sha256"}
    return sha256_text(
        json.dumps(body, sort_keys=True, separators=(",", ":"))
    )


@dataclass(frozen=True)
class CorpusManifest:
    """The parsed, verified contents of a sidecar manifest."""

    record_kind: str
    records: int
    data_file: str
    data_sha256: str
    data_bytes: int
    generator: dict[str, Any] | None = None

    def to_json(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "kind": MANIFEST_KIND,
            "record_kind": self.record_kind,
            "records": self.records,
            "data_file": self.data_file,
            "data_sha256": self.data_sha256,
            "data_bytes": self.data_bytes,
            "generator": self.generator,
        }
        payload["manifest_sha256"] = _self_digest(payload)
        return payload


def write_manifest(
    data_path: str | Path,
    *,
    record_kind: str,
    records: int,
    generator: dict[str, Any] | None = None,
) -> Path:
    """Hash ``data_path`` and atomically write its sidecar manifest."""
    data_path = Path(data_path)
    digest, size = sha256_file(data_path)
    manifest = CorpusManifest(
        record_kind=record_kind,
        records=records,
        data_file=data_path.name,
        data_sha256=digest,
        data_bytes=size,
        generator=dict(generator) if generator else None,
    )
    return atomic_write_text(
        manifest_path(data_path),
        json.dumps(manifest.to_json(), sort_keys=True, separators=(",", ":"))
        + "\n",
    )


def read_manifest(data_path: str | Path) -> CorpusManifest | None:
    """Parse and self-check the sidecar manifest; ``None`` when absent.

    Raises :class:`IntegrityError` when the manifest exists but is
    unreadable, fails its self-digest, or has an unknown layout.  It
    does **not** touch the data file — see :func:`verify_manifest`.
    """
    sidecar = manifest_path(data_path)
    if not sidecar.exists():
        return None
    try:
        payload = json.loads(sidecar.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise IntegrityError(
            f"unreadable manifest ({error})", path=str(sidecar)
        ) from error
    if not isinstance(payload, dict):
        raise IntegrityError("manifest is not a JSON object", path=str(sidecar))
    if payload.get("manifest_sha256") != _self_digest(payload):
        raise IntegrityError(
            "manifest failed its self-digest (the manifest itself is "
            "corrupt)",
            path=str(sidecar),
        )
    if payload.get("kind") != MANIFEST_KIND:
        raise IntegrityError(
            f"not a {MANIFEST_KIND} manifest (kind={payload.get('kind')!r})",
            path=str(sidecar),
        )
    if payload.get("schema_version") != MANIFEST_SCHEMA_VERSION:
        raise IntegrityError(
            "unsupported manifest schema_version "
            f"{payload.get('schema_version')!r}",
            path=str(sidecar),
        )
    try:
        return CorpusManifest(
            record_kind=str(payload["record_kind"]),
            records=int(payload["records"]),
            data_file=str(payload["data_file"]),
            data_sha256=str(payload["data_sha256"]),
            data_bytes=int(payload["data_bytes"]),
            generator=payload.get("generator"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise IntegrityError(
            f"malformed manifest field ({error!r})", path=str(sidecar)
        ) from error


def verify_manifest(
    data_path: str | Path, *, required: bool = False
) -> CorpusManifest | None:
    """Check ``data_path`` against its sidecar manifest.

    Returns the verified manifest, or ``None`` when there is no sidecar
    and ``required`` is False (pre-manifest corpora stay loadable).
    Raises :class:`IntegrityError` on any mismatch: wrong SHA-256, wrong
    byte count, missing data file, or (with ``required=True``) a missing
    manifest — the manifest-drop corruption case.
    """
    data_path = Path(data_path)
    manifest = read_manifest(data_path)
    if manifest is None:
        if required:
            raise IntegrityError(
                f"no integrity manifest at {manifest_path(data_path)}",
                path=str(data_path),
            )
        return None
    if not data_path.is_file():
        raise IntegrityError("manifest present but data file is missing",
                             path=str(data_path))
    digest, size = sha256_file(data_path)
    if size != manifest.data_bytes:
        raise IntegrityError(
            f"size mismatch: manifest says {manifest.data_bytes} bytes, "
            f"file has {size} (truncated or appended?)",
            path=str(data_path),
        )
    if digest != manifest.data_sha256:
        raise IntegrityError(
            f"SHA-256 mismatch: manifest says {manifest.data_sha256}, "
            f"file hashes to {digest} (corrupted corpus)",
            path=str(data_path),
        )
    return manifest
