"""Structured reject records for graceful-degradation loading.

When :func:`repro.io.read_jsonl` or :func:`repro.io.load_samples` runs
in a lenient mode (``on_error="skip"|"collect"``), every record it
cannot use becomes a :class:`RejectRecord` instead of an exception —
the load-time mirror of the generation runtime's quarantine records
(:mod:`repro.runtime.quarantine`): structured, attributable, and cheap
to aggregate.  ``digest`` fingerprints the offending line so the same
corruption seen by two consumers is recognizably the same corruption.

This module deliberately imports only :mod:`repro.fsio` so every layer
(io, runtime, validate, cli) can use it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.fsio import sha256_text


@dataclass(frozen=True)
class RejectRecord:
    """One record a lenient load could not use.

    ``reason`` is a stable machine-readable tag (``invalid_json``,
    ``not_an_object``, ``deserialization``, ``integrity``); ``detail``
    carries the human-readable specifics.  ``line_number`` is 1-based;
    file-level rejects (an integrity failure) use ``line_number=0``.
    """

    path: str
    line_number: int
    reason: str
    digest: str = ""
    detail: str = ""

    def to_json(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line_number": self.line_number,
            "reason": self.reason,
            "digest": self.digest,
            "detail": self.detail,
        }

    @staticmethod
    def from_json(payload: dict[str, Any]) -> "RejectRecord":
        return RejectRecord(
            path=str(payload.get("path", "")),
            line_number=int(payload.get("line_number", 0)),
            reason=str(payload.get("reason", "")),
            digest=str(payload.get("digest", "")),
            detail=str(payload.get("detail", "")),
        )

    @staticmethod
    def for_line(
        path: str, line_number: int, reason: str, line: str, detail: str = ""
    ) -> "RejectRecord":
        """Build a reject for one raw line, fingerprinting its content."""
        return RejectRecord(
            path=path,
            line_number=line_number,
            reason=reason,
            digest=sha256_text(line)[:16],
            detail=detail,
        )


@dataclass
class LoadResult:
    """What a lenient (``on_error="collect"``) load returns.

    ``records`` holds everything that survived; ``rejects`` holds one
    structured record per casualty, in file order.  ``len()`` and
    iteration delegate to ``records`` so callers that only care about
    the good data can treat it as the list they used to get.
    """

    records: list = field(default_factory=list)
    rejects: list[RejectRecord] = field(default_factory=list)

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def clean(self) -> bool:
        return not self.rejects
