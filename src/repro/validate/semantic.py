"""The semantic re-execution gate: does a stored sample still check out?

A persisted :class:`~repro.pipelines.samples.ReasoningSample` carries
its generating program in ``provenance["program"]``.  The gate re-runs
that program against the sample's own table and confirms the stored
answer (QA) or label (fact verification), classifying each sample:

``ok``
    re-executed; the stored answer/label matches the fresh result.
``stale``
    re-executed cleanly, but the stored answer/label no longer matches
    — the pseudo-label is wrong and would poison training.
``unexecutable``
    the stored program fails to parse or execute against its table.
``skipped``
    nothing to re-run: gold/MQA-QG samples carry no program, and
    joint-evidence samples (Table-Splitting / Table-Expansion) executed
    against a table that no longer exists verbatim — part of their
    evidence was moved into text, so re-execution against the stored
    table would misclassify sound samples.

Why the cache-free executor path: the gate exists to *distrust* state.
The hot path memoizes parsed cell values process-wide
(:func:`repro.tables.values.parse_value`); re-using those memos would
let a warm cache vouch for the very bytes the gate is auditing.  Every
table is therefore rebuilt through ``parse_value.__wrapped__`` — fresh
:class:`Value` instances, no shared memo slots — before execution.

Answer comparison uses :meth:`Value.equals` — the equality that
:meth:`Value.canonical_key` is defined to be consistent with — so
``"1,000"``, ``"1000"`` and ``"$1,000"`` verify as the same answer,
exactly as they count as one value in ``COUNT(DISTINCT ...)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Iterable

from repro.errors import ReproError
from repro.pipelines.samples import ReasoningSample, TaskType
from repro.programs.base import parse_program
from repro.sampling.labeler import ClaimLabel
from repro.tables.table import Row, Table
from repro.tables.values import parse_value
from repro.telemetry import Telemetry

#: provenance keys that mark a joint-evidence sample whose execution
#: table is not the stored table (evidence was moved between modalities).
_JOINT_MARKERS = ("moved_row", "expansion_rows")


class SampleStatus(str, Enum):
    """Outcome classes of the re-execution gate."""

    OK = "ok"
    STALE = "stale"
    UNEXECUTABLE = "unexecutable"
    SKIPPED = "skipped"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class SampleVerdict:
    """The gate's verdict on one sample."""

    uid: str
    status: SampleStatus
    reason: str = ""
    detail: str = ""

    def to_json(self) -> dict[str, Any]:
        return {
            "uid": self.uid,
            "status": self.status.value,
            "reason": self.reason,
            "detail": self.detail,
        }


@dataclass
class ValidationSummary:
    """Aggregated verdicts for a whole corpus."""

    counts: dict[str, int] = field(
        default_factory=lambda: {status.value: 0 for status in SampleStatus}
    )
    #: verdicts for every non-``ok`` sample (``ok`` is the common case
    #: and would bloat reports for large corpora).
    flagged: list[SampleVerdict] = field(default_factory=list)

    @property
    def checked(self) -> int:
        return sum(self.counts.values())

    @property
    def clean(self) -> bool:
        """No stale and no unexecutable samples (skips are fine)."""
        return (
            self.counts[SampleStatus.STALE.value] == 0
            and self.counts[SampleStatus.UNEXECUTABLE.value] == 0
        )

    def add(self, verdict: SampleVerdict) -> None:
        self.counts[verdict.status.value] += 1
        if verdict.status not in (SampleStatus.OK, SampleStatus.SKIPPED):
            self.flagged.append(verdict)

    def to_section(self) -> dict[str, Any]:
        """The run-report ``validation`` section body (schema v4)."""
        return {
            "enabled": True,
            "checked": self.checked,
            "counts": dict(self.counts),
            "flagged": [verdict.to_json() for verdict in self.flagged],
        }

    def render(self) -> str:
        """One human-readable summary line."""
        parts = " ".join(
            f"{status.value}={self.counts[status.value]}"
            for status in SampleStatus
        )
        return f"validation: {parts}"


def cache_free_table(table: Table) -> Table:
    """Rebuild a table with freshly parsed, memo-free cell values.

    The recorded schema (column names and types) is kept — type
    inference already happened at build time and the round-trip contract
    says recorded types win — but every cell goes back through the
    uncached value parser, so no process-wide memo state can influence
    what the gate executes against.
    """
    rows = tuple(
        Row(tuple(parse_value.__wrapped__(cell.raw) for cell in row))
        for row in table.rows
    )
    return replace(table, rows=rows)


def validate_sample(sample: ReasoningSample) -> SampleVerdict:
    """Re-execute one sample's program and check its answer/label."""
    provenance = sample.provenance or {}
    source = provenance.get("program")
    kind = provenance.get("program_kind")
    if not source or not kind:
        return SampleVerdict(
            uid=sample.uid,
            status=SampleStatus.SKIPPED,
            reason="no_program",
            detail="sample carries no program provenance (gold or baseline)",
        )
    if any(marker in provenance for marker in _JOINT_MARKERS):
        return SampleVerdict(
            uid=sample.uid,
            status=SampleStatus.SKIPPED,
            reason="joint_evidence",
            detail="program executed against a table whose evidence was "
                   "moved between modalities; the stored table is not the "
                   "execution table",
        )
    try:
        program = parse_program(source, kind)
    except ReproError as error:
        return SampleVerdict(
            uid=sample.uid,
            status=SampleStatus.UNEXECUTABLE,
            reason="parse_error",
            detail=str(error),
        )
    try:
        result = program.execute(cache_free_table(sample.table))
    except ReproError as error:
        return SampleVerdict(
            uid=sample.uid,
            status=SampleStatus.UNEXECUTABLE,
            reason="execution_error",
            detail=str(error),
        )
    if sample.task is TaskType.FACT_VERIFICATION:
        if result.truth is None:
            return SampleVerdict(
                uid=sample.uid,
                status=SampleStatus.STALE,
                reason="no_truth_value",
                detail="claim program no longer produces a boolean",
            )
        expected = ClaimLabel.SUPPORTED if result.truth else ClaimLabel.REFUTED
        if sample.label is not expected:
            return SampleVerdict(
                uid=sample.uid,
                status=SampleStatus.STALE,
                reason="label_mismatch",
                detail=f"stored {sample.label}, re-execution certifies "
                       f"{expected.value}",
            )
        return SampleVerdict(uid=sample.uid, status=SampleStatus.OK)
    return _check_answer(sample, result.denotation())


def _check_answer(
    sample: ReasoningSample, denotation: list[str]
) -> SampleVerdict:
    stored = list(sample.answer)
    if len(stored) != len(denotation):
        return SampleVerdict(
            uid=sample.uid,
            status=SampleStatus.STALE,
            reason="answer_mismatch",
            detail=f"stored {len(stored)} answer value(s), re-execution "
                   f"produced {len(denotation)}",
        )
    for stored_raw, fresh_raw in zip(stored, denotation):
        stored_value = parse_value.__wrapped__(stored_raw)
        fresh_value = parse_value.__wrapped__(fresh_raw)
        if not stored_value.equals(fresh_value):
            return SampleVerdict(
                uid=sample.uid,
                status=SampleStatus.STALE,
                reason="answer_mismatch",
                detail=f"stored {stored_raw!r}, re-execution produced "
                       f"{fresh_raw!r}",
            )
    return SampleVerdict(uid=sample.uid, status=SampleStatus.OK)


def validate_samples(
    samples: Iterable[ReasoningSample],
    telemetry: Telemetry | None = None,
) -> ValidationSummary:
    """Run the gate over a corpus, folding counters into ``telemetry``.

    Counters land in the ``validation`` telemetry section keyed by
    status, and every non-``ok`` verdict becomes a structured
    ``validation`` event — the same snapshot/merge pipe the generation
    counters ride, so per-context aggregation and the run report get
    validation results for free.
    """
    summary = ValidationSummary()
    for sample in samples:
        verdict = validate_sample(sample)
        summary.add(verdict)
        if telemetry is not None:
            telemetry.increment("validation", verdict.status.value)
            if verdict.status not in (SampleStatus.OK, SampleStatus.SKIPPED):
                telemetry.event(
                    "validation",
                    {
                        "uid": verdict.uid,
                        "status": verdict.status.value,
                        "reason": verdict.reason,
                        "detail": verdict.detail,
                    },
                )
    return summary
