"""Data-integrity and contract layer for the sample lifecycle.

Three lines of defense between a generated corpus and the models that
train on it:

1. **Self-verifying files** (:mod:`repro.validate.manifest`) — every
   saved corpus gets a sidecar manifest (SHA-256, byte/record counts,
   generator fingerprint); loads verify it and raise
   :class:`~repro.errors.IntegrityError` on any single-byte corruption.
2. **Contract-checked, gracefully degrading loads**
   (:mod:`repro.validate.rejects` + ``on_error=`` in :mod:`repro.io`) —
   lenient modes yield the intact records and structured
   :class:`RejectRecord`\\ s instead of dying on the first bad line.
3. **Semantic re-execution gate** (:mod:`repro.validate.semantic`) —
   re-runs each sample's program on the cache-free executor path and
   confirms the stored answer/label, classifying samples
   ``ok | stale | unexecutable`` (``repro validate`` on the CLI).
"""

from repro.validate.manifest import (
    MANIFEST_KIND,
    MANIFEST_SCHEMA_VERSION,
    CorpusManifest,
    manifest_path,
    read_manifest,
    verify_manifest,
    write_manifest,
)
from repro.validate.rejects import LoadResult, RejectRecord
from repro.validate.semantic import (
    SampleStatus,
    SampleVerdict,
    ValidationSummary,
    cache_free_table,
    validate_sample,
    validate_samples,
)

__all__ = [
    "MANIFEST_KIND",
    "MANIFEST_SCHEMA_VERSION",
    "CorpusManifest",
    "LoadResult",
    "RejectRecord",
    "SampleStatus",
    "SampleVerdict",
    "ValidationSummary",
    "cache_free_table",
    "manifest_path",
    "read_manifest",
    "validate_sample",
    "validate_samples",
    "verify_manifest",
    "write_manifest",
]
