"""Featurizers: engineered reasoning signals + hashed lexical features.

The verification featurizer is the numpy stand-in for what a pre-trained
table transformer computes internally: candidate consistency checks
between the claim and the evidence (lookup, superlative, count,
aggregation, comparative, majority, unique, ordinal), each exposed as a
consistent/inconsistent feature pair.  The classifier on top must still
*learn* which signals predict which label for which wording — that is
what training data quality controls, and what the UCTR experiments vary.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

import numpy as np

from repro.operators.text_to_table import RecordExtractor
from repro.pipelines.samples import ReasoningSample
from repro.tables.context import TableContext
from repro.tables.values import Value, coerce_number

_TOKEN_RE = re.compile(r"[a-z0-9']+")

#: number of hashed bag-of-words buckets appended to the dense block.
HASH_DIM = 192


def stable_hash(text: str) -> int:
    """Process-independent string hash (``hash()`` is salted per run)."""
    import zlib

    return zlib.crc32(text.encode("utf-8"))


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens."""
    return _TOKEN_RE.findall(text.lower())


def extract_numbers(text: str) -> list[float]:
    """All numbers mentioned in ``text`` (handles %, $, commas)."""
    out: list[float] = []
    for match in re.finditer(
        r"(?<![a-z0-9_])[-+]?\$?\d[\d,]*(?:\.\d+)?%?", text.lower()
    ):
        number = coerce_number(match.group().replace("$", ""))
        if number is not None:
            out.append(number)
    return out


# -- lexicons (cover grammar, human, and MQA-QG phrasings alike) -------------

SUP_MAX_WORDS = {
    "highest", "most", "greatest", "top", "tops", "peak", "peaks", "leads",
    "largest", "maximum", "best", "leading",
}
SUP_MIN_WORDS = {
    "lowest", "least", "smallest", "minimum", "bottom", "bottoms", "floor",
    "worst", "last",
}
COMP_MORE_WORDS = {
    "more", "higher", "greater", "exceeds", "outranks", "ahead", "beats",
    "bigger", "larger", "above",
}
COMP_LESS_WORDS = {
    "less", "lower", "fewer", "below", "smaller", "trails", "under", "short",
}
AGG_SUM_WORDS = {
    "total", "sum", "combined", "summing", "adding", "altogether", "overall",
}
AGG_AVG_WORDS = {"average", "mean", "typical", "averaged", "averaging"}
COUNT_WORDS = {
    "times", "entries", "rows", "appears", "count", "tally", "occurrences",
    "appear", "carry", "show", "shows",
}
MAJ_ALL_WORDS = {"all", "every", "exception", "none", "without"}
MAJ_MOST_WORDS = {"most", "majority", "bulk", "dominates"}
UNIQUE_WORDS = {"only", "unique", "once", "exactly"}
ORDINAL_WORDS = {
    "second", "third", "fourth", "fifth", "2nd", "3rd", "4th", "5th",
    "rank", "ranks", "ranked", "spot", "position",
}
NEG_WORDS = {"not", "no", "never", "n't", "isn't", "doesn't"}
TEXT_REF_WORDS = {"passage", "text", "stated", "states", "according"}

_ORDINAL_MAP = {"second": 2, "2nd": 2, "third": 3, "3rd": 3,
                "fourth": 4, "4th": 4, "fifth": 5, "5th": 5}


@dataclass(frozen=True)
class EvidenceView:
    """Pre-digested evidence: table rows + records extracted from text.

    ``rows`` maps are ``{column: Value}``; ``source`` parallels rows with
    "table" / "text".  Built once per context and cached by featurizers.
    """

    columns: tuple[str, ...]
    numeric_columns: tuple[str, ...]
    name_column: str
    rows: tuple[dict[str, Value], ...]
    sources: tuple[str, ...]
    table_vocab: frozenset[str]
    text_vocab: frozenset[str]

    @staticmethod
    def build(context: TableContext) -> "EvidenceView":
        table = context.table
        name_column = table.row_name_column or (
            table.column_names[0] if table.column_names else ""
        )
        rows: list[dict[str, Value]] = []
        sources: list[str] = []
        for row in table.rows:
            rows.append(dict(zip(table.column_names, row.cells)))
            sources.append("table")
        if context.has_text and table.column_names:
            extractor = RecordExtractor(table.column_names)
            seen_names = {
                table.row_name(i).strip().lower() for i in range(table.n_rows)
            }
            for sentence in context.sentences:
                record = extractor.extract_record(sentence, name_column)
                if len(record) < 2 or name_column not in record:
                    continue
                name_key = record[name_column].raw.strip().lower()
                if name_key in seen_names:
                    # The sentence restates a table row; keep the table
                    # copy as the single source of truth.
                    continue
                seen_names.add(name_key)
                rows.append(record)
                sources.append("text")
        table_tokens: set[str] = set()
        for row in table.rows:
            for cell in row.cells:
                table_tokens.update(tokenize(cell.raw))
        table_tokens.update(tokenize(" ".join(table.column_names)))
        text_tokens = set(tokenize(context.text))
        return EvidenceView(
            columns=tuple(table.column_names),
            numeric_columns=tuple(table.numeric_column_names()),
            name_column=name_column,
            rows=tuple(rows),
            sources=tuple(sources),
            table_vocab=frozenset(table_tokens),
            text_vocab=frozenset(text_tokens),
        )

    # -- evidence queries --------------------------------------------------------
    def row_names(self) -> list[str]:
        out = []
        for row in self.rows:
            value = row.get(self.name_column)
            out.append(value.raw.lower() if value is not None else "")
        return out

    def numeric_column_values(
        self, column: str, sources: tuple[str, ...] | None = None
    ) -> list[float]:
        numbers: list[float] = []
        for row, source in zip(self.rows, self.sources):
            if sources is not None and source not in sources:
                continue
            value = row.get(column)
            if value is None or value.is_null:
                continue
            try:
                numbers.append(value.as_number())
            except Exception:
                continue
        return numbers

    def cell_number(self, row_index: int, column: str) -> float | None:
        value = self.rows[row_index].get(column)
        if value is None or value.is_null:
            return None
        try:
            return value.as_number()
        except Exception:
            return None


@dataclass
class VerificationFeaturizer:
    """Claim × evidence → feature vector for fact verification."""

    hash_dim: int = HASH_DIM
    #: keyed by context object identity (NOT uid: pipelines derive many
    #: distinct contexts — sub-tables, stripped paragraphs — that share
    #: a uid).  The context is kept in the entry so its id() stays live.
    _cache: dict[int, tuple[TableContext, EvidenceView]] = field(
        default_factory=dict, repr=False
    )

    #: dense feature names, fixed order (tests assert this contract).
    DENSE_FEATURES = (
        "claim_len",
        "table_overlap",
        "text_overlap",
        "n_numbers",
        "numbers_in_table",
        "numbers_in_text",
        "row_match",
        "lookup_consistent",
        "lookup_inconsistent",
        "sup_max_consistent",
        "sup_max_inconsistent",
        "sup_min_consistent",
        "sup_min_inconsistent",
        "agg_sum_match",
        "agg_sum_mismatch",
        "agg_avg_match",
        "agg_avg_mismatch",
        "count_match",
        "count_mismatch",
        "comp_consistent",
        "comp_inconsistent",
        "majority_match",
        "majority_mismatch",
        "unique_match",
        "unique_mismatch",
        "ordinal_match",
        "ordinal_mismatch",
        "negation",
        "unknown_entity",
        "text_reference",
    )

    @property
    def dim(self) -> int:
        return len(self.DENSE_FEATURES) + self.hash_dim

    # -- public API ---------------------------------------------------------------
    def features(self, sample: ReasoningSample) -> np.ndarray:
        return self.featurize(sample.sentence, sample.context)

    def featurize(self, claim: str, context: TableContext) -> np.ndarray:
        view = self._view(context)
        dense = self._dense(claim, view)
        hashed = self._hashed(claim, view)
        return np.concatenate([dense, hashed])

    def matrix(self, samples: list[ReasoningSample]) -> np.ndarray:
        if not samples:
            return np.zeros((0, self.dim))
        return np.stack([self.features(sample) for sample in samples])

    # -- internals --------------------------------------------------------------
    def _view(self, context: TableContext) -> EvidenceView:
        key = id(context)
        entry = self._cache.get(key)
        if entry is not None and entry[0] is context:
            return entry[1]
        view = EvidenceView.build(context)
        self._cache[key] = (context, view)
        return view

    def _hashed(self, claim: str, view: EvidenceView) -> np.ndarray:
        out = np.zeros(self.hash_dim)
        for token in tokenize(claim):
            bucket = stable_hash(token) % self.hash_dim
            out[bucket] += 1.0
            if token in view.table_vocab:
                out[(bucket * 31 + 7) % self.hash_dim] += 0.5
        norm = np.linalg.norm(out)
        return out / norm if norm > 0 else out

    def _dense(self, claim: str, view: EvidenceView) -> np.ndarray:
        tokens = tokenize(claim)
        token_set = set(tokens)
        numbers = extract_numbers(claim)
        features = dict.fromkeys(self.DENSE_FEATURES, 0.0)

        features["claim_len"] = min(len(tokens) / 20.0, 1.5)
        if tokens:
            features["table_overlap"] = sum(
                1 for token in tokens if token in view.table_vocab
            ) / len(tokens)
            features["text_overlap"] = sum(
                1 for token in tokens if token in view.text_vocab
            ) / len(tokens)
        features["n_numbers"] = min(len(numbers) / 4.0, 1.5)
        features["negation"] = min(
            sum(1 for token in tokens if token in NEG_WORDS) / 2.0, 1.5
        )
        features["text_reference"] = float(bool(token_set & TEXT_REF_WORDS))

        claim_lower = " ".join(tokens)
        matched_rows = [
            index
            for index, name in enumerate(view.row_names())
            if name and name in claim_lower
        ]
        matched_columns = [
            column
            for column in view.columns
            if column.lower() in claim_lower and column != view.name_column
        ]
        features["row_match"] = float(bool(matched_rows))

        all_cell_numbers = {
            number
            for index in range(len(view.rows))
            for column in view.numeric_columns
            if (number := view.cell_number(index, column)) is not None
        }
        if numbers:
            features["numbers_in_table"] = sum(
                1
                for number in numbers
                if any(_close(number, cell) for cell in all_cell_numbers)
            ) / len(numbers)
            text_numbers = set(extract_numbers(" ".join(sorted(view.text_vocab))))
            features["numbers_in_text"] = sum(
                1 for number in numbers if any(_close(number, t) for t in text_numbers)
            ) / len(numbers)

        self._lookup_signals(features, numbers, matched_rows, matched_columns, view)
        self._superlative_signals(features, token_set, matched_rows,
                                  matched_columns, view, numbers)
        self._aggregate_signals(features, token_set, numbers, matched_columns, view)
        self._count_signals(features, token_set, tokens, numbers, view)
        self._comparative_signals(features, token_set, claim_lower, matched_rows,
                                  matched_columns, view)
        self._majority_signals(features, token_set, tokens, numbers, view)
        self._unique_signals(features, token_set, tokens, view)
        self._ordinal_signals(features, token_set, numbers, matched_rows,
                              matched_columns, view)
        self._unknown_signal(features, tokens, view)

        return np.array([features[name] for name in self.DENSE_FEATURES])

    # -- individual signal extractors -------------------------------------------
    def _lookup_signals(self, features, numbers, matched_rows, matched_columns, view):
        if not matched_rows:
            return
        columns = matched_columns or list(view.numeric_columns)
        found_match = False
        found_mismatch = False
        for row_index in matched_rows:
            for column in columns:
                cell = view.cell_number(row_index, column)
                if cell is None:
                    continue
                if any(_close(number, cell) for number in numbers):
                    found_match = True
                elif numbers and matched_columns:
                    found_mismatch = True
        features["lookup_consistent"] = float(found_match)
        features["lookup_inconsistent"] = float(found_mismatch and not found_match)

    def _superlative_signals(self, features, token_set, matched_rows,
                             matched_columns, view, numbers=()):
        for words, prefix, pick_max in (
            (SUP_MAX_WORDS, "sup_max", True),
            (SUP_MIN_WORDS, "sup_min", False),
        ):
            if not (token_set & words):
                continue
            if not matched_rows and not numbers:
                continue
            columns = matched_columns or list(view.numeric_columns)
            consistent = False
            considered = False
            for column in columns:
                if column not in view.numeric_columns:
                    continue
                values = [
                    (index, view.cell_number(index, column))
                    for index in range(len(view.rows))
                ]
                values = [(i, v) for i, v in values if v is not None]
                if not values:
                    continue
                considered = True
                chooser = max if pick_max else min
                best_index, best_value = chooser(values, key=lambda pair: pair[1])
                if best_index in matched_rows:
                    consistent = True
                # value-based check: the claimed extreme value itself, or
                # any cell of the extreme row, matches a claim number.
                if any(_close(number, best_value) for number in numbers):
                    consistent = True
                for other in view.columns:
                    cell = view.cell_number(best_index, other)
                    if cell is not None and any(
                        _close(number, cell) for number in numbers
                    ):
                        consistent = True
            if considered:
                features[f"{prefix}_consistent"] = float(consistent)
                features[f"{prefix}_inconsistent"] = float(not consistent)

    def _aggregate_signals(self, features, token_set, numbers, matched_columns, view):
        if not numbers:
            return
        for words, prefix, reducer in (
            (AGG_SUM_WORDS, "agg_sum", sum),
            (AGG_AVG_WORDS, "agg_avg", lambda xs: sum(xs) / len(xs)),
        ):
            if not (token_set & words):
                continue
            columns = matched_columns or list(view.numeric_columns)
            matched = False
            considered = False
            for column in columns:
                # a claimed aggregate may be over the table alone or over
                # table + text facts; accept either reading.
                for scope in (("table",), None):
                    values = view.numeric_column_values(column, sources=scope)
                    if not values:
                        continue
                    considered = True
                    stat = reducer(values)
                    if any(_close(number, stat, rel=0.06) for number in numbers):
                        matched = True
            if considered:
                features[f"{prefix}_match"] = float(matched)
                features[f"{prefix}_mismatch"] = float(not matched)

    def _count_signals(self, features, token_set, tokens, numbers, view):
        if not (token_set & COUNT_WORDS) and "how" not in token_set:
            return
        candidate_counts = {
            number for number in numbers if number.is_integer() and 0 <= number <= len(view.rows) + 2
        }
        if not candidate_counts:
            return
        matched = False
        claim_text = " ".join(tokens)
        for column in view.columns:
            tally: dict[str, int] = {}
            for row in view.rows:
                value = row.get(column)
                if value is None or value.is_null:
                    continue
                key = value.raw.lower()
                tally[key] = tally.get(key, 0) + 1
            for key, count in tally.items():
                if key in claim_text and count in candidate_counts:
                    matched = True
        # Counts of threshold filters (above/below a number).
        for column in view.numeric_columns:
            values = view.numeric_column_values(column)
            for number in numbers:
                above = sum(1 for value in values if value > number)
                below = sum(1 for value in values if value < number)
                if above in candidate_counts or below in candidate_counts:
                    matched = True
        features["count_match"] = float(matched)
        features["count_mismatch"] = float(not matched)

    def _comparative_signals(self, features, token_set, claim_lower,
                             matched_rows, matched_columns, view):
        more = bool(token_set & COMP_MORE_WORDS)
        less = bool(token_set & COMP_LESS_WORDS)
        if not (more or less) or len(matched_rows) < 2:
            return
        names = view.row_names()
        ordered = sorted(
            matched_rows, key=lambda index: claim_lower.find(names[index])
        )
        first, second = ordered[0], ordered[1]
        columns = matched_columns or list(view.numeric_columns)
        consistent = False
        considered = False
        for column in columns:
            a = view.cell_number(first, column)
            b = view.cell_number(second, column)
            if a is None or b is None:
                continue
            considered = True
            if (more and a > b) or (less and a < b):
                consistent = True
        if considered:
            features["comp_consistent"] = float(consistent)
            features["comp_inconsistent"] = float(not consistent)

    def _majority_signals(self, features, token_set, tokens, numbers, view):
        is_all = bool(token_set & MAJ_ALL_WORDS)
        is_most = bool(token_set & MAJ_MOST_WORDS)
        if not (is_all or is_most):
            return
        claim_text = " ".join(tokens)
        matched = False
        considered = False
        threshold = 0.999 if is_all else 0.5
        for column in view.columns:
            cells = [row.get(column) for row in view.rows]
            cells = [cell for cell in cells if cell is not None and not cell.is_null]
            if not cells:
                continue
            # equality majority on surface values present in the claim
            for target in {cell.raw.lower() for cell in cells}:
                if target not in claim_text:
                    continue
                considered = True
                share = sum(
                    1 for cell in cells if cell.raw.lower() == target
                ) / len(cells)
                if share > threshold or (is_all and share == 1.0):
                    matched = True
        for column in view.numeric_columns:
            values = view.numeric_column_values(column)
            if not values:
                continue
            for number in numbers:
                considered = True
                above = sum(1 for value in values if value > number) / len(values)
                below = sum(1 for value in values if value < number) / len(values)
                equal = sum(
                    1 for value in values if _close(value, number)
                ) / len(values)
                if max(above, below, equal) > threshold:
                    matched = True
        if considered:
            features["majority_match"] = float(matched)
            features["majority_mismatch"] = float(not matched)

    def _unique_signals(self, features, token_set, tokens, view):
        if not (token_set & UNIQUE_WORDS):
            return
        claim_text = " ".join(tokens)
        matched = False
        considered = False
        for column in view.columns:
            tally: dict[str, int] = {}
            for row in view.rows:
                value = row.get(column)
                if value is None or value.is_null:
                    continue
                key = value.raw.lower()
                tally[key] = tally.get(key, 0) + 1
            for key, count in tally.items():
                if key and key in claim_text:
                    considered = True
                    if count == 1:
                        matched = True
        if considered:
            features["unique_match"] = float(matched)
            features["unique_mismatch"] = float(not matched)

    def _ordinal_signals(self, features, token_set, numbers, matched_rows,
                         matched_columns, view):
        if not (token_set & ORDINAL_WORDS):
            return
        ranks = {int(n) for n in numbers if n.is_integer() and 1 <= n <= 5}
        ranks |= {_ORDINAL_MAP[t] for t in token_set if t in _ORDINAL_MAP}
        if not ranks:
            return
        columns = matched_columns or list(view.numeric_columns)
        matched = False
        considered = False
        for column in columns:
            if column not in view.numeric_columns:
                continue
            pairs = [
                (index, view.cell_number(index, column))
                for index in range(len(view.rows))
            ]
            pairs = [(i, v) for i, v in pairs if v is not None]
            if not pairs:
                continue
            considered = True
            for descending in (True, False):
                ordered = sorted(pairs, key=lambda p: p[1], reverse=descending)
                for rank in ranks:
                    if rank <= len(ordered):
                        row_index, value = ordered[rank - 1]
                        if row_index in matched_rows:
                            matched = True
                        if any(_close(n, value) for n in numbers):
                            matched = True
        if considered:
            features["ordinal_match"] = float(matched)
            features["ordinal_mismatch"] = float(not matched)

    def _unknown_signal(self, features, tokens, view):
        """Content words absent from the whole evidence — NEI signal."""
        content = [
            token for token in tokens
            if len(token) > 3 and not token.isdigit()
        ]
        if not content:
            return
        missing = sum(
            1
            for token in content
            if token not in view.table_vocab and token not in view.text_vocab
        )
        features["unknown_entity"] = missing / len(content)


def _close(a: float, b: float, rel: float = 0.02) -> bool:
    return math.isclose(a, b, rel_tol=rel, abs_tol=0.51)
