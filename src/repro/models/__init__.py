"""Downstream tabular reasoning models (numpy stand-ins for the paper's
TAGOP / FEVEROUS-baseline / TAPAS / TAPEX).

All models share one recipe: a task-specific featurizer that turns a
(sentence, table, text) triple into a dense vector of engineered
reasoning signals plus hashed lexical features, and a small numpy MLP
trained with Adam.  What the paper's pre-trained transformers learn from
data — which reasoning signals matter for which wording — these models
must also learn from data, which is exactly the property the UCTR
experiments measure.
"""

from repro.models.nn import MLP, MLPConfig, AdamState
from repro.models.features import (
    VerificationFeaturizer,
    tokenize,
    extract_numbers,
)
from repro.models.verifier import FactVerifier, VerifierConfig
from repro.models.qa import TagOpQA, QAConfig, CandidateGenerator
from repro.models.baselines import RandomVerifier, MajorityVerifier

__all__ = [
    "MLP",
    "MLPConfig",
    "AdamState",
    "VerificationFeaturizer",
    "tokenize",
    "extract_numbers",
    "FactVerifier",
    "VerifierConfig",
    "TagOpQA",
    "QAConfig",
    "CandidateGenerator",
    "RandomVerifier",
    "MajorityVerifier",
]
