"""Question answering over tables and text (TAGOP / TAPEX stand-in).

Architecture, mirroring TAGOP's tag-then-operate design:

1. **Candidate generation** — conditioned on the question, enumerate
   answer candidates: evidence cells (table rows *and* records extracted
   from the text), filtered cell sets, column aggregates, counts, and
   arithmetic combinations of question-relevant cell pairs (difference,
   percentage change, ratio, sum, average, share-of-total, comparison).
2. **Scoring** — a binary MLP over (question, candidate) features picks
   the best candidate; it must *learn* which question wordings call for
   which derivation, which is exactly what the synthetic training data
   teaches (or fails to teach, for shallow baselines like MQA-QG).

``answer_source`` restricts candidates for the weak baselines of
Table III ("Text-Span only", "Table-Cell only").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.eval.metrics import normalize_answer
from repro.models.features import (
    EvidenceView,
    extract_numbers,
    stable_hash,
    tokenize,
)
from repro.models.nn import MLP, MLPConfig
from repro.pipelines.samples import ReasoningSample
from repro.tables.context import TableContext
from repro.tables.values import format_number

CANDIDATE_TYPES = (
    "cell",
    "multi_cells",
    "count_eq",
    "count_cmp",
    "count_distinct",
    "sum_col",
    "avg_col",
    "max_col",
    "min_col",
    "range_col",
    "sup_cell",
    "diff_pair",
    "pct_pair",
    "ratio_pair",
    "ratio100_pair",
    "cagr_pair",
    "sum_pair",
    "avg_pair",
    "share",
    "greater_pair",
)

_TYPE_INDEX = {name: i for i, name in enumerate(CANDIDATE_TYPES)}

# question lexicons
_Q_LEXICONS: dict[str, frozenset[str]] = {
    "q_pct": frozenset({"percentage", "percent", "rate"}),
    "q_avg": frozenset({"average", "mean", "typical", "averaging", "averaged"}),
    "q_sum": frozenset({"total", "sum", "combined", "together", "adding",
                        "summed", "amount"}),
    "q_count": frozenset({"many", "count", "tally", "number"}),
    "q_diff": frozenset({"difference", "change", "bigger", "gap", "move",
                         "exceed", "more", "moved", "changed", "grow"}),
    "q_ratio": frozenset({"ratio", "times", "relative"}),
    "q_share": frozenset({"share", "proportion", "fraction", "belongs"}),
    "q_max": frozenset({"highest", "most", "largest", "peak", "peaks", "top",
                        "tops", "greatest", "maximum", "best", "leads"}),
    "q_min": frozenset({"lowest", "least", "smallest", "minimum", "bottom",
                        "bottoms", "trails", "floor"}),
    "q_range": frozenset({"spread", "apart", "extremes", "wide", "range"}),
    "q_yesno": frozenset({"does", "did", "is", "was", "beat", "up"}),
    "q_distinct": frozenset({"different", "unique", "distinct"}),
    "q_growth": frozenset({"growth", "expand", "increase"}),
}

_Q_FLAGS = tuple(_Q_LEXICONS)

#: (question flag, candidate type) pairs given an explicit affinity feature.
_AFFINITIES = (
    ("q_pct", "pct_pair"),
    ("q_pct", "ratio100_pair"),
    ("q_growth", "pct_pair"),
    ("q_growth", "cagr_pair"),
    ("q_avg", "avg_col"),
    ("q_avg", "avg_pair"),
    ("q_sum", "sum_col"),
    ("q_sum", "sum_pair"),
    ("q_count", "count_eq"),
    ("q_count", "count_cmp"),
    ("q_count", "count_distinct"),
    ("q_diff", "diff_pair"),
    ("q_diff", "range_col"),
    ("q_ratio", "ratio_pair"),
    ("q_share", "share"),
    ("q_max", "max_col"),
    ("q_max", "sup_cell"),
    ("q_min", "min_col"),
    ("q_min", "sup_cell"),
    ("q_range", "range_col"),
    ("q_yesno", "greater_pair"),
    ("q_distinct", "count_distinct"),
)


@dataclass(frozen=True)
class Candidate:
    """One possible answer with its derivation provenance."""

    answer: tuple[str, ...]
    type: str
    source: str = "table"  # table | text | mixed
    row_names: tuple[str, ...] = ()
    columns: tuple[str, ...] = ()
    condition_value: str = ""
    orientation: int = 0  # for pairs: 0 = doc order, 1 = reversed

    def key(self) -> tuple[str, ...]:
        return tuple(sorted(normalize_answer(a) for a in self.answer))


@dataclass(frozen=True)
class QAConfig:
    """Hyper-parameters for the QA scorer."""

    hidden_dims: tuple[int, ...] = (48,)
    learning_rate: float = 2e-3
    epochs: int = 25
    patience: int = 5
    batch_size: int = 128
    negatives_per_positive: int = 12
    #: "all" | "table" | "text" — candidate restriction (weak baselines).
    answer_source: str = "all"
    seed: int = 0


class CandidateGenerator:
    """Question-conditioned answer candidate enumeration."""

    def __init__(self, answer_source: str = "all", max_candidates: int = 160):
        self.answer_source = answer_source
        self.max_candidates = max_candidates
        # keyed by context object identity (uids are shared between the
        # original context and its pipeline-derived variants).
        self._views: dict[int, tuple[TableContext, EvidenceView]] = {}

    def view(self, context: TableContext) -> EvidenceView:
        key = id(context)
        entry = self._views.get(key)
        if entry is not None and entry[0] is context:
            return entry[1]
        view = EvidenceView.build(context)
        self._views[key] = (context, view)
        return view

    def generate(self, question: str, context: TableContext) -> list[Candidate]:
        view = self.view(context)
        question_lower = " ".join(tokenize(question))
        numbers = extract_numbers(question)
        names = view.row_names()
        matched_rows = [
            i for i, name in enumerate(names) if name and name in question_lower
        ]
        matched_columns = [
            c for c in view.columns
            if c.lower() in question_lower and c != view.name_column
        ]
        out: list[Candidate] = []
        self._cells(out, view, matched_rows, matched_columns)
        self._filtered(out, view, question_lower)
        self._aggregates(out, view, matched_columns)
        self._counts(out, view, question_lower, numbers)
        self._pairs(out, view, matched_rows, matched_columns, question_lower)
        out = self._restrict(out)
        return out[: self.max_candidates]

    # -- candidate families -------------------------------------------------
    def _cells(self, out, view, matched_rows, matched_columns) -> None:
        rows = matched_rows or range(len(view.rows))
        for row_index in rows:
            row = view.rows[row_index]
            source = view.sources[row_index]
            name = row.get(view.name_column)
            name_raw = name.raw if name is not None else ""
            columns = matched_columns or [
                c for c in view.columns if c != view.name_column
            ]
            for column in columns:
                value = row.get(column)
                if value is None or value.is_null:
                    continue
                out.append(
                    Candidate(
                        answer=(value.raw,),
                        type="cell",
                        source=source,
                        row_names=(name_raw,),
                        columns=(column,),
                    )
                )
            # the row name itself answers "which X ..." questions
            if name is not None and not name.is_null:
                out.append(
                    Candidate(
                        answer=(name.raw,),
                        type="cell",
                        source=source,
                        row_names=(name_raw,),
                        columns=(view.name_column,),
                    )
                )
        # superlative cells: value of column B in the row maximizing A
        for num_col in view.numeric_columns:
            pairs = [
                (i, view.cell_number(i, num_col)) for i in range(len(view.rows))
            ]
            pairs = [(i, v) for i, v in pairs if v is not None]
            if not pairs:
                continue
            for pick_max in (True, False):
                chooser = max if pick_max else min
                best_index, _ = chooser(pairs, key=lambda p: p[1])
                row = view.rows[best_index]
                for column in view.columns:
                    value = row.get(column)
                    if value is None or value.is_null:
                        continue
                    out.append(
                        Candidate(
                            answer=(value.raw,),
                            type="sup_cell",
                            source=view.sources[best_index],
                            row_names=(row.get(view.name_column).raw
                                       if row.get(view.name_column) else "",),
                            columns=(column, num_col),
                            orientation=0 if pick_max else 1,
                        )
                    )

    def _filtered(self, out, view, question_lower) -> None:
        """Multi-cell answers: values of col_out where col_cond = value."""
        for cond_col in view.columns:
            values_present: dict[str, list[int]] = {}
            for index, row in enumerate(view.rows):
                value = row.get(cond_col)
                if value is None or value.is_null:
                    continue
                values_present.setdefault(value.raw.lower(), []).append(index)
            for surface, indices in values_present.items():
                if surface not in question_lower or len(indices) < 2:
                    continue
                for out_col in view.columns:
                    if out_col == cond_col:
                        continue
                    answers = []
                    for index in indices:
                        value = view.rows[index].get(out_col)
                        if value is not None and not value.is_null:
                            answers.append(value.raw)
                    if len(answers) >= 2:
                        out.append(
                            Candidate(
                                answer=tuple(answers),
                                type="multi_cells",
                                source="table",
                                columns=(out_col, cond_col),
                                condition_value=surface,
                            )
                        )

    def _aggregates(self, out, view, matched_columns) -> None:
        columns = [
            c for c in (matched_columns or view.numeric_columns)
            if c in view.numeric_columns
        ]
        has_text_rows = "text" in view.sources
        for column in columns:
            scopes = [(("table",), "table")]
            if has_text_rows:
                scopes.append((None, "mixed"))
            for scope, source in scopes:
                values = view.numeric_column_values(column, sources=scope)
                if not values:
                    continue
                aggregates = {
                    "sum_col": sum(values),
                    "avg_col": sum(values) / len(values),
                    "max_col": max(values),
                    "min_col": min(values),
                    "range_col": max(values) - min(values),
                }
                for ctype, number in aggregates.items():
                    out.append(
                        Candidate(
                            answer=(format_number(number),),
                            type=ctype,
                            source=source,
                            columns=(column,),
                        )
                    )

    def _counts(self, out, view, question_lower, numbers) -> None:
        for column in view.columns:
            tally: dict[str, int] = {}
            non_null = 0
            for row in view.rows:
                value = row.get(column)
                if value is None or value.is_null:
                    continue
                non_null += 1
                tally[value.raw.lower()] = tally.get(value.raw.lower(), 0) + 1
            out.append(
                Candidate(
                    answer=(format_number(len(tally)),),
                    type="count_distinct",
                    source="table",
                    columns=(column,),
                )
            )
            for surface, count in tally.items():
                if surface in question_lower:
                    out.append(
                        Candidate(
                            answer=(format_number(count),),
                            type="count_eq",
                            source="table",
                            columns=(column,),
                            condition_value=surface,
                        )
                    )
        for column in view.numeric_columns:
            values = view.numeric_column_values(column)
            for number in numbers:
                above = sum(1 for value in values if value > number)
                below = sum(1 for value in values if value < number)
                for count, orientation in ((above, 0), (below, 1)):
                    out.append(
                        Candidate(
                            answer=(format_number(count),),
                            type="count_cmp",
                            source="table",
                            columns=(column,),
                            condition_value=format_number(number),
                            orientation=orientation,
                        )
                    )

    def _pairs(self, out, view, matched_rows, matched_columns, question_lower) -> None:
        cells: list[tuple[str, str, float, str, int]] = []
        # (row_name, column, number, source, question position)
        rows = matched_rows if len(matched_rows) >= 1 else []
        columns = [
            c for c in (matched_columns or view.numeric_columns)
            if c in view.numeric_columns
        ]
        for row_index in rows:
            row = view.rows[row_index]
            name = row.get(view.name_column)
            name_raw = name.raw if name is not None else ""
            position = question_lower.find(name_raw.lower())
            for column in columns:
                number = view.cell_number(row_index, column)
                if number is None:
                    continue
                cells.append(
                    (name_raw, column, number, view.sources[row_index], position)
                )
        if len(cells) > 8:
            cells = cells[:8]
        for i in range(len(cells)):
            for j in range(len(cells)):
                if i == j:
                    continue
                a_name, a_col, a, a_src, a_pos = cells[i]
                b_name, b_col, b, b_src, b_pos = cells[j]
                if a_name == b_name and a_col == b_col:
                    continue
                source = "mixed" if a_src != b_src else a_src
                orientation = 0 if a_pos <= b_pos else 1
                shared = (a_name, b_name)
                cols = (a_col, b_col)
                out.append(Candidate(
                    answer=(format_number(a - b),), type="diff_pair",
                    source=source, row_names=shared, columns=cols,
                    orientation=orientation,
                ))
                if abs(b) > 1e-9:
                    out.append(Candidate(
                        answer=(format_number((a - b) / b),), type="pct_pair",
                        source=source, row_names=shared, columns=cols,
                        orientation=orientation,
                    ))
                    out.append(Candidate(
                        answer=(format_number(a / b),), type="ratio_pair",
                        source=source, row_names=shared, columns=cols,
                        orientation=orientation,
                    ))
                    out.append(Candidate(
                        answer=(format_number(a / b * 100),),
                        type="ratio100_pair", source=source, row_names=shared,
                        columns=cols, orientation=orientation,
                    ))
                    if a / b > 0:
                        out.append(Candidate(
                            answer=(format_number((a / b) ** 0.5 - 1),),
                            type="cagr_pair", source=source, row_names=shared,
                            columns=cols, orientation=orientation,
                        ))
                if i < j:
                    out.append(Candidate(
                        answer=(format_number(a + b),), type="sum_pair",
                        source=source, row_names=shared, columns=cols,
                        orientation=orientation,
                    ))
                    out.append(Candidate(
                        answer=(format_number((a + b) / 2),), type="avg_pair",
                        source=source, row_names=shared, columns=cols,
                        orientation=orientation,
                    ))
                out.append(Candidate(
                    answer=("true" if a > b else "false",), type="greater_pair",
                    source=source, row_names=shared, columns=cols,
                    orientation=orientation,
                ))
        # share of total: matched cell / its column total, over both the
        # table alone and the table + text facts (either may be asked).
        for name_raw, column, number, src, _ in cells:
            scopes = [(("table",), src)]
            if "text" in view.sources:
                scopes.append((None, "mixed" if src == "table" else src))
            for scope, source in scopes:
                values = view.numeric_column_values(column, sources=scope)
                total = sum(values)
                if abs(total) > 1e-9:
                    out.append(Candidate(
                        answer=(format_number(number / total),), type="share",
                        source=source, row_names=(name_raw,), columns=(column,),
                    ))

    def _restrict(self, candidates: list[Candidate]) -> list[Candidate]:
        if self.answer_source == "all":
            return candidates
        if self.answer_source == "table":
            return [c for c in candidates if c.source == "table"]
        if self.answer_source == "text":
            return [
                c for c in candidates
                if c.source == "text" and c.type in ("cell", "sup_cell")
            ]
        raise ModelError(f"unknown answer_source {self.answer_source!r}")


#: hashed (question token x candidate type) cross-feature buckets.  This
#: is the scorer's *lexical* pathway: it must see a wording paired with a
#: derivation type during training to credit it at inference — the
#: data-hunger that makes 50-shot training weak and topic transfer lossy,
#: as in the paper's transformer models.
HASH_CROSS_DIM = 96


class TagOpQA:
    """Candidate-ranking QA model with a trained binary scorer."""

    #: dense feature width per (question, candidate) pair.
    FEATURE_DIM = (
        len(_Q_FLAGS) + len(CANDIDATE_TYPES) + len(_AFFINITIES) + 10
        + HASH_CROSS_DIM
    )

    def __init__(self, config: QAConfig | None = None):
        self.config = config or QAConfig()
        self.generator = CandidateGenerator(self.config.answer_source)
        self._mlp = MLP(
            MLPConfig(
                input_dim=self.FEATURE_DIM,
                hidden_dims=self.config.hidden_dims,
                n_classes=2,
                learning_rate=self.config.learning_rate,
                epochs=self.config.epochs,
                patience=self.config.patience,
                batch_size=self.config.batch_size,
                seed=self.config.seed,
            )
        )
        self._trained = False
        #: learned answer-source head (TAGOP's source prediction): a
        #: Naive-Bayes model of P(source | question tokens) estimated
        #: over training positives.
        self._source_head = _SourceHead()

    # -- featurization ------------------------------------------------------
    def question_flags(self, question: str) -> np.ndarray:
        tokens = set(tokenize(question))
        return np.array(
            [float(bool(tokens & _Q_LEXICONS[flag])) for flag in _Q_FLAGS]
        )

    def pair_features(
        self, question: str, q_flags: np.ndarray, candidate: Candidate
    ) -> np.ndarray:
        type_onehot = np.zeros(len(CANDIDATE_TYPES))
        type_onehot[_TYPE_INDEX[candidate.type]] = 1.0
        affinity = np.array(
            [
                q_flags[_Q_FLAGS.index(flag)] * type_onehot[_TYPE_INDEX[ctype]]
                for flag, ctype in _AFFINITIES
            ]
        )
        question_lower = " ".join(tokenize(question))
        row_overlap = _overlap(candidate.row_names, question_lower)
        col_overlap = _overlap(candidate.columns, question_lower)
        cond_in_q = float(
            bool(candidate.condition_value)
            and candidate.condition_value.lower() in question_lower
        )
        extras = np.array(
            [
                row_overlap,
                col_overlap,
                cond_in_q,
                float(candidate.source == "table"),
                float(candidate.source == "text"),
                float(candidate.source == "mixed"),
                min(len(candidate.answer) / 3.0, 1.5),
                float(candidate.orientation),
                float(candidate.type in ("cell", "sup_cell")),
                1.0,  # bias-ish constant
            ]
        )
        crossed = np.zeros(HASH_CROSS_DIM)
        for token in tokenize(question):
            bucket = stable_hash(f"{token}|{candidate.type}") % HASH_CROSS_DIM
            crossed[bucket] += 1.0
        norm = np.linalg.norm(crossed)
        if norm > 0:
            crossed /= norm
        return np.concatenate([q_flags, type_onehot, affinity, extras, crossed])

    # -- training -------------------------------------------------------------
    def fit(self, samples: list[ReasoningSample]) -> "TagOpQA":
        x, y = self._training_matrix(samples)
        if len(x) == 0:
            raise ModelError("no trainable QA pairs produced")
        self._mlp.fit(x, y)
        self._trained = True
        return self

    def fine_tune(self, samples: list[ReasoningSample], epochs: int | None = None) -> "TagOpQA":
        """Continue training on labeled samples.

        Small label budgets get a gentle pass (low LR, few epochs) so
        the synthetic pre-training survives; the source head merges the
        new observations instead of being replaced by a noisy estimate.
        """
        previous_head = self._source_head
        x, y = self._training_matrix(samples)
        if len(x) == 0:
            self._source_head = previous_head
            return self
        new_head = self._source_head
        merged = previous_head.merged_with(new_head)
        self._source_head = merged
        gentle = len(samples) < 100
        tuned = self._mlp.clone()
        tuned.config = MLPConfig(
            **{
                **tuned.config.__dict__,
                "learning_rate": self._mlp.config.learning_rate
                * (0.15 if gentle else 0.5),
                "epochs": epochs
                or (5 if gentle else max(8, self._mlp.config.epochs // 2)),
            }
        )
        tuned.fit(x, y)
        self._mlp = tuned
        self._trained = True
        return self

    def _training_matrix(self, samples) -> tuple[np.ndarray, np.ndarray]:
        rng = random.Random(self.config.seed)
        rows: list[np.ndarray] = []
        labels: list[int] = []
        head = _SourceHead()
        for sample in samples:
            gold = tuple(sorted(normalize_answer(a) for a in sample.answer))
            candidates = self.generator.generate(sample.sentence, sample.context)
            if not candidates:
                continue
            q_flags = self.question_flags(sample.sentence)
            positives = [c for c in candidates if c.key() == gold]
            negatives = [c for c in candidates if c.key() != gold]
            if not positives:
                continue  # answer out of candidate space; skip for training
            rng.shuffle(negatives)
            negatives = negatives[: self.config.negatives_per_positive]
            for candidate in positives[:2]:
                rows.append(self.pair_features(sample.sentence, q_flags, candidate))
                labels.append(1)
            head.observe(sample.sentence, positives[0].source)
            for candidate in negatives:
                rows.append(self.pair_features(sample.sentence, q_flags, candidate))
                labels.append(0)
        if not rows:
            return np.zeros((0, self.FEATURE_DIM)), np.zeros(0, dtype=np.int64)
        if head.total > 0:
            self._source_head = head
        return np.stack(rows), np.array(labels, dtype=np.int64)

    # -- inference -------------------------------------------------------------
    def predict(self, sample: ReasoningSample) -> tuple[str, ...]:
        candidates = self.generator.generate(sample.sentence, sample.context)
        if not candidates:
            return ("",)
        q_flags = self.question_flags(sample.sentence)
        features = np.stack(
            [self.pair_features(sample.sentence, q_flags, c) for c in candidates]
        )
        if self._trained:
            scores = self._mlp.scores(features)
            if self._source_head.total > 0:
                log_posterior = self._source_head.log_posterior(sample.sentence)
                prior = np.array(
                    [log_posterior.get(c.source, -4.0) for c in candidates]
                )
                scores = scores + 2.0 * prior
        else:
            # Untrained (zero-shot) back-off: lexical overlap heuristics
            # only, the analogue of applying TAPEX off the shelf.
            base = len(_Q_FLAGS) + len(CANDIDATE_TYPES) + len(_AFFINITIES)
            scores = features[:, base] * 2.0 + features[:, base + 1]
        best = int(np.argmax(scores))
        return candidates[best].answer

    def predict_batch(self, samples: list[ReasoningSample]) -> list[tuple[str, ...]]:
        """Batch inference with scores *identical* to per-sample
        :meth:`predict`.

        This is the entry point micro-batch serving and batched
        evaluation use.  Candidate scoring deliberately stays
        per-sample: concatenating all candidates into one MLP forward
        is not bitwise-stable (BLAS picks different kernels by matrix
        shape, perturbing low-order bits and, at a near-tie, the
        argmax), and the contract here is that batching can never
        change an answer.  Cross-sample amortization therefore lives in
        shared read-only state (the candidate generator's per-context
        evidence-view memo, the template pools), which repeated
        contexts in a batch hit for free.
        """
        return [self.predict(sample) for sample in samples]


class _SourceHead:
    """Naive-Bayes answer-source predictor: P(source | question tokens).

    Trained from the positive candidates' sources.  A source that never
    produced a training answer keeps a floor probability, so a model
    trained without text-evidence samples effectively cannot propose
    answers read from the text — the learned capability the paper
    attributes to the Table-To-Text / Text-To-Table operators.
    """

    SOURCES = ("table", "text", "mixed")

    def __init__(self) -> None:
        self.total = 0
        self._source_counts = {source: 0 for source in self.SOURCES}
        self._token_counts = {source: {} for source in self.SOURCES}
        self._token_totals = {source: 0 for source in self.SOURCES}

    def merged_with(self, other: "_SourceHead") -> "_SourceHead":
        """Pooled observations of two heads (fine-tuning accumulates)."""
        merged = _SourceHead()
        merged.total = self.total + other.total
        for source in self.SOURCES:
            merged._source_counts[source] = (
                self._source_counts[source] + other._source_counts[source]
            )
            merged._token_totals[source] = (
                self._token_totals[source] + other._token_totals[source]
            )
            counts: dict[str, int] = dict(self._token_counts[source])
            for token, count in other._token_counts[source].items():
                counts[token] = counts.get(token, 0) + count
            merged._token_counts[source] = counts
        return merged

    def observe(self, question: str, source: str) -> None:
        if source not in self._source_counts:
            return
        self.total += 1
        self._source_counts[source] += 1
        counts = self._token_counts[source]
        for token in set(tokenize(question)):
            counts[token] = counts.get(token, 0) + 1
            self._token_totals[source] += 1

    def log_posterior(self, question: str) -> dict[str, float]:
        """Normalized log P(source | question), floored at log(0.02)."""
        tokens = set(tokenize(question))
        raw: dict[str, float] = {}
        for source in self.SOURCES:
            prior = (self._source_counts[source] + 0.5) / (self.total + 1.5)
            score = float(np.log(prior))
            vocabulary = max(self._token_totals[source], 1)
            counts = self._token_counts[source]
            for token in tokens:
                likelihood = (counts.get(token, 0) + 0.1) / (vocabulary + 0.1 * 50)
                score += float(np.log(likelihood))
            raw[source] = score
        peak = max(raw.values())
        exps = {source: float(np.exp(score - peak)) for source, score in raw.items()}
        normalizer = sum(exps.values())
        floor = float(np.log(0.02))
        return {
            source: max(float(np.log(value / normalizer + 1e-12)), floor)
            if value > 0
            else floor
            for source, value in exps.items()
        }


def _overlap(parts: tuple[str, ...], question_lower: str) -> float:
    if not parts:
        return 0.0
    hits = sum(
        1 for part in parts if part and part.lower() in question_lower
    )
    return hits / len(parts)
