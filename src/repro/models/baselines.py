"""Trivial and transfer baselines used across the result tables."""

from __future__ import annotations

import random
from collections import Counter

from repro.models.verifier import FactVerifier, VerifierConfig
from repro.pipelines.samples import ReasoningSample
from repro.rng import make_rng
from repro.sampling.labeler import ClaimLabel


class RandomVerifier:
    """The "Random" row of Tables IV/V: a uniform label guesser."""

    def __init__(self, three_way: bool = False, seed: int = 0):
        self._labels = (
            [ClaimLabel.SUPPORTED, ClaimLabel.REFUTED, ClaimLabel.UNKNOWN]
            if three_way
            else [ClaimLabel.SUPPORTED, ClaimLabel.REFUTED]
        )
        self._rng = make_rng(seed)

    def predict(self, samples: list[ReasoningSample]) -> list[ClaimLabel]:
        return [
            self._labels[self._rng.randrange(len(self._labels))]
            for _ in samples
        ]

    def accuracy(self, samples: list[ReasoningSample]) -> float:
        usable = [s for s in samples if s.label is not None]
        if not usable:
            return 0.0
        predictions = self.predict(usable)
        return sum(
            1 for s, p in zip(usable, predictions) if s.label == p
        ) / len(usable)


class MajorityVerifier:
    """Always predicts the most frequent training label."""

    def __init__(self) -> None:
        self._majority = ClaimLabel.SUPPORTED

    def fit(self, samples: list[ReasoningSample]) -> "MajorityVerifier":
        counts = Counter(s.label for s in samples if s.label is not None)
        if counts:
            self._majority = counts.most_common(1)[0][0]
        return self

    def predict(self, samples: list[ReasoningSample]) -> list[ClaimLabel]:
        return [self._majority for _ in samples]

    def accuracy(self, samples: list[ReasoningSample]) -> float:
        usable = [s for s in samples if s.label is not None]
        if not usable:
            return 0.0
        return sum(1 for s in usable if s.label == self._majority) / len(usable)


def transfer_verifier(
    source_samples: list[ReasoningSample],
    three_way: bool = True,
    seed: int = 0,
) -> FactVerifier:
    """TAPAS-Transfer: train on another benchmark, apply directly.

    The paper trains on TABFACT (2-way, Wikipedia) and evaluates on
    SEM-TAB-FACTS (3-way, science); we keep the 3-way head so the model
    *can* emit Unknown but has never seen one, reproducing the label-gap
    handicap the paper describes.
    """
    verifier = FactVerifier(VerifierConfig(three_way=three_way, seed=seed))
    verifier.fit(source_samples)
    return verifier
