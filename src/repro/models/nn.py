"""Minimal neural-network layer: an MLP with Adam, in pure numpy.

Supports multi-class softmax classification and binary logistic
scoring; enough for every downstream model in this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError


@dataclass(frozen=True)
class MLPConfig:
    """Architecture and optimization hyper-parameters."""

    input_dim: int
    hidden_dims: tuple[int, ...] = (64,)
    n_classes: int = 2
    learning_rate: float = 1e-3
    weight_decay: float = 1e-5
    batch_size: int = 64
    epochs: int = 30
    patience: int = 5
    seed: int = 0


@dataclass
class AdamState:
    """First/second moment buffers for one parameter tensor."""

    m: np.ndarray
    v: np.ndarray
    t: int = 0

    @staticmethod
    def like(param: np.ndarray) -> "AdamState":
        return AdamState(m=np.zeros_like(param), v=np.zeros_like(param))

    def step(
        self, param: np.ndarray, grad: np.ndarray, lr: float,
        beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8,
    ) -> np.ndarray:
        self.t += 1
        self.m = beta1 * self.m + (1 - beta1) * grad
        self.v = beta2 * self.v + (1 - beta2) * grad * grad
        m_hat = self.m / (1 - beta1**self.t)
        v_hat = self.v / (1 - beta2**self.t)
        return param - lr * m_hat / (np.sqrt(v_hat) + eps)


class MLP:
    """A feed-forward classifier with ReLU hidden layers."""

    def __init__(self, config: MLPConfig):
        self.config = config
        rng = np.random.default_rng(config.seed)
        dims = [config.input_dim, *config.hidden_dims, config.n_classes]
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(dims[:-1], dims[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        self._adam_w = [AdamState.like(w) for w in self.weights]
        self._adam_b = [AdamState.like(b) for b in self.biases]

    # -- forward / predict -----------------------------------------------------
    def forward(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Logits plus per-layer activations (for backprop)."""
        activations = [x]
        h = x
        for index, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = h @ w + b
            if index < len(self.weights) - 1:
                h = np.maximum(h, 0.0)
            activations.append(h)
        return h, activations

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        logits, _ = self.forward(np.asarray(x, dtype=np.float64))
        return _softmax(logits)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(x), axis=1)

    def scores(self, x: np.ndarray) -> np.ndarray:
        """Positive-class logit margin (binary models)."""
        logits, _ = self.forward(np.asarray(x, dtype=np.float64))
        if self.config.n_classes != 2:
            raise ModelError("scores() requires a binary model")
        return logits[:, 1] - logits[:, 0]

    # -- training ----------------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
        sample_weight: np.ndarray | None = None,
        verbose: bool = False,
    ) -> "MLP":
        """Train with mini-batch Adam and early stopping on val loss."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if x.ndim != 2 or x.shape[1] != self.config.input_dim:
            raise ModelError(
                f"expected input of width {self.config.input_dim}, got "
                f"{x.shape}"
            )
        if len(x) == 0:
            raise ModelError("cannot fit on an empty dataset")
        weights = (
            np.ones(len(x))
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        rng = np.random.default_rng(self.config.seed + 1)
        best_loss = np.inf
        best_params: tuple[list[np.ndarray], list[np.ndarray]] | None = None
        stall = 0
        for epoch in range(self.config.epochs):
            order = rng.permutation(len(x))
            for start in range(0, len(x), self.config.batch_size):
                batch = order[start : start + self.config.batch_size]
                self._step(x[batch], y[batch], weights[batch])
            if x_val is not None and y_val is not None and len(x_val):
                loss = self.loss(x_val, y_val)
            else:
                loss = self.loss(x, y)
            if verbose:  # pragma: no cover - debug aid
                print(f"epoch {epoch}: loss {loss:.4f}")
            if loss < best_loss - 1e-5:
                best_loss = loss
                best_params = (
                    [w.copy() for w in self.weights],
                    [b.copy() for b in self.biases],
                )
                stall = 0
            else:
                stall += 1
                if stall >= self.config.patience:
                    break
        if best_params is not None:
            self.weights, self.biases = best_params
        return self

    def loss(self, x: np.ndarray, y: np.ndarray) -> float:
        proba = self.predict_proba(x)
        eps = 1e-12
        return float(-np.mean(np.log(proba[np.arange(len(y)), y] + eps)))

    def _step(self, x: np.ndarray, y: np.ndarray, w: np.ndarray) -> None:
        logits, activations = self.forward(x)
        proba = _softmax(logits)
        n = len(x)
        grad = proba.copy()
        grad[np.arange(n), y] -= 1.0
        grad *= (w / max(w.sum(), 1e-9))[:, None]
        # Backprop through the layers in reverse.
        for index in reversed(range(len(self.weights))):
            a_in = activations[index]
            grad_w = a_in.T @ grad + self.config.weight_decay * self.weights[index]
            grad_b = grad.sum(axis=0)
            if index > 0:
                grad = grad @ self.weights[index].T
                grad *= (activations[index] > 0).astype(np.float64)
            self.weights[index] = self._adam_w[index].step(
                self.weights[index], grad_w, self.config.learning_rate
            )
            self.biases[index] = self._adam_b[index].step(
                self.biases[index], grad_b, self.config.learning_rate
            )

    # -- persistence helpers -------------------------------------------------------
    def clone(self) -> "MLP":
        """A deep copy with fresh optimizer state (for fine-tuning)."""
        twin = MLP(self.config)
        twin.weights = [w.copy() for w in self.weights]
        twin.biases = [b.copy() for b in self.biases]
        return twin


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
