"""Fact-verification model (FEVEROUS baseline / TAPAS stand-in)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.models.features import VerificationFeaturizer
from repro.models.nn import MLP, MLPConfig
from repro.pipelines.samples import ReasoningSample
from repro.sampling.labeler import ClaimLabel


@dataclass(frozen=True)
class VerifierConfig:
    """Hyper-parameters of the verification classifier."""

    three_way: bool = False  # include the Unknown class (SEM-TAB-FACTS)
    hidden_dims: tuple[int, ...] = (64,)
    learning_rate: float = 2e-3
    epochs: int = 40
    patience: int = 6
    batch_size: int = 64
    seed: int = 0


class FactVerifier:
    """Claim classifier over engineered verification features.

    Plays the role of the FEVEROUS full-baseline verdict predictor and
    of fine-tuned TAPAS: an encoder (here, the featurizer) followed by a
    trained classification head.
    """

    def __init__(self, config: VerifierConfig | None = None):
        self.config = config or VerifierConfig()
        self.featurizer = VerificationFeaturizer()
        self._labels = (
            [ClaimLabel.SUPPORTED, ClaimLabel.REFUTED, ClaimLabel.UNKNOWN]
            if self.config.three_way
            else [ClaimLabel.SUPPORTED, ClaimLabel.REFUTED]
        )
        self._index = {label: i for i, label in enumerate(self._labels)}
        self._mlp = MLP(
            MLPConfig(
                input_dim=self.featurizer.dim,
                hidden_dims=self.config.hidden_dims,
                n_classes=len(self._labels),
                learning_rate=self.config.learning_rate,
                epochs=self.config.epochs,
                patience=self.config.patience,
                batch_size=self.config.batch_size,
                seed=self.config.seed,
            )
        )

    @property
    def labels(self) -> list[ClaimLabel]:
        return list(self._labels)

    # -- training -----------------------------------------------------------
    def fit(
        self,
        samples: list[ReasoningSample],
        val_samples: list[ReasoningSample] | None = None,
    ) -> "FactVerifier":
        x, y = self._xy(samples)
        x_val, y_val = (None, None)
        if val_samples:
            x_val, y_val = self._xy(val_samples)
        self._mlp.fit(x, y, x_val=x_val, y_val=y_val)
        return self

    def fine_tune(
        self,
        samples: list[ReasoningSample],
        epochs: int | None = None,
    ) -> "FactVerifier":
        """Continue training on labeled samples.

        Few-shot budgets get a gentle pass (low LR, few epochs) so the
        synthetic pre-training is adapted rather than overwritten.
        """
        x, y = self._xy(samples)
        gentle = len(samples) < 100
        tuned = self._mlp.clone()
        tuned.config = MLPConfig(
            **{
                **tuned.config.__dict__,
                "learning_rate": self._mlp.config.learning_rate
                * (0.15 if gentle else 0.5),
                "epochs": epochs
                or (5 if gentle else max(10, self._mlp.config.epochs // 2)),
            }
        )
        tuned.fit(x, y)
        self._mlp = tuned
        return self

    # -- inference ------------------------------------------------------------
    def predict(self, samples: list[ReasoningSample]) -> list[ClaimLabel]:
        if not samples:
            return []
        x = self.featurizer.matrix(samples)
        indices = self._mlp.predict(x)
        return [self._labels[i] for i in indices]

    def accuracy(self, samples: list[ReasoningSample]) -> float:
        """Label accuracy over ``samples``."""
        usable = [s for s in samples if s.label in self._index]
        if not usable:
            return 0.0
        predictions = self.predict(usable)
        hits = sum(
            1
            for sample, predicted in zip(usable, predictions)
            if sample.label == predicted
        )
        return hits / len(usable)

    # -- internals ---------------------------------------------------------------
    def _xy(self, samples: list[ReasoningSample]) -> tuple[np.ndarray, np.ndarray]:
        usable = [s for s in samples if s.label in self._index]
        if not usable:
            raise ModelError("no trainable samples with supported labels")
        x = self.featurizer.matrix(usable)
        y = np.array([self._index[s.label] for s in usable], dtype=np.int64)
        return x, y
