"""Nestable, near-zero-overhead stage timers for the generation engine.

The hot path (sampler → executor → columnar array construction →
filters → NL-gen → serialization) is instrumented with :func:`stage`
markers.  When profiling is *off* — the
default — each marker costs one global load and ``None`` check plus a
no-op context manager, so production throughput is unaffected.  When
profiling is *on* (``repro generate --profile``, or the
``REPRO_PROFILE=1`` environment variable, which is how worker processes
inherit the setting), stages accumulate wall-clock seconds and call
counts keyed by their nesting path (``"sampler/executor"`` is executor
time *inside* the sampler).

Accumulated stats are flushed into a :class:`~repro.telemetry.Telemetry`
sink as timers named ``profile/<path>`` (:func:`flush_into`), which is
what makes the design parallel-safe for free: worker processes ship
their telemetry snapshots to the parent over the existing pipe, timers
merge additively, and the run report's ``profile`` section
(:func:`repro.telemetry.report.build_report`, schema v3) sees the whole
fleet.  Profiling never touches a random number generator, so profiled
and unprofiled runs emit byte-identical samples.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry import Telemetry

#: environment flag that enables profiling at import time — the vehicle
#: by which ``--profile`` reaches worker processes.
ENV_FLAG = "REPRO_PROFILE"

#: telemetry-timer prefix under which flushed stage stats are filed.
PROFILE_PREFIX = "profile/"


class _NullStage:
    """The do-nothing context manager returned while profiling is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_STAGE = _NullStage()


class _StageFrame:
    """One live ``with stage(...)`` frame (re-entrant via fresh frames)."""

    __slots__ = ("profiler", "name", "path", "started", "child_seconds")

    def __init__(self, profiler: "Profiler", name: str):
        self.profiler = profiler
        self.name = name
        self.path = ""
        self.started = 0.0
        self.child_seconds = 0.0

    def __enter__(self) -> "_StageFrame":
        stack = self.profiler._stack
        self.path = f"{stack[-1].path}/{self.name}" if stack else self.name
        stack.append(self)
        self.started = perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        elapsed = perf_counter() - self.started
        stack = self.profiler._stack
        stack.pop()
        stats = self.profiler._stats
        stat = stats.get(self.path)
        if stat is None:
            stats[self.path] = [elapsed, 1]
        else:
            stat[0] += elapsed
            stat[1] += 1
        if stack:
            stack[-1].child_seconds += elapsed
        return False


class Profiler:
    """Accumulates seconds/calls per nesting path of :func:`stage`."""

    __slots__ = ("_stats", "_stack")

    def __init__(self) -> None:
        self._stats: dict[str, list[float]] = {}
        self._stack: list[_StageFrame] = []

    def stage(self, name: str) -> _StageFrame:
        return _StageFrame(self, name)

    def stats(self) -> dict[str, tuple[float, int]]:
        """``path -> (seconds, calls)``, a copy."""
        return {
            path: (stat[0], int(stat[1])) for path, stat in self._stats.items()
        }

    def reset(self) -> None:
        self._stats.clear()

    def flush_into(self, telemetry: "Telemetry") -> None:
        """Move accumulated stats into ``telemetry`` timers and reset.

        Timers are named ``profile/<path>``; moving (not copying) means
        a failed generation attempt's stats land in that attempt's
        scratch sink and are discarded with it, exactly like the
        attempt's counters.
        """
        for path, stat in self._stats.items():
            telemetry.add_time(PROFILE_PREFIX + path, stat[0], int(stat[1]))
        self._stats.clear()


_ACTIVE: Profiler | None = Profiler() if os.environ.get(ENV_FLAG) else None


def active() -> Profiler | None:
    """The process-wide profiler, or ``None`` when profiling is off."""
    return _ACTIVE


def install() -> Profiler:
    """Enable profiling in this process *and* future child processes."""
    global _ACTIVE
    os.environ[ENV_FLAG] = "1"
    if _ACTIVE is None:
        _ACTIVE = Profiler()
    return _ACTIVE


def uninstall() -> None:
    """Disable profiling and drop any unflushed stats."""
    global _ACTIVE
    _ACTIVE = None
    os.environ.pop(ENV_FLAG, None)


def stage(name: str):
    """Context manager timing one named stage (no-op when disabled)."""
    profiler = _ACTIVE
    if profiler is None:
        return _NULL_STAGE
    return profiler.stage(name)


def flush_into(telemetry: "Telemetry") -> None:
    """Flush the active profiler into ``telemetry`` (no-op when off)."""
    profiler = _ACTIVE
    if profiler is not None:
        profiler.flush_into(telemetry)


def profile_section(telemetry_timers: dict[str, dict]) -> dict:
    """Build the run-report ``profile`` section from telemetry timers.

    Extracts every ``profile/<path>`` timer and computes per-stage
    *self* time (total minus the total of the stage's direct children),
    so a report reader can tell "time in the sampler itself" from "time
    in the executor the sampler called".
    """
    stages: dict[str, dict] = {}
    for name, stat in telemetry_timers.items():
        if not name.startswith(PROFILE_PREFIX):
            continue
        path = name[len(PROFILE_PREFIX):]
        stages[path] = {
            "seconds": round(float(stat.get("seconds", 0.0)), 6),
            "calls": int(stat.get("calls", 0)),
        }
    for path, entry in stages.items():
        child_seconds = sum(
            other["seconds"]
            for other_path, other in stages.items()
            if other_path.startswith(path + "/")
            and "/" not in other_path[len(path) + 1:]
        )
        entry["self_seconds"] = round(
            max(0.0, entry["seconds"] - child_seconds), 6
        )
    return {"enabled": bool(stages), "stages": stages}


def render_profile(profile: dict, top: int = 10) -> str:
    """A compact top-N hot-spot table for CLI output."""
    stages = profile.get("stages") or {}
    if not stages:
        return "profile: no stages recorded (run with --profile)"
    ranked = sorted(
        stages.items(), key=lambda item: -item[1].get("self_seconds", 0.0)
    )
    total_self = sum(entry.get("self_seconds", 0.0) for _, entry in ranked)
    lines = [f"profile: top {min(top, len(ranked))} stages by self-time"]
    lines.append(
        f"  {'stage':<32} {'self':>9} {'total':>9} {'calls':>9}  share"
    )
    for path, entry in ranked[:top]:
        self_seconds = entry.get("self_seconds", 0.0)
        share = self_seconds / total_self if total_self > 0 else 0.0
        lines.append(
            f"  {path:<32} {self_seconds:>8.3f}s {entry['seconds']:>8.3f}s "
            f"{entry['calls']:>9}  {share:>5.1%}"
        )
    return "\n".join(lines)
