"""Online inference: model registry, micro-batching engine, HTTP frontend.

The serving arc of the reproduction — the paper trains TAGOP-style QA
models and FEVEROUS-style verifiers on synthetic data *so they can
answer questions and verify claims over unseen tables*; this package is
the path from a trained model to answers over the wire:

* :mod:`repro.serve.registry` — versioned on-disk artifacts with
  integrity manifests (``save_model`` / ``load_model``).
* :mod:`repro.serve.engine` — admission control, micro-batching,
  per-worker model replicas, response cache, in-place model swap,
  drain-then-stop shutdown.
* :mod:`repro.serve.pool` — N pre-fork replica processes (shared
  nothing) behind deterministic routing, with zero-downtime rolling
  reload from the registry.
* :mod:`repro.serve.http` — ``POST /v1/qa``, ``POST /v1/verify``,
  ``POST /v1/ask`` (retrieval-backed QA over a :mod:`repro.store`),
  ``GET /healthz``, ``GET /metrics``, ``POST /v1/admin/reload``;
  in-process and HTTP clients; serves an engine or a pool.
* :mod:`repro.serve.loadgen` — deterministic closed-loop *and*
  open-loop (fixed-rate, coordinated-omission-free) load generation
  for benchmarks and smoke tests.
* :mod:`repro.serve.stats` — the shared nearest-rank percentile
  definition every latency window reports.
* :mod:`repro.serve.chaos` — deterministic serving fault injection
  (slow/hang/crash/corrupt replicas, torn registry reads) carried to
  replica children through the environment.
* :mod:`repro.serve.breaker` — per-replica circuit breakers with
  half-open probe re-admission.
* :mod:`repro.serve.hedge` — the p95-based hedged-dispatch policy.
* :mod:`repro.serve.watch` — the never-dying registry watch loop
  behind ``repro serve --watch-registry``.
"""

from repro.serve.breaker import CircuitBreaker
from repro.serve.engine import (
    EngineConfig,
    InferenceEngine,
    InferenceRequest,
    InferenceResponse,
    PendingResponse,
    Timing,
    response_from_json,
)
from repro.serve.hedge import HedgePolicy
from repro.serve.http import (
    DEADLINE_HEADER,
    DEFAULT_ASK_TOP_K,
    RETRIEVAL_MISS_PREFIX,
    AskResponse,
    AskStats,
    HttpServeClient,
    ParsedRequest,
    ServeClient,
    ServeHTTPServer,
    execute_ask,
    make_server,
    parse_request_payload,
    serve_in_thread,
)
from repro.serve.loadgen import (
    FAILURE_KINDS,
    LoadReport,
    WorkItem,
    build_workload,
    run_load,
    run_load_open,
)
from repro.serve.pool import (
    PoolConfig,
    ReplicaPool,
    ReplicaSpec,
    pool_from_registry,
)
from repro.serve.registry import (
    TASK_ASK,
    TASK_QA,
    TASK_VERIFY,
    TASKS,
    LoadedModel,
    ModelRecord,
    ModelRegistry,
    load_model,
    model_task,
    save_model,
    schema_fingerprint,
)
from repro.serve.stats import nearest_rank, nearest_rank_percentiles
from repro.serve.watch import RegistryWatcher

__all__ = [
    "AskResponse",
    "AskStats",
    "CircuitBreaker",
    "DEADLINE_HEADER",
    "DEFAULT_ASK_TOP_K",
    "EngineConfig",
    "FAILURE_KINDS",
    "HedgePolicy",
    "HttpServeClient",
    "InferenceEngine",
    "InferenceRequest",
    "InferenceResponse",
    "LoadReport",
    "LoadedModel",
    "ModelRecord",
    "ModelRegistry",
    "ParsedRequest",
    "PendingResponse",
    "PoolConfig",
    "RETRIEVAL_MISS_PREFIX",
    "RegistryWatcher",
    "ReplicaPool",
    "ReplicaSpec",
    "ServeClient",
    "ServeHTTPServer",
    "TASKS",
    "TASK_ASK",
    "TASK_QA",
    "TASK_VERIFY",
    "Timing",
    "WorkItem",
    "build_workload",
    "execute_ask",
    "load_model",
    "make_server",
    "model_task",
    "nearest_rank",
    "nearest_rank_percentiles",
    "parse_request_payload",
    "pool_from_registry",
    "response_from_json",
    "run_load",
    "run_load_open",
    "save_model",
    "schema_fingerprint",
    "serve_in_thread",
]
