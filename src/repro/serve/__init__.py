"""Online inference: model registry, micro-batching engine, HTTP frontend.

The serving arc of the reproduction — the paper trains TAGOP-style QA
models and FEVEROUS-style verifiers on synthetic data *so they can
answer questions and verify claims over unseen tables*; this package is
the path from a trained model to answers over the wire:

* :mod:`repro.serve.registry` — versioned on-disk artifacts with
  integrity manifests (``save_model`` / ``load_model``).
* :mod:`repro.serve.engine` — admission control, micro-batching,
  per-worker model replicas, response cache, drain-then-stop shutdown.
* :mod:`repro.serve.http` — ``POST /v1/qa``, ``POST /v1/verify``,
  ``GET /healthz``, ``GET /metrics``; in-process and HTTP clients.
* :mod:`repro.serve.loadgen` — deterministic closed-loop load
  generation for benchmarks and smoke tests.
"""

from repro.serve.engine import (
    EngineConfig,
    InferenceEngine,
    InferenceRequest,
    InferenceResponse,
    PendingResponse,
    Timing,
)
from repro.serve.http import (
    HttpServeClient,
    ParsedRequest,
    ServeClient,
    ServeHTTPServer,
    make_server,
    parse_request_payload,
    serve_in_thread,
)
from repro.serve.loadgen import (
    LoadReport,
    WorkItem,
    build_workload,
    run_load,
)
from repro.serve.registry import (
    TASK_QA,
    TASK_VERIFY,
    TASKS,
    LoadedModel,
    ModelRecord,
    ModelRegistry,
    load_model,
    model_task,
    save_model,
    schema_fingerprint,
)

__all__ = [
    "EngineConfig",
    "HttpServeClient",
    "InferenceEngine",
    "InferenceRequest",
    "InferenceResponse",
    "LoadReport",
    "LoadedModel",
    "ModelRecord",
    "ModelRegistry",
    "ParsedRequest",
    "PendingResponse",
    "ServeClient",
    "ServeHTTPServer",
    "TASKS",
    "TASK_QA",
    "TASK_VERIFY",
    "Timing",
    "WorkItem",
    "build_workload",
    "load_model",
    "make_server",
    "model_task",
    "parse_request_payload",
    "run_load",
    "save_model",
    "schema_fingerprint",
    "serve_in_thread",
]
