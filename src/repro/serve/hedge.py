"""Hedged-request policy for the serving pool.

Hedging is the tail-latency defense of "The Tail at Scale": if the
routed replica has not replied within a *hedge delay*, send the same
request to the next healthy replica and take whichever reply lands
first.  Because inference here is pure (same model, same input, same
answer), the duplicate is semantically free — the only costs are the
extra compute and the accounting, both of which the pool tracks
exactly (``hedges_fired`` / ``hedges_won``).

The delay is adaptive: the p95 of the routed replica's recent latency
window, clamped to ``[floor_s, ceiling_s]``.  The floor keeps a cold
or lightly-loaded pool from hedging everything (p95 of a tiny window
is noisy); the ceiling bounds how long a hung replica can hold a
request hostage before the hedge fires.  Cache-affinity routing stays
primary — hedges only fire on the slow path, so the happy path never
cools sibling caches.

Hedge-added load is **budgeted**: at most ``burst + rate × accepted``
timer hedges may have fired over the pool's lifetime.  Under sustained
overload every request crosses the p95 delay — unbounded hedging would
duplicate a saturated pool's entire workload and *reduce* goodput,
the classic hedging failure mode.  The burst covers the moment a
replica hangs (several in-flight requests need rescuing at once,
before the circuit breaker has enough strikes to trip); the rate bounds
steady-state duplicate work to a rounding error.  Failover after a
*terminal* leg failure is exempt: the first leg is dead, so the retry
adds no duplicate load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.serve.stats import nearest_rank


@dataclass(frozen=True)
class HedgePolicy:
    """When to fire a hedge, derived from observed latency."""

    #: never hedge before this many seconds, however fast the replica
    #: usually is.
    floor_s: float = 0.05
    #: always hedge by this many seconds, however slow it usually is.
    ceiling_s: float = 2.0
    #: the latency quantile the delay tracks.
    quantile: float = 0.95
    #: timer hedges allowed regardless of traffic — sized for the
    #: burst of concurrent in-flight requests a freshly-hung replica
    #: strands before its breaker trips.
    burst: int = 8
    #: additional timer hedges per accepted request (steady-state
    #: hedge-load bound: 2%).
    rate: float = 0.02

    def __post_init__(self) -> None:
        if self.floor_s < 0:
            raise ValueError(f"floor_s must be >= 0, got {self.floor_s}")
        if self.ceiling_s < self.floor_s:
            raise ValueError(
                f"ceiling_s {self.ceiling_s} < floor_s {self.floor_s}"
            )
        if self.burst < 0:
            raise ValueError(f"burst must be >= 0, got {self.burst}")
        if self.rate < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")

    def budget(self, accepted: int) -> float:
        """Max timer hedges that may have fired after ``accepted`` requests."""
        return self.burst + self.rate * accepted

    def delay_s(self, window: Iterable[float]) -> float:
        """The hedge delay for a replica with this latency history.

        ``window`` holds recent request latencies in seconds; an empty
        window (cold replica) yields the ceiling — when we know
        nothing, hedge late rather than stampede.
        """
        observed = nearest_rank(window, self.quantile)
        if observed <= 0.0:
            return self.ceiling_s
        return min(self.ceiling_s, max(self.floor_s, observed))
