"""Small shared statistics helpers for the serving stack.

One home for latency-percentile math so the engine, the load
generator, and the replica pool all report the same definition.
"""

from __future__ import annotations

import math
from typing import Iterable

#: the quantiles every latency window reports, and their JSON keys.
QUANTILES = ((0.50, "p50_ms"), (0.95, "p95_ms"), (0.99, "p99_ms"))


def nearest_rank(values: Iterable[float], q: float) -> float:
    """The nearest-rank ``q``-quantile of ``values``, in the input unit.

    Raw-value sibling of :func:`nearest_rank_percentiles` for callers
    that *act* on a quantile rather than report it — the hedge delay
    (p95 of a replica's recent latency window) and the deadline
    admission gate (p50 of recent compute).  Returns 0.0 for an empty
    window so callers can treat "no history yet" as "no estimate".
    """
    ordered = sorted(values)
    if not ordered:
        return 0.0
    n = len(ordered)
    index = max(0, min(n - 1, math.ceil(q * n) - 1))
    return ordered[index]


def nearest_rank_percentiles(values: Iterable[float]) -> dict[str, float]:
    """Nearest-rank percentiles of ``values`` (seconds), reported in ms.

    Nearest-rank: the q-th percentile of n ordered samples is the
    sample at rank ``ceil(q * n)`` (1-based), i.e. index
    ``ceil(q * n) - 1``.  The previous ``int(q * n)`` indexed one rank
    too high — p50 of a 2-sample window reported the max.
    """
    ordered = sorted(values)
    if not ordered:
        return {key: 0.0 for _, key in QUANTILES} | {"count": 0}
    n = len(ordered)
    out: dict[str, float] = {}
    for q, key in QUANTILES:
        index = max(0, min(n - 1, math.ceil(q * n) - 1))
        out[key] = round(ordered[index] * 1e3, 3)
    out["count"] = n
    return out
