"""Deterministic load generator for the serving stack.

:func:`build_workload` derives a reproducible stream of QA questions and
verification claims from any list of :class:`TableContext`\\ s — it reads
actual row names, columns, and cell values, so the requests exercise the
real candidate/featurization paths, and it draws from a named RNG stream
(:func:`repro.rng.rng_from_key`) so the same seed always produces the
same workload.

:func:`run_load` drives the workload *closed-loop*: ``clients`` threads
each own a fixed shard and issue its requests back-to-back, so offered
load tracks service capacity (the standard way to measure sustainable
RPS rather than queue growth).  Works against either client flavor —
the in-process :class:`~repro.serve.http.ServeClient` or the real-HTTP
:class:`~repro.serve.http.HttpServeClient` — and folds per-request
outcomes into a :class:`LoadReport` (sustained RPS, latency
percentiles, overload rejections, errors) that the serving benchmark
commits to ``benchmarks/BENCH_serve.json``.

:func:`run_load_open` drives the same workload *open-loop*: requests
fire on a fixed arrival schedule (``rate`` per second) regardless of
how fast earlier ones complete, and each latency is measured from the
request's *scheduled* arrival time — the coordinated-omission-free
discipline.  A closed loop politely stops offering load while the
server stalls, hiding exactly the tail a stall creates; the open loop
keeps the meter running, so a 1-second hiccup shows up as 1 second of
queueing in p99 instead of disappearing.  Use closed-loop numbers for
*sustainable capacity* and open-loop numbers for *latency at an
offered rate*.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import (
    DeadlineExceededError,
    OverloadedError,
    ServeError,
)
from repro.rng import rng_from_key
from repro.serve.registry import TASK_ASK, TASK_QA, TASK_VERIFY
from repro.serve.stats import nearest_rank_percentiles
from repro.tables.context import TableContext

#: the failure taxonomy every load report breaks its non-successes
#: into.  ``overloaded`` and ``deadline`` are *admission verdicts* (the
#: server chose not to do the work); ``replica_failed`` is a backend
#: compute-path casualty; ``retrieval_miss`` is a ``/v1/ask`` request
#: whose question matched no stored table (served correctly, answered
#: nothing); ``connection`` is transport trouble reaching the server at
#: all; ``other`` is everything else (including model errors surfaced
#: as ``ok: false``).
FAILURE_KINDS = (
    "overloaded", "deadline", "replica_failed", "retrieval_miss",
    "connection", "other",
)


def classify_exception(error: Exception) -> str:
    """Map a client-side exception onto the failure taxonomy."""
    if isinstance(error, OverloadedError):
        return "overloaded"
    if isinstance(error, DeadlineExceededError):
        return "deadline"
    if isinstance(error, (ConnectionError, TimeoutError, OSError)):
        return "connection"
    # urllib wraps socket errors in URLError (an OSError subclass, so
    # already caught above); anything else is an unclassified failure.
    return "other"


def classify_error_response(error: str | None) -> str:
    """Map an ``ok: false`` response's error string onto the taxonomy.

    The serving stack prefixes its typed terminal errors — the pool's
    ``replica_failed: …``, the engine's ``deadline_exceeded: …``, and
    the store frontend's ``retrieval_miss: …`` — so string-prefix
    matching here is matching a documented contract, not scraping free
    text.
    """
    if not error:
        return "other"
    if error.startswith("replica_failed"):
        return "replica_failed"
    if error.startswith("deadline_exceeded"):
        return "deadline"
    if error.startswith("retrieval_miss"):
        return "retrieval_miss"
    return "other"


@dataclass(frozen=True)
class WorkItem:
    """One scripted request: a task, a sentence, and its context.

    ``sanitize`` asks the serving side to run the messy-table sanitizer
    on this request (the loadgen sets it for items whose context was
    deliberately corrupted).  ``context`` is ``None`` for ``TASK_ASK``
    items — the server retrieves the table from its store.
    """

    task: str
    sentence: str
    context: TableContext | None
    sanitize: bool = False


def _context_sentences(
    context: TableContext, rng, tasks: Sequence[str]
) -> WorkItem | None:
    """One deterministic request against ``context``, or None if barren."""
    table = context.table
    if table.n_rows == 0 or not table.column_names:
        return None
    row = rng.randrange(table.n_rows)
    name = table.row_name(row)
    columns = [
        column for column in table.column_names
        if column != table.row_name_column
    ] or table.column_names
    column = columns[rng.randrange(len(columns))]
    cell = table.cell(row, column)
    task = tasks[rng.randrange(len(tasks))]
    if task == TASK_QA:
        return WorkItem(
            task=TASK_QA,
            sentence=f"what is the {column} for {name} ?",
            context=context,
        )
    # Half the claims are perturbed so the verifier sees both verdicts.
    value = cell.raw
    if rng.random() < 0.5 and value:
        value = f"not {value}"
    return WorkItem(
        task=TASK_VERIFY,
        sentence=f"for {name} , the {column} is {value} .",
        context=context,
    )


def build_workload(
    contexts: Sequence[TableContext],
    n_requests: int,
    *,
    tasks: Sequence[str] = (TASK_QA, TASK_VERIFY),
    seed: int = 0,
    messy_fraction: float = 0.0,
    messy_profile: str = "heavy",
    sanitize_messy: bool = False,
    ask_fraction: float = 0.0,
) -> list[WorkItem]:
    """``n_requests`` scripted requests over ``contexts``, seed-stable.

    ``messy_fraction`` > 0 corrupts that (deterministic) share of the
    items with the named :mod:`repro.messy` profile: the sentence is
    built against the *clean* table first, then the context is swapped
    for its perturbed twin — exactly the production situation of a
    well-posed question meeting a messy table.  The messy decision and
    the corruption itself draw from their own named streams, so the
    clean part of the workload is byte-identical to a
    ``messy_fraction=0`` run with the same seed.  ``sanitize_messy``
    marks the messy items ``sanitize=True`` so :func:`run_load` asks
    the serving side to repair them.

    ``ask_fraction`` > 0 converts that (deterministic) share of the
    *QA* items into ``TASK_ASK`` items: same question, ``context``
    dropped — the server must retrieve the table from its store.  The
    decision draws its own named stream, so the remaining items stay
    byte-identical to an ``ask_fraction=0`` run; pass
    ``tasks=(TASK_QA,)`` for exact control of the mix.
    """
    if not contexts:
        raise ServeError("cannot build a workload over zero contexts")
    for task in tasks:
        if task not in (TASK_QA, TASK_VERIFY):
            raise ServeError(f"unknown workload task {task!r}")
    if not 0.0 <= messy_fraction <= 1.0:
        raise ServeError("messy_fraction must be within [0, 1]")
    if not 0.0 <= ask_fraction <= 1.0:
        raise ServeError("ask_fraction must be within [0, 1]")
    if messy_fraction > 0:
        from repro.messy import profile_operators

        profile_operators(messy_profile)  # fail fast on unknown profile
    out: list[WorkItem] = []
    index = 0
    while len(out) < n_requests:
        rng = rng_from_key(str(seed), "serve-loadgen", str(index))
        context = contexts[index % len(contexts)]
        item = _context_sentences(context, rng, tasks)
        index += 1
        if item is None:
            if index > n_requests * 10 + len(contexts):
                raise ServeError(
                    "contexts produced no usable workload items"
                )
            continue
        if messy_fraction > 0:
            messy_rng = rng_from_key(
                str(seed), "serve-loadgen-messy", str(index - 1)
            )
            if messy_rng.random() < messy_fraction:
                from repro.messy import perturb_context

                item = WorkItem(
                    task=item.task,
                    sentence=item.sentence,
                    context=perturb_context(
                        item.context,
                        f"loadgen:{seed}:{index - 1}",
                        messy_profile,
                    ),
                    sanitize=sanitize_messy,
                )
        if ask_fraction > 0 and item.task == TASK_QA:
            ask_rng = rng_from_key(
                str(seed), "serve-loadgen-ask", str(index - 1)
            )
            if ask_rng.random() < ask_fraction:
                item = WorkItem(
                    task=TASK_ASK,
                    sentence=item.sentence,
                    context=None,
                    sanitize=item.sanitize,
                )
        out.append(item)
    return out


@dataclass
class LoadReport:
    """What a load run measured.

    ``mode`` is ``"closed"`` or ``"open"``; ``offered_rps`` is the
    scheduled arrival rate (open-loop only — a closed loop has no
    offered rate independent of service capacity).  In open-loop
    reports every latency is measured from the request's *scheduled*
    arrival, so queueing delay caused by a saturated server is part of
    the number (coordinated-omission-free).

    ``failures`` breaks every non-success into the
    :data:`FAILURE_KINDS` taxonomy; the legacy ``rejected`` /
    ``errors`` fields are kept as its marginals (``rejected ==
    failures["overloaded"]``, ``errors`` = everything else), so
    pre-taxonomy consumers keep reading the same numbers.
    """

    duration_s: float
    clients: int
    sent: int
    completed: int
    rejected: int
    errors: int
    rps: float
    latency: dict[str, dict[str, float]] = field(default_factory=dict)
    mode: str = "closed"
    offered_rps: float | None = None
    failures: dict[str, int] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        out = {
            "mode": self.mode,
            "duration_s": round(self.duration_s, 4),
            "clients": self.clients,
            "sent": self.sent,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "failures": {
                kind: self.failures.get(kind, 0)
                for kind in FAILURE_KINDS
            },
            "rps": round(self.rps, 2),
            "latency": self.latency,
        }
        if self.offered_rps is not None:
            out["offered_rps"] = round(self.offered_rps, 2)
        return out


def _percentiles(samples: list[float]) -> dict[str, float]:
    return nearest_rank_percentiles(samples)


def _issue(client: Any, item: WorkItem) -> Any:
    """Dispatch one item to the right client method.

    ``sanitize`` is passed only when asked: the documented client
    protocol requires just ``qa``/``verify(sentence, context)`` and
    ``ask(question)``.
    """
    kwargs: dict[str, Any] = {"sanitize": True} if item.sanitize else {}
    if item.task == TASK_ASK:
        return client.ask(item.sentence, **kwargs)
    call = client.qa if item.task == TASK_QA else client.verify
    return call(item.sentence, item.context, **kwargs)


def run_load(
    client: Any,
    workload: Sequence[WorkItem],
    *,
    clients: int = 4,
) -> LoadReport:
    """Drive ``workload`` through ``client`` with ``clients`` threads.

    Each thread owns the shard ``workload[i::clients]`` and issues it
    sequentially (closed loop).  ``client`` needs ``qa(sentence,
    context)`` and ``verify(sentence, context)`` returning an
    :class:`~repro.serve.engine.InferenceResponse`; overload
    rejections that survive the client's own retry policy are counted,
    not raised.
    """
    if clients < 1:
        raise ServeError("clients must be >= 1")
    lock = threading.Lock()
    latencies: dict[str, list[float]] = {
        TASK_QA: [], TASK_VERIFY: [], TASK_ASK: []
    }
    counts = {"completed": 0}
    failures = {kind: 0 for kind in FAILURE_KINDS}

    def drive(shard: Sequence[WorkItem]) -> None:
        for item in shard:
            started = time.perf_counter()
            try:
                response = _issue(client, item)
            except Exception as error:
                # every client-side failure — typed rejection or
                # transport trouble — is classified and counted, never
                # allowed to crash the client thread.
                with lock:
                    failures[classify_exception(error)] += 1
                continue
            elapsed = time.perf_counter() - started
            with lock:
                if response.ok:
                    counts["completed"] += 1
                    latencies[item.task].append(elapsed)
                else:
                    failures[
                        classify_error_response(response.error)
                    ] += 1

    threads = [
        threading.Thread(
            target=drive, args=(list(workload[i::clients]),),
            name=f"loadgen-{i}", daemon=True,
        )
        for i in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = max(1e-9, time.perf_counter() - started)
    all_latencies = (
        latencies[TASK_QA] + latencies[TASK_VERIFY] + latencies[TASK_ASK]
    )
    return LoadReport(
        duration_s=duration,
        clients=clients,
        sent=len(workload),
        completed=counts["completed"],
        rejected=failures["overloaded"],
        errors=sum(failures.values()) - failures["overloaded"],
        rps=counts["completed"] / duration,
        latency={
            "overall": _percentiles(all_latencies),
            TASK_QA: _percentiles(latencies[TASK_QA]),
            TASK_VERIFY: _percentiles(latencies[TASK_VERIFY]),
            TASK_ASK: _percentiles(latencies[TASK_ASK]),
        },
        failures=failures,
    )


def run_load_open(
    client: Any,
    workload: Sequence[WorkItem],
    *,
    rate: float,
    clients: int = 8,
) -> LoadReport:
    """Drive ``workload`` open-loop at a fixed arrival rate.

    Request ``i`` is *scheduled* at ``t0 + i / rate`` and issued by the
    first free client thread at or after that instant; its latency is
    ``completion - scheduled arrival``, so time a request spends
    waiting because the server (or every client thread) was busy
    counts against the tail instead of silently stretching the
    schedule.  That is the coordinated-omission-free discipline: the
    offered load never adapts to service speed.

    ``clients`` bounds in-flight concurrency from the generator side;
    size it well above ``rate × expected latency`` or the generator
    itself becomes the queue (which the numbers will then honestly
    report as latency).
    """
    if rate <= 0:
        raise ServeError("open-loop rate must be > 0 requests/second")
    if clients < 1:
        raise ServeError("clients must be >= 1")
    lock = threading.Lock()
    latencies: dict[str, list[float]] = {
        TASK_QA: [], TASK_VERIFY: [], TASK_ASK: []
    }
    counts = {"completed": 0}
    failures = {kind: 0 for kind in FAILURE_KINDS}
    next_index = [0]
    t0 = time.perf_counter() + 0.05  # small lead so slot 0 isn't late

    def drive() -> None:
        while True:
            with lock:
                index = next_index[0]
                if index >= len(workload):
                    return
                next_index[0] = index + 1
            item = workload[index]
            scheduled = t0 + index / rate
            delay = scheduled - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                response = _issue(client, item)
            except Exception as error:
                with lock:
                    failures[classify_exception(error)] += 1
                continue
            elapsed = time.perf_counter() - scheduled
            with lock:
                if response.ok:
                    counts["completed"] += 1
                    latencies[item.task].append(elapsed)
                else:
                    failures[
                        classify_error_response(response.error)
                    ] += 1

    threads = [
        threading.Thread(target=drive, name=f"loadgen-open-{i}", daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = max(1e-9, time.perf_counter() - t0)
    all_latencies = (
        latencies[TASK_QA] + latencies[TASK_VERIFY] + latencies[TASK_ASK]
    )
    return LoadReport(
        duration_s=duration,
        clients=clients,
        sent=len(workload),
        completed=counts["completed"],
        rejected=failures["overloaded"],
        errors=sum(failures.values()) - failures["overloaded"],
        rps=counts["completed"] / duration,
        latency={
            "overall": _percentiles(all_latencies),
            TASK_QA: _percentiles(latencies[TASK_QA]),
            TASK_VERIFY: _percentiles(latencies[TASK_VERIFY]),
            TASK_ASK: _percentiles(latencies[TASK_ASK]),
        },
        mode="open",
        offered_rps=rate,
        failures=failures,
    )
