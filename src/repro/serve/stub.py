"""Fixed-service-time stand-in models for serving benchmarks.

The scale benchmark needs to answer one question — *does the replica
pool's dispatch/routing/IPC machinery scale request throughput with
replica count?* — independent of how many host cores happen to back
the run.  The real MLP models are CPU-bound pure-Python/numpy work, so
on a small CI host their compute serializes and hides whatever the
serving layer does.

These stubs subclass the real servable classes (so the registry's
``model_task`` / ``schema_fingerprint`` checks, pickling, and the
engine's dispatch all treat them as first-class models) but replace
inference with a calibrated ``time.sleep`` per sample.  ``sleep``
releases the GIL and burns no CPU: each replica behaves as if it owned
an exclusive fixed-latency accelerator, which is the regime the pool
is built for.  Benchmarks that use them must say so — they measure
*serving-infrastructure* scaling, not model FLOPs.

Stubs are deterministic: answers/labels are a stable function of the
request, so cache behaviour and response-equality checks work the same
as with trained models.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.models.qa import QAConfig, TagOpQA
from repro.models.verifier import FactVerifier, VerifierConfig
from repro.sampling.labeler import ClaimLabel

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipelines.samples import ReasoningSample


class FixedServiceQA(TagOpQA):
    """A QA model that answers in exactly ``service_s`` seconds/sample.

    Batching still amortizes nothing here (service time is per sample,
    matching an accelerator running at fixed per-item cost), which
    makes replica-count scaling curves easy to read: ideal RPS is
    ``replicas / service_s``.
    """

    def __init__(self, service_s: float = 0.008):
        super().__init__(QAConfig(epochs=1))
        self.service_s = float(service_s)
        self._trained = True  # never actually scores candidates

    def predict(self, sample: "ReasoningSample") -> tuple[str, ...]:
        return self.predict_batch([sample])[0]

    def predict_batch(
        self, samples: "list[ReasoningSample]"
    ) -> list[tuple[str, ...]]:
        time.sleep(self.service_s * len(samples))
        return [
            (f"stub-answer-{len(sample.sentence) % 7}",)
            for sample in samples
        ]


class FixedServiceVerifier(FactVerifier):
    """A verifier that classifies in exactly ``service_s`` s/sample."""

    def __init__(self, service_s: float = 0.016):
        super().__init__(VerifierConfig(epochs=1))
        self.service_s = float(service_s)

    def predict(
        self, samples: "list[ReasoningSample]"
    ) -> list[ClaimLabel]:
        time.sleep(self.service_s * len(samples))
        return [
            ClaimLabel.SUPPORTED
            if len(sample.sentence) % 2 == 0
            else ClaimLabel.REFUTED
            for sample in samples
        ]
