"""Registry watching: poll default pointers, hot-reload on change.

Extracted from the CLI so the loop is testable and its failure policy
is explicit: **the watch thread never dies**.  ``repro registry
save-model`` rewrites a version directory and then swings the default
pointer; a poll that lands between the two sees a torn state and the
registry raises :class:`~repro.errors.IntegrityError`.  That is a
*transient* condition — the correct response is to log a structured
event and retry on the next tick, not to kill the thread (which would
silently freeze the fleet on whatever model it was serving).

Every observable emits one JSON line through ``emit`` (default:
``print``) with an ``event`` field:

``registry_watch_error``
    a poll failed for one name (torn read, missing manifest, …); the
    watcher keeps the last healthy observation for that name.
``registry_watch_reload``
    the default pointer moved and the reloader ran; carries the
    reloader's summary.
``registry_watch_reload_failed``
    the reloader itself raised; the watcher retries next tick with its
    previous baseline so the change is not lost.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, Sequence


class RegistryWatcher:
    """Poll ``registry`` for default-pointer moves and run ``reloader``.

    ``poll_once`` is the unit of behaviour (and the unit under test);
    ``run`` wraps it in a stop-able loop and ``start`` daemonizes it.
    """

    def __init__(
        self,
        registry: Any,
        names: Sequence[str],
        reloader: Callable[[], dict],
        interval_s: float,
        *,
        stop: threading.Event | None = None,
        emit: Callable[[str], None] = print,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(
                f"watch interval must be > 0, got {interval_s}"
            )
        self.registry = registry
        self.names = list(names)
        self.reloader = reloader
        self.interval_s = interval_s
        self.stop = stop if stop is not None else threading.Event()
        self._emit = emit
        # last healthy model_id per name; names whose current poll
        # failed keep their previous observation so one torn read
        # cannot masquerade as (or mask) a version change.
        self._last: dict[str, str] = self._observe()
        self.polls = 0
        self.errors = 0
        self.reloads = 0

    def _event(self, event: str, **fields: Any) -> None:
        self._emit(json.dumps({"event": event, **fields}, sort_keys=True))

    def _observe(self) -> dict[str, str]:
        """Current default model_id per name; failures logged, skipped."""
        out: dict[str, str] = {}
        for name in self.names:
            try:
                out[name] = self.registry.record(name).model_id
            except Exception as error:
                self.errors += 1
                self._event(
                    "registry_watch_error",
                    name=name,
                    error=str(error),
                    kind=type(error).__name__,
                )
        return out

    def poll_once(self) -> dict | None:
        """One tick: observe, reload if anything moved.

        Returns the reloader's summary when a reload ran, else None.
        Never raises — every failure path is an event plus retry state.
        """
        self.polls += 1
        observed = self._observe()
        merged = {**self._last, **observed}
        if merged == self._last or not observed:
            return None
        try:
            summary = self.reloader()
        except Exception as error:
            self._event(
                "registry_watch_reload_failed",
                error=str(error),
                kind=type(error).__name__,
            )
            return None
        self.reloads += 1
        self._last = merged
        self._event("registry_watch_reload", summary=summary)
        return summary

    def run(self) -> None:
        while not self.stop.wait(self.interval_s):
            self.poll_once()

    def start(self) -> threading.Thread:
        thread = threading.Thread(
            target=self.run, name="registry-watch", daemon=True
        )
        thread.start()
        return thread
