"""Versioned on-disk model artifacts with integrity manifests.

A registry directory packages trained :class:`~repro.models.qa.TagOpQA`
and :class:`~repro.models.verifier.FactVerifier` models for serving::

    registry/
      DEFAULT                      # name of the default model
      qa-tatqa/
        DEFAULT                    # default version of this model
        v0001/
          model.pkl                # pickled model (atomic write)
          model.pkl.manifest.json  # sidecar integrity manifest

Each version's pickle payload gets the same sidecar manifest the corpus
layer uses (:mod:`repro.validate.manifest`): exact SHA-256 and byte
count of the artifact, plus a ``generator`` block recording the task
(``qa`` | ``verify``), the model class, a *feature-schema fingerprint*
(a digest of the featurization contract the weights were trained
against), the training-corpus fingerprint, and the metrics measured at
save time.  :func:`load_model` re-verifies the SHA-256 before
unpickling and re-derives the schema fingerprint from the loaded
object, so a flipped byte, a swapped payload, or an artifact trained
under an incompatible featurizer all raise a typed
:class:`~repro.errors.IntegrityError` at load time — never a silently
wrong answer at serve time.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import IntegrityError, RegistryError
from repro.fsio import atomic_write_bytes, atomic_write_text, sha256_text
from repro.serve import chaos
from repro.validate.manifest import verify_manifest, write_manifest

#: the two servable tasks; mirrors :class:`repro.pipelines.samples.TaskType`.
TASK_QA = "qa"
TASK_VERIFY = "verify"
TASKS = (TASK_QA, TASK_VERIFY)

#: the frontend-only routing task behind ``POST /v1/ask``: retrieval
#: happens in the HTTP layer (:mod:`repro.store`), then the request is
#: answered by the ``TASK_QA`` model — deliberately *not* in ``TASKS``
#: because no model artifact serves "ask" directly.
TASK_ASK = "ask"

#: artifact file name inside a version directory.
ARTIFACT_NAME = "model.pkl"

#: name of the default-pointer files (registry root and per model).
DEFAULT_POINTER = "DEFAULT"

#: ``record_kind`` stamped into artifact manifests.
MODEL_RECORD_KIND = "model-artifact"

#: stable cross-version pickle protocol for artifacts.
PICKLE_PROTOCOL = 4


def model_task(model: Any) -> str:
    """``"qa"`` or ``"verify"`` for a servable model instance."""
    from repro.models.qa import TagOpQA
    from repro.models.verifier import FactVerifier

    if isinstance(model, TagOpQA):
        return TASK_QA
    if isinstance(model, FactVerifier):
        return TASK_VERIFY
    raise RegistryError(
        f"{type(model).__name__} is not a servable model "
        "(expected TagOpQA or FactVerifier)"
    )


def schema_fingerprint(model: Any) -> str:
    """Digest of the featurization contract a model's weights assume.

    Computed from the *code-level* feature schema (dimensions, candidate
    vocabularies, label sets), not the weights: an artifact saved under
    one schema and loaded under a refactored featurizer produces
    garbage scores even though the pickle itself is intact, so the
    fingerprint recorded at save time must match the one re-derived at
    load time.
    """
    task = model_task(model)
    if task == TASK_QA:
        from repro.models.qa import CANDIDATE_TYPES, HASH_CROSS_DIM, TagOpQA

        contract: dict[str, Any] = {
            "family": "tagop-qa",
            "feature_dim": TagOpQA.FEATURE_DIM,
            "hash_cross_dim": HASH_CROSS_DIM,
            "candidate_types": list(CANDIDATE_TYPES),
            "answer_source": model.config.answer_source,
        }
    else:
        from repro.models.features import HASH_DIM

        contract = {
            "family": "fact-verifier",
            "feature_dim": model.featurizer.dim,
            "hash_dim": HASH_DIM,
            "labels": [label.value for label in model.labels],
        }
    return sha256_text(json.dumps(contract, sort_keys=True))


@dataclass(frozen=True)
class ModelRecord:
    """One registered model version, as described by its manifest."""

    name: str
    version: str
    task: str
    model_class: str
    schema_fingerprint: str
    artifact_sha256: str
    artifact_bytes: int
    metrics: dict[str, float]
    train_corpus: dict[str, Any]
    path: str

    @property
    def model_id(self) -> str:
        """The cache/telemetry identity of this artifact."""
        return f"{self.name}@{self.version}"

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "version": self.version,
            "task": self.task,
            "model_class": self.model_class,
            "schema_fingerprint": self.schema_fingerprint,
            "artifact_sha256": self.artifact_sha256,
            "artifact_bytes": self.artifact_bytes,
            "metrics": dict(self.metrics),
            "train_corpus": dict(self.train_corpus),
            "path": self.path,
        }


@dataclass(frozen=True)
class LoadedModel:
    """A verified, unpickled model plus its registry identity.

    ``payload`` keeps the raw pickle bytes so the serving engine can
    cheaply re-instantiate one independent replica per worker thread
    (replicas share no mutable state, so no inference-time locking).
    """

    record: ModelRecord
    model: Any
    payload: bytes

    def replica(self) -> Any:
        """A fresh, independent copy of the model."""
        return pickle.loads(self.payload)


class ModelRegistry:
    """A directory of named, versioned, integrity-checked model artifacts."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # -- naming and layout --------------------------------------------------
    def _model_dir(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise RegistryError(f"invalid model name {name!r}")
        return self.root / name

    def _artifact_path(self, name: str, version: str) -> Path:
        return self._model_dir(name) / version / ARTIFACT_NAME

    def models(self) -> list[str]:
        """All registered model names, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and not entry.name.startswith(".")
        )

    def versions(self, name: str) -> list[str]:
        """All versions of ``name``, oldest first."""
        model_dir = self._model_dir(name)
        if not model_dir.is_dir():
            return []
        return sorted(
            entry.name
            for entry in model_dir.iterdir()
            if entry.is_dir() and (entry / ARTIFACT_NAME).exists()
        )

    # -- default pointers ---------------------------------------------------
    def _read_pointer(self, path: Path) -> str | None:
        if not path.is_file():
            return None
        value = path.read_text(encoding="utf-8").strip()
        return value or None

    def default_model(self) -> str | None:
        """The registry-wide default model name, if set."""
        return self._read_pointer(self.root / DEFAULT_POINTER)

    def default_version(self, name: str) -> str | None:
        """The default version of ``name``, if set."""
        return self._read_pointer(self._model_dir(name) / DEFAULT_POINTER)

    def set_default(self, name: str, version: str | None = None) -> None:
        """Point the registry default at ``name`` (and optionally pin a version)."""
        if name not in self.models():
            raise RegistryError(f"unknown model {name!r} in {self.root}")
        atomic_write_text(self.root / DEFAULT_POINTER, name + "\n")
        if version is not None:
            if version not in self.versions(name):
                raise RegistryError(
                    f"unknown version {version!r} of model {name!r}"
                )
            atomic_write_text(
                self._model_dir(name) / DEFAULT_POINTER, version + "\n"
            )

    # -- save ---------------------------------------------------------------
    def save(
        self,
        model: Any,
        name: str,
        *,
        metrics: dict[str, float] | None = None,
        train_corpus: dict[str, Any] | None = None,
        default: bool = True,
    ) -> ModelRecord:
        """Pickle ``model`` as the next version of ``name``.

        Writes the artifact atomically, then its sidecar manifest (data
        first, manifest second — a crash between the two surfaces as a
        manifest mismatch on the next load, not a silent half-artifact).
        With ``default=True`` the new version becomes the model's
        default, and the model becomes the registry default when no
        default exists yet.
        """
        task = model_task(model)
        fingerprint = schema_fingerprint(model)
        payload = pickle.dumps(model, protocol=PICKLE_PROTOCOL)
        existing = self.versions(name)
        version = f"v{len(existing) + 1:04d}"
        while version in existing:  # gap-tolerant (deleted versions)
            version = f"v{int(version[1:]) + 1:04d}"
        artifact = self._artifact_path(name, version)
        atomic_write_bytes(artifact, payload)
        write_manifest(
            artifact,
            record_kind=MODEL_RECORD_KIND,
            records=1,
            generator={
                "task": task,
                "model_class": type(model).__name__,
                "schema_fingerprint": fingerprint,
                "metrics": dict(metrics or {}),
                "train_corpus": dict(train_corpus or {}),
                "pickle_protocol": PICKLE_PROTOCOL,
            },
        )
        if default:
            atomic_write_text(
                self._model_dir(name) / DEFAULT_POINTER, version + "\n"
            )
            if self.default_model() is None:
                atomic_write_text(self.root / DEFAULT_POINTER, name + "\n")
        return self.record(name, version)

    # -- inspect ------------------------------------------------------------
    def record(self, name: str, version: str | None = None) -> ModelRecord:
        """The manifest-backed description of one model version.

        Verifies the manifest (including the artifact's SHA-256 and
        byte count); raises :class:`RegistryError` for unknown
        names/versions and :class:`IntegrityError` for a missing or
        corrupt manifest or a tampered artifact.
        """
        version = self._resolve_version(name, version)
        artifact = self._artifact_path(name, version)
        chaos.maybe_torn_read(f"{name}@{version}")
        manifest = verify_manifest(artifact, required=True)
        if manifest.record_kind != MODEL_RECORD_KIND:
            raise IntegrityError(
                f"not a model artifact (record_kind="
                f"{manifest.record_kind!r})",
                path=str(artifact),
            )
        generator = manifest.generator or {}
        task = generator.get("task")
        if task not in TASKS:
            raise IntegrityError(
                f"artifact manifest has unknown task {task!r}",
                path=str(artifact),
            )
        return ModelRecord(
            name=name,
            version=version,
            task=task,
            model_class=str(generator.get("model_class", "")),
            schema_fingerprint=str(generator.get("schema_fingerprint", "")),
            artifact_sha256=manifest.data_sha256,
            artifact_bytes=manifest.data_bytes,
            metrics=dict(generator.get("metrics") or {}),
            train_corpus=dict(generator.get("train_corpus") or {}),
            path=str(artifact),
        )

    def list_records(self) -> list[ModelRecord]:
        """Every (model, version) in the registry, for ``repro models list``."""
        out: list[ModelRecord] = []
        for name in self.models():
            for version in self.versions(name):
                out.append(self.record(name, version))
        return out

    def _resolve_version(self, name: str, version: str | None) -> str:
        versions = self.versions(name)
        if not versions:
            raise RegistryError(
                f"unknown model {name!r} in {self.root} "
                f"(have: {', '.join(self.models()) or 'none'})"
            )
        if version is None:
            version = self.default_version(name) or versions[-1]
        if version not in versions:
            raise RegistryError(
                f"unknown version {version!r} of model {name!r} "
                f"(have: {', '.join(versions)})"
            )
        return version

    def _resolve_name(self, name: str | None) -> str:
        if name is not None:
            return name
        name = self.default_model()
        if name is not None:
            return name
        models = self.models()
        if len(models) == 1:
            return models[0]
        raise RegistryError(
            "no model name given and the registry has no default "
            f"(have: {', '.join(models) or 'none'})"
        )

    # -- load ---------------------------------------------------------------
    def load(
        self, name: str | None = None, version: str | None = None
    ) -> LoadedModel:
        """Verify and unpickle a model version (default-resolving).

        The artifact's SHA-256 and byte count are checked against the
        sidecar manifest *before* unpickling — a tampered pickle is
        refused with :class:`IntegrityError`, never executed.  After
        unpickling, the feature-schema fingerprint is re-derived from
        the live object and compared with the manifest's, so an
        artifact from an incompatible featurizer vintage is refused
        too.
        """
        name = self._resolve_name(name)
        record = self.record(name, version)
        artifact = Path(record.path)
        # record() already verified manifest + data SHA-256; re-read the
        # payload it verified.
        payload = artifact.read_bytes()
        try:
            model = pickle.loads(payload)
        except Exception as error:  # unpickling a verified payload
            raise IntegrityError(
                f"artifact failed to unpickle ({error!r})",
                path=str(artifact),
            ) from error
        live_task = model_task(model)
        if live_task != record.task:
            raise IntegrityError(
                f"artifact task mismatch: manifest says {record.task!r}, "
                f"payload is a {live_task!r} model",
                path=str(artifact),
            )
        live_fingerprint = schema_fingerprint(model)
        if record.schema_fingerprint and (
            live_fingerprint != record.schema_fingerprint
        ):
            raise IntegrityError(
                "feature-schema fingerprint mismatch: the artifact was "
                f"saved against schema {record.schema_fingerprint[:12]}… "
                f"but this code derives {live_fingerprint[:12]}… — "
                "retrain or pin the matching package version",
                path=str(artifact),
            )
        return LoadedModel(record=record, model=model, payload=payload)


def save_model(
    registry_dir: str | Path,
    name: str,
    model: Any,
    *,
    metrics: dict[str, float] | None = None,
    train_corpus: dict[str, Any] | None = None,
    default: bool = True,
) -> ModelRecord:
    """Module-level convenience for :meth:`ModelRegistry.save`."""
    return ModelRegistry(registry_dir).save(
        model, name, metrics=metrics, train_corpus=train_corpus,
        default=default,
    )


def load_model(
    registry_dir: str | Path,
    name: str | None = None,
    version: str | None = None,
) -> LoadedModel:
    """Module-level convenience for :meth:`ModelRegistry.load`."""
    return ModelRegistry(registry_dir).load(name, version)
