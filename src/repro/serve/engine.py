"""The serving core: admission control, micro-batching, worker threads.

Request lifecycle::

    submit ──► admission queue ──► micro-batch ──► worker compute ──► response
        │            │
        │            └─ full ─► OverloadedError (typed 429, retry-after hint)
        └─ cache hit ─────────────────────────────► response (no queue, no work)

A bounded per-task queue feeds a pool of worker threads.  Each worker
coalesces queued requests of one task into a micro-batch — up to
``max_batch_size`` requests, lingering at most ``max_wait_s`` after the
oldest request arrived — and runs the whole batch through the model in
one call (``predict_batch`` for QA, list-based ``predict`` for the
verifier).  Every worker owns an independent unpickled *replica* of each
model, so inference never takes a lock and a mutable per-model cache
(e.g. the QA candidate generator's view memo) cannot race.

Accounting invariant, checked by ``/metrics`` consumers and the tests::

    accepted == completed + rejected + in_flight

``accepted`` counts every submission the engine ever saw (including the
ones it immediately rejected); a request ends in exactly one of
``completed`` (a response was produced — possibly an error response,
e.g. a blown per-request deadline) or ``rejected`` (overload or
shutdown; no compute was done), and is ``in_flight`` in between.  All
counters also mirror into a :class:`repro.telemetry.Telemetry` sink
under the ``serve`` section so run reports can fold serving stats in.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    DeadlineExceededError,
    EngineStoppedError,
    OverloadedError,
    RegistryError,
    ServeError,
)
from repro.models.features import tokenize
from repro.pipelines.samples import ReasoningSample, TaskType
from repro.sampling.labeler import ClaimLabel
from repro.serve import chaos
from repro.serve.registry import (
    TASK_QA,
    TASK_VERIFY,
    TASKS,
    LoadedModel,
    model_task,
)
from repro.serve.stats import nearest_rank, nearest_rank_percentiles
from repro.tables.context import TableContext
from repro.telemetry import Telemetry

#: latency samples kept per task for percentile estimation.
_LATENCY_WINDOW = 8192

#: per-model-version latency windows kept for canary comparison; the
#: oldest window is dropped when a reload pushes past this many
#: distinct model ids.
_MODEL_WINDOWS = 8

#: recent per-request compute samples backing the retry-after hint.
#: Bounded so the estimate tracks the *currently served* model: a
#: lifetime average would stay stale for the rest of the process
#: lifetime after a reload to a slower/faster model.
_RETRY_WINDOW = 512

#: fallback retry-after hint when the engine has no throughput estimate.
_DEFAULT_RETRY_AFTER = 0.05


@dataclass(frozen=True)
class EngineConfig:
    """Batching, admission, and cache policy for the engine."""

    workers: int = 2
    max_batch_size: int = 16
    #: micro-batch linger: how long a batch may wait for company after
    #: its oldest request arrived.  Microseconds matter here — the
    #: default trades 2ms of worst-case added latency for batch
    #: amortization.
    max_wait_s: float = 0.002
    #: admission bound across both task queues; submissions beyond it
    #: are rejected with :class:`OverloadedError`.
    queue_limit: int = 256
    #: LRU response cache entries (0 disables caching).
    cache_size: int = 1024
    #: deadline applied to requests that do not carry their own.
    default_deadline_s: float | None = None
    #: unpickle an independent model replica per worker (lock-free
    #: inference).  Disable only for tests that need object identity.
    replicate_models: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")


@dataclass(frozen=True)
class InferenceRequest:
    """One question or claim to run against a served model."""

    id: str
    task: str
    sentence: str
    context: TableContext
    #: wall-clock budget in seconds from submission; ``None`` defers to
    #: the engine's ``default_deadline_s``.
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.task not in TASKS:
            raise ServeError(
                f"unknown task {self.task!r} (expected one of {TASKS})"
            )


@dataclass(frozen=True)
class Timing:
    """Per-request latency breakdown, in seconds."""

    queue_s: float
    compute_s: float
    total_s: float
    batch_size: int

    def to_json(self) -> dict[str, Any]:
        return {
            "queue_ms": round(self.queue_s * 1e3, 3),
            "compute_ms": round(self.compute_s * 1e3, 3),
            "total_ms": round(self.total_s * 1e3, 3),
            "batch_size": self.batch_size,
        }


@dataclass(frozen=True)
class InferenceResponse:
    """The typed result of one request."""

    id: str
    task: str
    ok: bool
    answer: tuple[str, ...] = ()
    label: str | None = None
    error: str | None = None
    cached: bool = False
    model: str = ""
    timing: Timing | None = None
    #: ``SanitizeReport.to_json()`` of the serve-side sanitizer pass,
    #: present only when the request asked for ``sanitize=true``.
    sanitize: dict[str, Any] | None = None

    def to_json(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "id": self.id,
            "task": self.task,
            "ok": self.ok,
            "cached": self.cached,
            "model": self.model,
        }
        if self.task == TASK_QA:
            payload["answer"] = list(self.answer)
        else:
            payload["label"] = self.label
        if self.error is not None:
            payload["error"] = self.error
        if self.timing is not None:
            payload["latency"] = self.timing.to_json()
        if self.sanitize is not None:
            payload["sanitize"] = self.sanitize
        return payload


class PendingResponse:
    """A slot the caller can wait on for one request's response."""

    __slots__ = ("request", "_event", "_response", "enqueued_at")

    def __init__(self, request: InferenceRequest, enqueued_at: float):
        self.request = request
        self.enqueued_at = enqueued_at
        self._event = threading.Event()
        self._response: InferenceResponse | None = None

    def _complete(self, response: InferenceResponse) -> None:
        self._response = response
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> InferenceResponse:
        if not self._event.wait(timeout):
            raise ServeError(
                f"timed out waiting for response to request "
                f"{self.request.id!r}"
            )
        assert self._response is not None
        return self._response


def response_from_json(payload: dict[str, Any]) -> InferenceResponse:
    """Rebuild an :class:`InferenceResponse` from its ``to_json`` payload.

    Shared by the HTTP client and the replica pool (replica processes
    ship responses over a pipe as JSON-compatible dicts).
    """
    latency = payload.get("latency") or {}
    timing = None
    if latency:
        timing = Timing(
            queue_s=latency.get("queue_ms", 0.0) / 1e3,
            compute_s=latency.get("compute_ms", 0.0) / 1e3,
            total_s=latency.get("total_ms", 0.0) / 1e3,
            batch_size=int(latency.get("batch_size", 1)),
        )
    return InferenceResponse(
        id=payload.get("id", ""),
        task=payload.get("task", TASK_QA),
        ok=bool(payload.get("ok")),
        answer=tuple(payload.get("answer") or ()),
        label=payload.get("label"),
        error=(
            payload["error"]
            if isinstance(payload.get("error"), str)
            else None
        ),
        cached=bool(payload.get("cached")),
        model=payload.get("model", ""),
        timing=timing,
        sanitize=payload.get("sanitize"),
    )


def normalize_sentence(sentence: str) -> str:
    """Cache normalization of a question/claim: token stream only."""
    return " ".join(tokenize(sentence))


def context_digest(context: TableContext) -> str:
    """Stable digest of a context's canonical JSON serialization."""
    payload = json.dumps(
        context.to_json(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class _ResponseCache:
    """A locked LRU of completed responses (size 0 = disabled)."""

    def __init__(self, size: int):
        self.size = size
        self._entries: OrderedDict[tuple, InferenceResponse] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def key(self, slot: "_ModelSlot", request: InferenceRequest) -> tuple:
        # Keyed on the slot's *content fingerprint*, not its model_id:
        # every unregistered model shares the id "unregistered-{task}@v0",
        # so an id-keyed cache would serve one model's answers for a
        # different model swapped in under the same id.
        return (
            slot.fingerprint,
            request.task,
            normalize_sentence(request.sentence),
            context_digest(request.context),
        )

    def flush_task(self, task: str) -> int:
        """Drop every cached response for ``task`` (model reload)."""
        with self._lock:
            stale = [key for key in self._entries if key[1] == task]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def get(self, key: tuple) -> InferenceResponse | None:
        with self._lock:
            response = self._entries.get(key)
            if response is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return response

    def put(self, key: tuple, response: InferenceResponse) -> None:
        with self._lock:
            self._entries[key] = response
            self._entries.move_to_end(key)
            while len(self._entries) > self.size:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


class _ModelSlot:
    """One served model: identity + payload for per-worker replication.

    ``fingerprint`` is a digest of the artifact *content* (the registry
    manifest's SHA-256 for registered models, a payload hash
    otherwise); the response cache keys on it so two different models
    that happen to share a display id can never share cache entries.
    """

    def __init__(self, task: str, loaded: Any):
        import pickle

        self.task = task
        if isinstance(loaded, LoadedModel):
            self.model = loaded.model
            self.payload = loaded.payload
            self.model_id = loaded.record.model_id
            self.fingerprint = loaded.record.artifact_sha256
        else:
            self.model = loaded
            self.payload = pickle.dumps(loaded, protocol=4)
            self.model_id = f"unregistered-{task}@v0"
            self.fingerprint = hashlib.sha256(self.payload).hexdigest()

    def replica(self) -> Any:
        import pickle

        return pickle.loads(self.payload)


class InferenceEngine:
    """Thread-based micro-batching inference engine over loaded models.

    ``models`` maps task (``"qa"`` | ``"verify"``) to either a
    :class:`~repro.serve.registry.LoadedModel` or a bare model object.
    Call :meth:`start` before submitting and :meth:`stop` (drain) when
    done; the engine is also a context manager doing both.
    """

    def __init__(
        self,
        models: dict[str, Any],
        config: EngineConfig | None = None,
        telemetry: Telemetry | None = None,
    ):
        if not models:
            raise ServeError("engine needs at least one model")
        for task in models:
            if task not in TASKS:
                raise ServeError(f"unknown task {task!r} in models mapping")
        self.config = config or EngineConfig()
        self.telemetry = telemetry or Telemetry()
        self._slots = {
            task: _ModelSlot(task, loaded) for task, loaded in models.items()
        }
        self._cond = threading.Condition()
        self._queues: dict[str, deque[PendingResponse]] = {
            task: deque() for task in self._slots
        }
        self._cache = _ResponseCache(self.config.cache_size)
        self._ids = itertools.count(1)
        # lifecycle
        self._started = False
        self._stopping = False
        self._threads: list[threading.Thread] = []
        self._started_at = time.monotonic()
        # accounting (all mutated under self._cond)
        self.accepted = 0
        self.completed = 0
        self.rejected = 0
        self.errors = 0
        self.deadline_expired = 0
        self.deadline_rejected = 0
        self._queued = 0       # waiting in a queue
        self._computing = 0    # taken by a worker, not yet completed
        self._batches = 0
        self._batched_requests = 0
        self._max_batch_seen = 0
        self._compute_seconds = 0.0  # summed per-request compute time
        self._recent_compute: deque[float] = deque(maxlen=_RETRY_WINDOW)
        self._reloads = 0
        self._latencies: dict[str, deque[float]] = {
            task: deque(maxlen=_LATENCY_WINDOW) for task in self._slots
        }
        # per-model-version windows: after a reload, old and new
        # versions report side by side for canary comparison.
        self._latencies_by_model: dict[str, deque[float]] = {}
        # serving fault injection (None unless a plan was installed in
        # this process's environment before the engine was built — the
        # zero-overhead-when-disabled guarantee is this single None).
        self._chaos = chaos.engine_injector()
        self._sanitize = {
            "requests": 0,
            "tables_changed": 0,
            "cells_repaired": 0,
            "cells_nulled": 0,
            "cells_kept_text": 0,
            "structure_repairs": 0,
            "stage_errors": 0,
        }

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "InferenceEngine":
        """Spin up the worker pool (idempotent)."""
        with self._cond:
            if self._started:
                return self
            self._started = True
            self._stopping = False
            self._started_at = time.monotonic()
        for index in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker, name=f"serve-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Stop the engine; with ``drain`` every queued request completes.

        New submissions are rejected immediately either way.  Without
        ``drain``, queued requests are failed fast with a ``stopped``
        error response (counted as *rejected* — no compute happened)
        so no caller is ever left hanging.
        """
        abandoned: list[PendingResponse] = []
        with self._cond:
            self._stopping = True
            if not drain:
                for task_queue in self._queues.values():
                    while task_queue:
                        pending = task_queue.popleft()
                        self._queued -= 1
                        self.rejected += 1
                        self.telemetry.increment("serve", "rejected")
                        abandoned.append(pending)
            self._cond.notify_all()
        for pending in abandoned:
            pending._complete(
                InferenceResponse(
                    id=pending.request.id,
                    task=pending.request.task,
                    ok=False,
                    error="stopped: engine shut down before compute",
                    model=self._slots[pending.request.task].model_id,
                )
            )
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []
        with self._cond:
            self._started = False

    def __enter__(self) -> "InferenceEngine":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop(drain=True)

    @property
    def draining(self) -> bool:
        return self._stopping

    # -- submission ---------------------------------------------------------
    def submit(self, request: InferenceRequest) -> PendingResponse:
        """Admit a request; returns a waitable :class:`PendingResponse`.

        Raises :class:`OverloadedError` when the admission queue is
        full and :class:`EngineStoppedError` after :meth:`stop` — both
        count as *rejected*, and the engine did no model work.
        """
        slot = self._slots.get(request.task)
        if slot is None:
            raise ServeError(
                f"no model loaded for task {request.task!r} "
                f"(serving: {', '.join(sorted(self._slots))})"
            )
        cache_key = None
        if self._cache.size > 0:
            # digest outside the lock: hashing a big table must not
            # serialize admissions.
            cache_key = self._cache.key(slot, request)
        now = time.monotonic()
        with self._cond:
            self.accepted += 1
            self.telemetry.increment("serve", "accepted")
            if self._stopping:
                self.rejected += 1
                self.telemetry.increment("serve", "rejected")
                raise EngineStoppedError(
                    "engine is stopped/draining; not accepting requests"
                )
            if cache_key is not None:
                hit = self._cache.get(cache_key)
                if hit is not None:
                    self.completed += 1
                    self.telemetry.increment("serve", "completed")
                    self.telemetry.increment("serve", "cache_hit")
                    pending = PendingResponse(request, now)
                    pending._complete(
                        InferenceResponse(
                            id=request.id,
                            task=hit.task,
                            ok=hit.ok,
                            answer=hit.answer,
                            label=hit.label,
                            error=hit.error,
                            cached=True,
                            model=hit.model,
                            timing=Timing(0.0, 0.0, 0.0, 1),
                        )
                    )
                    return pending
            deadline = (
                request.deadline_s
                if request.deadline_s is not None
                else self.config.default_deadline_s
            )
            if deadline is not None:
                # admission gate: if the remaining budget is already
                # below this engine's recent p50 compute, reject now —
                # computing an answer nobody will wait for is the worst
                # way to spend a saturated pool's time.
                estimate = (
                    nearest_rank(self._recent_compute, 0.50)
                    if self._recent_compute
                    else 0.0
                )
                if deadline <= 0 or (estimate > 0 and deadline < estimate):
                    self.rejected += 1
                    self.deadline_rejected += 1
                    self.telemetry.increment("serve", "rejected")
                    self.telemetry.increment("serve", "deadline_rejected")
                    raise DeadlineExceededError(
                        f"deadline budget {max(0.0, deadline):.3f}s below "
                        f"recent p50 compute {estimate:.3f}s; rejecting "
                        "before work",
                        remaining_s=max(0.0, deadline),
                        estimate_s=estimate if deadline > 0 else None,
                    )
            if self._queued >= self.config.queue_limit:
                self.rejected += 1
                self.telemetry.increment("serve", "rejected")
                self.telemetry.increment("serve", "overloaded")
                raise OverloadedError(
                    f"admission queue full ({self._queued}/"
                    f"{self.config.queue_limit})",
                    retry_after=self._retry_after_locked(),
                )
            pending = PendingResponse(request, now)
            self._queues[request.task].append(pending)
            self._queued += 1
            self.telemetry.increment("serve", f"queued/{request.task}")
            # notify_all: a single notify could wake only a worker that
            # is lingering on the *other* task's micro-batch, leaving
            # this request to an idle worker's poll interval instead.
            self._cond.notify_all()
        return pending

    def infer(
        self,
        task: str,
        sentence: str,
        context: TableContext,
        *,
        deadline_s: float | None = None,
        request_id: str | None = None,
        timeout: float | None = 30.0,
    ) -> InferenceResponse:
        """Blocking convenience: submit and wait for the response."""
        request = InferenceRequest(
            id=request_id or f"r{next(self._ids)}",
            task=task,
            sentence=sentence,
            context=context,
            deadline_s=deadline_s,
        )
        return self.submit(request).result(timeout)

    def note_sanitize(self, report: dict[str, Any]) -> None:
        """Fold one ``SanitizeReport.to_json()`` into engine accounting.

        The serve frontend calls this for every request that asked for
        ``sanitize=true``; the aggregate surfaces as the ``sanitize``
        section of :meth:`stats` (and thus ``/metrics``) and mirrors
        into telemetry like the other serve counters.
        """
        cells = report.get("cells", {}) or {}
        structure = report.get("structure", {}) or {}
        errors = report.get("errors", []) or []
        changed = bool(
            structure
            or cells.get("repaired", 0)
            or cells.get("nulled", 0)
        )
        with self._cond:
            self._sanitize["requests"] += 1
            self._sanitize["tables_changed"] += 1 if changed else 0
            self._sanitize["cells_repaired"] += cells.get("repaired", 0)
            self._sanitize["cells_nulled"] += cells.get("nulled", 0)
            self._sanitize["cells_kept_text"] += cells.get("kept_text", 0)
            self._sanitize["structure_repairs"] += sum(structure.values())
            self._sanitize["stage_errors"] += len(errors)
            self.telemetry.increment("serve", "sanitize_requests")
            if changed:
                self.telemetry.increment("serve", "sanitize_changed")

    def _retry_after_locked(self) -> float:
        """Seconds until capacity likely frees (caller holds the lock).

        Estimated from a bounded window of *recent* per-request compute
        times, not the lifetime average: after a reload to a model with
        a different speed, a lifetime ``compute_seconds / completed``
        average would keep hinting the old model's pace for the rest of
        the process lifetime.
        """
        if not self._recent_compute:
            return _DEFAULT_RETRY_AFTER
        per_request = sum(self._recent_compute) / len(self._recent_compute)
        backlog = self._queued + self._computing
        estimate = per_request * backlog / max(1, self.config.workers)
        return min(5.0, max(0.005, estimate))

    # -- model reload -------------------------------------------------------
    def swap_model(self, task: str, loaded: Any) -> dict[str, str]:
        """Swap the served model for ``task`` in place, zero downtime.

        The single-process reload path (the multi-process path replaces
        whole replicas; see :mod:`repro.serve.pool`).  Worker threads
        pick up the new slot on their next batch — requests already
        being computed finish on the old model and are tagged with its
        ``model_id``.  The response cache's entries for ``task`` are
        flushed, and the retry-after window is reset so the overload
        hint re-learns the new model's pace.
        """
        if task not in self._slots:
            raise ServeError(
                f"no model loaded for task {task!r} "
                f"(serving: {', '.join(sorted(self._slots))})"
            )
        try:
            new_task = (
                loaded.record.task if isinstance(loaded, LoadedModel)
                else model_task(loaded)
            )
        except RegistryError:
            # bare stand-ins (tests, stubs) aren't registry-typed;
            # __init__ accepts them, so the swap path must too.
            new_task = task
        if new_task != task:
            raise ServeError(
                f"cannot swap a {new_task!r} model into the {task!r} slot"
            )
        slot = _ModelSlot(task, loaded)
        with self._cond:
            old = self._slots[task]
            self._slots[task] = slot
            self._reloads += 1
            self._recent_compute.clear()
            self.telemetry.increment("serve", "reloads")
        self._cache.flush_task(task)
        return {"task": task, "old": old.model_id, "new": slot.model_id}

    # -- worker side --------------------------------------------------------
    def _worker(self) -> None:
        # Per-worker model replicas, re-resolved per batch by slot
        # identity so a swap_model() reload takes effect on the very
        # next batch without restarting workers.
        replicas: dict[str, tuple[_ModelSlot, Any]] = {}
        while True:
            taken = self._take_batch()
            if taken is None:
                return
            task, batch = taken
            slot = self._slots[task]
            cached = replicas.get(task)
            if cached is None or cached[0] is not slot:
                model = (
                    slot.replica()
                    if self.config.replicate_models
                    else slot.model
                )
                replicas[task] = (slot, model)
            self._run_batch(task, slot, replicas[task][1], batch)

    def _pick_task_locked(self) -> str | None:
        """The task whose queue head has waited longest (FIFO across tasks)."""
        best: str | None = None
        best_age = None
        for task, task_queue in self._queues.items():
            if not task_queue:
                continue
            age = task_queue[0].enqueued_at
            if best_age is None or age < best_age:
                best, best_age = task, age
        return best

    def _take_batch(self) -> tuple[str, list[PendingResponse]] | None:
        """Block until a micro-batch is ready; ``None`` means shut down.

        Coalescing policy: take the oldest queued request, then keep
        the batch open until it is full (``max_batch_size``) or
        ``max_wait_s`` has passed since that request arrived.  While
        draining, the linger is skipped — shutdown flushes immediately.
        """
        with self._cond:
            while True:
                task = self._pick_task_locked()
                if task is not None:
                    break
                if self._stopping:
                    return None
                self._cond.wait(0.1)
            task_queue = self._queues[task]
            batch = [task_queue.popleft()]
            flush_at = batch[0].enqueued_at + self.config.max_wait_s
            while len(batch) < self.config.max_batch_size:
                if task_queue:
                    batch.append(task_queue.popleft())
                    continue
                remaining = flush_at - time.monotonic()
                if remaining <= 0 or self._stopping:
                    break
                self._cond.wait(remaining)
                if not task_queue:
                    # woke for another task's request or the timeout;
                    # re-check the clock, not the queue, for loop exit.
                    if time.monotonic() >= flush_at or self._stopping:
                        break
            self._queued -= len(batch)
            self._computing += len(batch)
            self._batches += 1
            self._batched_requests += len(batch)
            self._max_batch_seen = max(self._max_batch_seen, len(batch))
            self.telemetry.increment("serve", f"batches/{task}")
        return task, batch

    def _to_sample(self, request: InferenceRequest) -> ReasoningSample:
        if request.task == TASK_QA:
            return ReasoningSample(
                uid=request.id,
                task=TaskType.QUESTION_ANSWERING,
                context=request.context,
                sentence=request.sentence,
                answer=("",),  # placeholder; prediction ignores it
            )
        return ReasoningSample(
            uid=request.id,
            task=TaskType.FACT_VERIFICATION,
            context=request.context,
            sentence=request.sentence,
            label=ClaimLabel.UNKNOWN,  # placeholder; prediction ignores it
        )

    def _run_batch(
        self,
        task: str,
        slot: _ModelSlot,
        model: Any,
        batch: list[PendingResponse],
    ) -> None:
        model_id = slot.model_id
        now = time.monotonic()
        live: list[PendingResponse] = []
        finished: list[tuple[PendingResponse, InferenceResponse]] = []
        for pending in batch:
            deadline = (
                pending.request.deadline_s
                if pending.request.deadline_s is not None
                else self.config.default_deadline_s
            )
            if deadline is not None and now - pending.enqueued_at > deadline:
                finished.append((
                    pending,
                    InferenceResponse(
                        id=pending.request.id,
                        task=task,
                        ok=False,
                        error=(
                            f"deadline_exceeded: spent "
                            f"{now - pending.enqueued_at:.3f}s queued, "
                            f"budget was {deadline:.3f}s"
                        ),
                        model=model_id,
                        timing=Timing(
                            now - pending.enqueued_at, 0.0,
                            now - pending.enqueued_at, len(batch),
                        ),
                    ),
                ))
            else:
                live.append(pending)
        if live:
            compute_started = time.monotonic()
            if self._chaos is not None:
                # injected extra service time, summed across the batch
                # and slept once so a slow batch *looks* slow to every
                # consumer of compute_s (latency windows, hedge delays,
                # retry-after) exactly like a genuinely slow model.
                extra = 0.0
                for _ in live:
                    spec = self._chaos.on_request()
                    if spec is not None and spec.kind == "slow":
                        extra += spec.seconds
                if extra > 0:
                    time.sleep(extra)
            try:
                samples = [self._to_sample(p.request) for p in live]
                if task == TASK_QA:
                    answers = model.predict_batch(samples)
                    results: list[InferenceResponse] = [
                        InferenceResponse(
                            id=p.request.id, task=task, ok=True,
                            answer=tuple(answer), model=model_id,
                        )
                        for p, answer in zip(live, answers)
                    ]
                else:
                    labels = model.predict(samples)
                    results = [
                        InferenceResponse(
                            id=p.request.id, task=task, ok=True,
                            label=label.value, model=model_id,
                        )
                        for p, label in zip(live, labels)
                    ]
            except Exception as error:
                results = [
                    InferenceResponse(
                        id=p.request.id, task=task, ok=False,
                        error=f"{type(error).__name__}: {error}",
                        model=model_id,
                    )
                    for p in live
                ]
            compute_ended = time.monotonic()
            per_request_compute = (compute_ended - compute_started) / len(live)
            for pending, response in zip(live, results):
                queue_s = compute_started - pending.enqueued_at
                total_s = compute_ended - pending.enqueued_at
                finished.append((
                    pending,
                    InferenceResponse(
                        id=response.id, task=response.task, ok=response.ok,
                        answer=response.answer, label=response.label,
                        error=response.error, model=response.model,
                        timing=Timing(
                            queue_s, per_request_compute, total_s, len(batch)
                        ),
                    ),
                ))
        # account + publish
        with self._cond:
            for pending, response in finished:
                self._computing -= 1
                self.completed += 1
                self.telemetry.increment("serve", "completed")
                if not response.ok:
                    self.errors += 1
                    self.telemetry.increment("serve", "error_responses")
                    if response.error and response.error.startswith(
                        "deadline_exceeded"
                    ):
                        self.deadline_expired += 1
                        self.telemetry.increment("serve", "deadline_expired")
                if response.timing is not None:
                    self._compute_seconds += response.timing.compute_s
                    if response.timing.compute_s > 0:
                        self._recent_compute.append(
                            response.timing.compute_s
                        )
                    self._latencies[task].append(response.timing.total_s)
                    window = self._latencies_by_model.get(response.model)
                    if window is None:
                        while len(self._latencies_by_model) >= _MODEL_WINDOWS:
                            self._latencies_by_model.pop(
                                next(iter(self._latencies_by_model))
                            )
                        window = deque(maxlen=_LATENCY_WINDOW)
                        self._latencies_by_model[response.model] = window
                    window.append(response.timing.total_s)
        for pending, response in finished:
            if (
                response.ok
                and self._cache.size > 0
            ):
                self._cache.put(
                    self._cache.key(slot, pending.request), response
                )
            pending._complete(response)
        with self._cond:
            self.telemetry.add_time(
                f"serve/{task}", sum(
                    r.timing.compute_s for _, r in finished
                    if r.timing is not None
                ), calls=len(finished),
            )

    # -- stats --------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        with self._cond:
            return self._queued + self._computing

    @staticmethod
    def _percentiles(values: list[float]) -> dict[str, float]:
        return nearest_rank_percentiles(values)

    def stats(self) -> dict[str, Any]:
        """A JSON-compatible snapshot of engine accounting.

        ``reconciles`` asserts the lifecycle invariant
        ``accepted == completed + rejected + in_flight`` over the
        snapshot itself (taken under the lock, so it is exact).
        """
        with self._cond:
            in_flight = self._queued + self._computing
            uptime = max(1e-9, time.monotonic() - self._started_at)
            latencies = {
                task: self._percentiles(list(window))
                for task, window in self._latencies.items()
            }
            latencies_by_model = {
                model_id: self._percentiles(list(window))
                for model_id, window in self._latencies_by_model.items()
            }
            snapshot: dict[str, Any] = {
                "uptime_s": round(uptime, 3),
                "accepted": self.accepted,
                "completed": self.completed,
                "rejected": self.rejected,
                "in_flight": in_flight,
                "queue_depth": self._queued,
                "errors": self.errors,
                "deadline_expired": self.deadline_expired,
                "deadline_rejected": self.deadline_rejected,
                "throughput_rps": round(self.completed / uptime, 2),
                "batches": {
                    "count": self._batches,
                    "requests": self._batched_requests,
                    "mean_size": round(
                        self._batched_requests / self._batches, 3
                    ) if self._batches else 0.0,
                    "max_size": self._max_batch_seen,
                },
                "cache": {
                    "hits": self._cache.hits,
                    "misses": self._cache.misses,
                    "entries": len(self._cache),
                    "hit_rate": round(
                        self._cache.hits
                        / max(1, self._cache.hits + self._cache.misses),
                        4,
                    ),
                },
                "latency": latencies,
                "latency_by_model": latencies_by_model,
                "sanitize": dict(self._sanitize),
                "models": {
                    task: slot.model_id for task, slot in self._slots.items()
                },
                "reloads": self._reloads,
                "draining": self._stopping,
                "workers": self.config.workers,
                "max_batch_size": self.config.max_batch_size,
                "reconciles": (
                    self.accepted
                    == self.completed + self.rejected + in_flight
                ),
            }
        return snapshot
