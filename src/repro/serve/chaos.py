"""Deterministic fault injection for the serving stack.

The serving twin of :mod:`repro.runtime.faults`: a JSON
:class:`ServeFaultPlan` travels to replica children through the
``REPRO_SERVE_FAULTS`` environment variable (spawn children inherit it),
each child learns its own index from ``REPRO_SERVE_REPLICA``, and
one-shot faults use the same ``O_EXCL`` once-sentinel discipline
(:func:`repro.runtime.faults.claim_once`).  Because every gate is
explicit — replica index, request ordinal, stride, fire budget — a chaos
test that hangs replica 1 on its third request does so at any worker
count, forever.

Fault kinds and where they fire:

``slow``
    add ``seconds`` of service time per gated request, injected in the
    engine's batch loop (works in both single-engine and replica mode).
``hang``
    the replica child swallows the request and never replies on the
    pipe — the fault hedging and breakers exist for.
``crash``
    the replica child ``os._exit``\\ s mid-request — exercises EOF
    detection, orphan completion, and respawn.
``corrupt``
    the replica child replies with a malformed payload — exercises the
    parent's reply hardening (typed failure, never a crash).
``registry_torn_read``
    a registry read raises :class:`repro.errors.IntegrityError`, the
    torn-read-racing-``save-model`` failure the ``--watch-registry``
    loop must survive.

With the variable unset the whole module costs one dictionary miss at
injector-construction time and nothing per request.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import IntegrityError
from repro.runtime.faults import claim_once

#: environment variable carrying the JSON-encoded plan to replicas.
SERVE_FAULTS_ENV = "REPRO_SERVE_FAULTS"
#: set inside each replica child to its slot index; unset in the parent
#: and in single-engine mode (where ``replica=None`` specs match).
REPLICA_ENV = "REPRO_SERVE_REPLICA"

#: kinds handled at the replica child's pipe loop.
REPLICA_KINDS = ("hang", "crash", "corrupt")
#: kinds handled inside the engine's batch loop.
ENGINE_KINDS = ("slow",)
#: kinds handled at registry read time.
REGISTRY_KINDS = ("registry_torn_read",)

KINDS = REPLICA_KINDS + ENGINE_KINDS + REGISTRY_KINDS


@dataclass(frozen=True)
class ServeFaultSpec:
    """One serving fault plus the deterministic gate that fires it."""

    kind: str
    #: fire only in the replica with this slot index (None = any
    #: process, including single-engine mode).
    replica: int | None = None
    #: skip the first ``after`` gated requests.
    after: int = 0
    #: then fire every ``every``-th request (1 = every request).
    every: int = 1
    #: total fire budget (None = unlimited).
    count: int | None = None
    #: added service time for ``slow`` faults.
    seconds: float = 0.0
    #: sentinel file making the fault fire at most once across processes.
    once_path: str | None = None
    #: exit status for ``crash`` faults (visible in pool diagnostics).
    exit_code: int = 67

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown serve fault kind {self.kind!r}")
        if self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "replica": self.replica,
            "after": self.after,
            "every": self.every,
            "count": self.count,
            "seconds": self.seconds,
            "once_path": self.once_path,
            "exit_code": self.exit_code,
        }

    @staticmethod
    def from_json(payload: dict) -> "ServeFaultSpec":
        return ServeFaultSpec(
            kind=payload["kind"],
            replica=payload.get("replica"),
            after=payload.get("after", 0),
            every=payload.get("every", 1),
            count=payload.get("count"),
            seconds=payload.get("seconds", 0.0),
            once_path=payload.get("once_path"),
            exit_code=payload.get("exit_code", 67),
        )


@dataclass(frozen=True)
class ServeFaultPlan:
    """An ordered list of fault specs, JSON-serializable for the env."""

    specs: tuple[ServeFaultSpec, ...] = field(default_factory=tuple)

    def to_json(self) -> list:
        return [spec.to_json() for spec in self.specs]

    @staticmethod
    def from_json(payload: list) -> "ServeFaultPlan":
        return ServeFaultPlan(
            tuple(ServeFaultSpec.from_json(s) for s in payload)
        )


def install(plan: ServeFaultPlan) -> None:
    """Activate ``plan`` for this process and all future children."""
    os.environ[SERVE_FAULTS_ENV] = json.dumps(plan.to_json(), sort_keys=True)


def clear() -> None:
    """Deactivate serving fault injection."""
    os.environ.pop(SERVE_FAULTS_ENV, None)


@contextmanager
def injected(plan: ServeFaultPlan) -> Iterator[ServeFaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


# parse cache keyed on the raw env string, so repeated injector
# construction (one per engine, one per replica loop) parses once.
_parsed: tuple[str, ServeFaultPlan] | None = None


def active_plan() -> ServeFaultPlan | None:
    """The currently installed plan, or None.  Cached on the raw value."""
    global _parsed
    raw = os.environ.get(SERVE_FAULTS_ENV)
    if not raw:
        return None
    if _parsed is None or _parsed[0] != raw:
        _parsed = (raw, ServeFaultPlan.from_json(json.loads(raw)))
    return _parsed[1]


def current_replica() -> int | None:
    """This process's replica slot index, or None outside a replica."""
    raw = os.environ.get(REPLICA_ENV)
    return int(raw) if raw else None


class ChaosInjector:
    """Per-process fault gate for one family of fault kinds.

    Each call site builds its own injector over the kinds it can
    handle (:func:`replica_injector`, :func:`engine_injector`), so a
    replica child's pipe loop and the engine inside it keep independent
    request counters — the gates compose without coordination.
    """

    def __init__(
        self,
        specs: list[ServeFaultSpec],
        replica: int | None,
    ) -> None:
        self._specs = [
            spec
            for spec in specs
            if spec.replica is None or spec.replica == replica
        ]
        self._seen = [0] * len(self._specs)
        self._fired = [0] * len(self._specs)

    def __bool__(self) -> bool:
        return bool(self._specs)

    def on_request(self) -> ServeFaultSpec | None:
        """Advance every gate by one request; return the first that fires."""
        hit: ServeFaultSpec | None = None
        for i, spec in enumerate(self._specs):
            self._seen[i] += 1
            if hit is not None:
                continue
            if self._fires(i, spec):
                self._fired[i] += 1
                hit = spec
        return hit

    def _fires(self, i: int, spec: ServeFaultSpec) -> bool:
        eligible = self._seen[i] - spec.after
        if eligible < 1:
            return False
        if (eligible - 1) % spec.every != 0:
            return False
        if spec.count is not None and self._fired[i] >= spec.count:
            return False
        if spec.once_path is not None and not claim_once(spec.once_path):
            return False
        return True


def replica_injector() -> ChaosInjector | None:
    """Injector for a replica child's pipe loop (hang/crash/corrupt)."""
    return _injector(REPLICA_KINDS)


def engine_injector() -> ChaosInjector | None:
    """Injector for the engine batch loop (slow)."""
    return _injector(ENGINE_KINDS)


def _injector(kinds: tuple[str, ...]) -> ChaosInjector | None:
    plan = active_plan()
    if plan is None:
        return None
    specs = [spec for spec in plan.specs if spec.kind in kinds]
    if not specs:
        return None
    return ChaosInjector(specs, current_replica())


# -- registry torn reads -----------------------------------------------------

_registry_gate: tuple[str, ChaosInjector] | None = None


def maybe_torn_read(source: str) -> None:
    """Raise an injected :class:`IntegrityError` for a registry read.

    Called by :class:`repro.serve.registry.ModelRegistry` on every
    record load.  The injector is process-global (registry reads happen
    from the watch thread and request handlers alike) and rebuilt
    whenever the installed plan changes, so tests can install, clear,
    and reinstall plans freely.
    """
    global _registry_gate
    raw = os.environ.get(SERVE_FAULTS_ENV)
    if not raw:
        _registry_gate = None
        return
    if _registry_gate is None or _registry_gate[0] != raw:
        plan = active_plan()
        assert plan is not None
        specs = [s for s in plan.specs if s.kind in REGISTRY_KINDS]
        _registry_gate = (raw, ChaosInjector(specs, current_replica()))
    gate = _registry_gate[1]
    if not gate:
        return
    spec = gate.on_request()
    if spec is not None:
        raise IntegrityError(
            f"injected torn read (registry record {source})", path=source
        )
