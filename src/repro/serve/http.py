"""HTTP frontend over the inference engine, plus serve clients.

Endpoints (all JSON):

* ``POST /v1/qa``      — ``{"question": str, "context": {…}}`` →
  ``{"ok": true, "answer": […], "model": "name@v0001", "latency": {…}}``
* ``POST /v1/verify``  — ``{"claim": str, "context": {…}}`` →
  ``{"ok": true, "label": "supported" | "refuted" | "unknown", …}``
* ``POST /v1/ask``     — ``{"question": str}`` (question only, **no**
  ``context``) → the server retrieves the top-k tables from its
  attached store (``repro serve --store``), answers over the best one
  with the QA model, and echoes retrieval provenance:
  ``{"ok": true, "answer": […], "retrieval": {"hits": […], "chosen":
  …, "retrieve_ms": …}}``.  Zero hits is a 200 with ``ok: false`` and
  an error prefixed ``retrieval_miss:`` (the transport and the server
  both worked; the corpus had nothing to say).  Served 501 when the
  server was started without a store.
* ``GET /healthz``     — liveness + which models are loaded.
* ``GET /metrics``     — the engine's stats snapshot (throughput,
  p50/p95/p99 latency, batch sizes, cache hit rate, queue depth,
  rejects; ``accepted == completed + rejected + in_flight``).
* ``POST /v1/admin/reload`` — zero-downtime reload of the registry's
  current default model versions (501 when the server was started
  without a registry-backed reloader).

The frontend serves either backend behind the same surface: a
single-process :class:`~repro.serve.engine.InferenceEngine` or a
multi-process :class:`~repro.serve.pool.ReplicaPool` — both expose
``infer`` / ``stats`` / ``note_sanitize``.

``context`` is the :meth:`repro.tables.context.TableContext.to_json`
payload.  Adding ``"sanitize": true`` runs the messy-table sanitizer
(:mod:`repro.sanitize`) over the context before inference — ragged rows,
duplicate/empty headers and scalar cells are repaired at the payload
level, the typed table is then cleaned best-effort, and the per-table
``SanitizeReport`` is echoed back under ``"sanitize"`` in the response
(aggregates appear in ``/metrics`` under ``sanitize``).  Without the
flag, validation is strict: every defect is a 400 whose error object
names the offending field (``error.field``).

Status mapping: 400 malformed request, 404 unknown route,
429 + ``Retry-After`` on admission-queue overload, 503 while draining
(or, pool backend, when *no* replica is routable), 504 when the
end-to-end deadline budget was rejected up front (``error.type:
"deadline"``), 200 otherwise (a request that failed mid-compute — e.g.
a deadline that expired *after* admission — is a 200 with ``ok: false``
and an ``error`` string: the *transport* worked).

Deadlines: clients send their end-to-end budget either as the
``X-Repro-Deadline-Ms`` header (preferred — the clock starts before
body parsing) or the ``deadline_ms`` body field.  The frontend shrinks
the budget by its own parse/validate time and passes what remains to
the backend, whose admission gates reject work that can no longer
finish in time.

Two clients share one interface for tests and the load generator:
:class:`ServeClient` calls the engine in-process (no sockets), and
:class:`HttpServeClient` speaks real HTTP via :mod:`urllib`.  Both can
retry overload rejections with the runtime's
:class:`~repro.runtime.retry.RetryPolicy` semantics.
"""

from __future__ import annotations

import json
import math
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from dataclasses import replace as _dc_replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.errors import (
    DeadlineExceededError,
    EngineStoppedError,
    OverloadedError,
    ReproError,
    ServeError,
)
from repro.runtime.retry import RetryPolicy
from repro.sanitize import sanitize_context, sanitize_table_payload
from repro.serve.engine import (
    InferenceEngine,
    InferenceResponse,
    response_from_json,
)
from repro.serve.registry import TASK_ASK, TASK_QA, TASK_VERIFY
from repro.serve.stats import nearest_rank_percentiles
from repro.tables.context import TableContext

#: request bodies beyond this are refused (protects the JSON parser).
MAX_BODY_BYTES = 16 << 20

_TASK_ROUTES = {
    "/v1/qa": TASK_QA,
    "/v1/verify": TASK_VERIFY,
    "/v1/ask": TASK_ASK,
}
_SENTENCE_FIELD = {
    TASK_QA: "question",
    TASK_VERIFY: "claim",
    TASK_ASK: "question",
}

#: ``top_k`` bounds for /v1/ask (a request cannot demand the corpus).
MAX_TOP_K = 100

#: request header carrying the end-to-end deadline budget in
#: milliseconds; equivalent to the ``deadline_ms`` body field (the
#: header wins when both are present).  The budget starts shrinking the
#: moment the request line is read: parse/validate time in the frontend
#: comes out of it before the backend ever sees the request.
DEADLINE_HEADER = "X-Repro-Deadline-Ms"


class _BadRequest(ServeError):
    """Maps to HTTP 400; ``field`` names the offending payload path."""

    def __init__(self, message: str, field: str | None = None):
        self.field = field
        super().__init__(message)


def _validate_context_payload(payload: dict[str, Any]) -> None:
    """Field-level validation of a ``context`` payload.

    ``TableContext.from_json`` is strict but its failures surface as
    deep ``SchemaError``/``KeyError``s with no payload coordinates.
    This pass walks the JSON first so a ragged row or a duplicate
    header comes back as a 400 naming the exact field, never a 500.
    """
    table = payload.get("table")
    if not isinstance(table, dict):
        raise _BadRequest(
            "'context.table' must be a JSON object "
            "(a Table.to_json payload)",
            field="context.table",
        )
    columns = table.get("columns")
    if not isinstance(columns, list) or not columns:
        raise _BadRequest(
            "'context.table.columns' must be a non-empty list",
            field="context.table.columns",
        )
    seen: dict[str, int] = {}
    for index, entry in enumerate(columns):
        path = f"context.table.columns[{index}]"
        if not isinstance(entry, dict):
            raise _BadRequest(f"'{path}' must be an object", field=path)
        name = entry.get("name")
        if not isinstance(name, str) or not name.strip():
            raise _BadRequest(
                f"'{path}.name' must be a non-empty string",
                field=f"{path}.name",
            )
        key = name.strip().lower()
        if key in seen:
            raise _BadRequest(
                f"duplicate column name {name!r} at '{path}' "
                f"(first used at 'context.table.columns[{seen[key]}]')",
                field=f"{path}.name",
            )
        seen[key] = index
    rows = table.get("rows", [])
    if not isinstance(rows, list):
        raise _BadRequest(
            "'context.table.rows' must be a list of rows",
            field="context.table.rows",
        )
    width = len(columns)
    for index, row in enumerate(rows):
        path = f"context.table.rows[{index}]"
        if not isinstance(row, list):
            raise _BadRequest(
                f"'{path}' must be a list of cells", field=path
            )
        if len(row) != width:
            raise _BadRequest(
                f"'{path}' has {len(row)} cells, expected {width} "
                "(ragged rows are rejected; pass \"sanitize\": true to "
                "have the server pad/truncate them)",
                field=path,
            )
        for cell_index, cell in enumerate(row):
            if not isinstance(cell, str):
                raise _BadRequest(
                    f"'{path}[{cell_index}]' must be a string cell, "
                    f"got {type(cell).__name__} (pass \"sanitize\": true "
                    "to have the server coerce scalars)",
                    field=f"{path}[{cell_index}]",
                )
    paragraphs = payload.get("paragraphs", [])
    if not isinstance(paragraphs, list):
        raise _BadRequest(
            "'context.paragraphs' must be a list",
            field="context.paragraphs",
        )
    for index, entry in enumerate(paragraphs):
        path = f"context.paragraphs[{index}]"
        if not isinstance(entry, dict) or not isinstance(
            entry.get("text"), str
        ):
            raise _BadRequest(
                f"'{path}' must be an object with a string 'text' field",
                field=path,
            )


@dataclass(frozen=True)
class ParsedRequest:
    """A validated (and optionally sanitized) inference request."""

    sentence: str
    #: ``None`` for ``/v1/ask`` — the server retrieves the context.
    context: TableContext | None
    deadline_s: float | None
    request_id: str | None
    #: ``SanitizeReport.to_json()`` when the payload asked for
    #: ``"sanitize": true``; ``None`` otherwise.
    sanitize_report: dict[str, Any] | None = None
    #: whether the payload asked for sanitization — for ``/v1/ask`` the
    #: sanitizer runs on the *retrieved* table, so the flag must travel
    #: even though no report exists at parse time.
    sanitize: bool = False
    #: ``/v1/ask`` retrieval depth; ``None`` means the server default.
    top_k: int | None = None


def parse_request_payload(task: str, payload: Any) -> ParsedRequest:
    """Validate a POST body into a :class:`ParsedRequest`.

    The one validation path for all three POST endpoints, so strict
    field-naming 400s and ``"sanitize": true`` behave identically on
    ``/v1/qa``, ``/v1/verify``, and ``/v1/ask``.

    With ``"sanitize": true`` in the payload the table JSON is first
    repaired at the payload level (ragged rows padded, duplicate/empty
    headers renamed, scalar cells coerced — damage a typed ``Table``
    cannot even represent), then validated, then run through
    :func:`repro.sanitize.sanitize_context`; the merged report rides
    along.  Without it, validation is strict and every defect is a 400
    naming the offending field.

    ``/v1/ask`` differences: ``context`` is *forbidden* (the server
    retrieves it; sending one is a 400 naming the field), ``top_k``
    bounds retrieval depth, and sanitization applies to the retrieved
    table downstream (``sanitize_report`` stays ``None`` here).
    """
    if not isinstance(payload, dict):
        raise _BadRequest("request body must be a JSON object")
    field = _SENTENCE_FIELD[task]
    sentence = payload.get(field)
    if not isinstance(sentence, str) or not sentence.strip():
        raise _BadRequest(
            f"missing or empty {field!r} field", field=field
        )
    sanitize = payload.get("sanitize", False)
    if not isinstance(sanitize, bool):
        raise _BadRequest("'sanitize' must be a boolean", field="sanitize")
    top_k: int | None = None
    if task == TASK_ASK:
        if "context" in payload:
            raise _BadRequest(
                "'/v1/ask' retrieves its own table; remove the "
                "'context' field (use /v1/qa to answer over a "
                "supplied table)",
                field="context",
            )
        raw_top_k = payload.get("top_k")
        if raw_top_k is not None:
            if (
                not isinstance(raw_top_k, int)
                or isinstance(raw_top_k, bool)
                or not 1 <= raw_top_k <= MAX_TOP_K
            ):
                raise _BadRequest(
                    f"'top_k' must be an integer in [1, {MAX_TOP_K}]",
                    field="top_k",
                )
            top_k = raw_top_k
        context: TableContext | None = None
        sanitize_report: dict[str, Any] | None = None
    else:
        if "top_k" in payload:
            raise _BadRequest(
                "'top_k' only applies to /v1/ask", field="top_k"
            )
        context_payload = payload.get("context")
        if not isinstance(context_payload, dict):
            raise _BadRequest(
                "missing 'context' field (a TableContext.to_json payload)",
                field="context",
            )
        payload_fixes: dict[str, int] = {}
        if sanitize:
            table_payload, payload_fixes = sanitize_table_payload(
                context_payload.get("table")
            )
            context_payload = {**context_payload, "table": table_payload}
        _validate_context_payload(context_payload)
        try:
            context = TableContext.from_json(context_payload)
        except (ReproError, KeyError, TypeError, ValueError) as error:
            # validation above should have caught everything; this is the
            # belt-and-braces guard keeping parser changes from becoming
            # 500s
            raise _BadRequest(
                f"malformed context: {error}", field="context"
            ) from error
        sanitize_report = None
        if sanitize:
            context, report = sanitize_context(context)
            report.merge_structure(payload_fixes)
            sanitize_report = report.to_json()
    deadline_ms = payload.get("deadline_ms")
    deadline_s: float | None = None
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
            raise _BadRequest(
                "'deadline_ms' must be a positive number",
                field="deadline_ms",
            )
        deadline_s = float(deadline_ms) / 1e3
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, str):
        raise _BadRequest("'id' must be a string", field="id")
    return ParsedRequest(
        sentence=sentence,
        context=context,
        deadline_s=deadline_s,
        request_id=request_id,
        sanitize_report=sanitize_report,
        sanitize=sanitize,
        top_k=top_k,
    )


# -- /v1/ask: retrieval-backed QA --------------------------------------------

#: retrieval depth when the request does not pass ``top_k``.
DEFAULT_ASK_TOP_K = 5

#: the typed error-string prefix for an empty retrieval (the loadgen's
#: ``retrieval_miss`` failure bucket matches on it — a documented
#: contract like ``replica_failed:`` and ``deadline_exceeded:``).
RETRIEVAL_MISS_PREFIX = "retrieval_miss"


class AskStats:
    """Frontend-side accounting for ``/v1/ask`` (shown in /metrics).

    The engine owns inference accounting; retrieval happens before the
    engine ever sees the request, so its counters live here: requests,
    answered, misses, and retrieve-latency percentiles.
    """

    _WINDOW = 2048

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests = 0
        self._answered = 0
        self._misses = 0
        self._retrieve_s: list[float] = []

    def note(self, *, hit: bool, retrieve_s: float) -> None:
        with self._lock:
            self._requests += 1
            if hit:
                self._answered += 1
            else:
                self._misses += 1
            self._retrieve_s.append(retrieve_s)
            if len(self._retrieve_s) > self._WINDOW:
                del self._retrieve_s[: -self._WINDOW]

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "requests": self._requests,
                "answered": self._answered,
                "retrieval_miss": self._misses,
                "retrieve_ms": nearest_rank_percentiles(
                    list(self._retrieve_s)
                ),
            }


def execute_ask(
    backend: Any,
    retriever: Any,
    question: str,
    *,
    k: int = DEFAULT_ASK_TOP_K,
    sanitize: bool = False,
    deadline_s: float | None = None,
    request_id: str | None = None,
    ask_stats: AskStats | None = None,
) -> dict[str, Any]:
    """Retrieve → (sanitize) → QA; returns the response payload dict.

    The shared ask pipeline behind both the HTTP handler and the
    in-process :class:`ServeClient`: search the store, answer over the
    best hit with the ``TASK_QA`` model, and echo provenance under
    ``"retrieval"``.  Retrieval time comes out of the deadline budget
    before the engine's admission gates see what remains.  The engine's
    typed admission errors (overload, deadline, stopped) propagate to
    the caller's usual mapping.
    """
    started = time.monotonic()
    hits = retriever.search(question, k=k)
    retrieve_s = time.monotonic() - started
    if ask_stats is not None:
        ask_stats.note(hit=bool(hits), retrieve_s=retrieve_s)
    retrieval: dict[str, Any] = {
        "k": k,
        "retrieve_ms": round(retrieve_s * 1e3, 3),
        "hits": [hit.to_json() for hit in hits],
    }
    if not hits:
        return {
            "ok": False,
            "task": TASK_ASK,
            "error": (
                f"{RETRIEVAL_MISS_PREFIX}: no stored table matched "
                "the question"
            ),
            "retrieval": retrieval,
        }
    best = hits[0]
    retrieval["chosen"] = best.doc_id
    retrieval["passage"] = retriever.passage(best.doc_id, max_rows=2)
    context = retriever.fetch(best.doc_id)
    report: dict[str, Any] | None = None
    if sanitize:
        context, report_obj = sanitize_context(context)
        report = report_obj.to_json()
    if deadline_s is not None:
        deadline_s -= time.monotonic() - started
    response = backend.infer(
        TASK_QA, question, context,
        deadline_s=deadline_s, request_id=request_id,
    )
    if report is not None:
        backend.note_sanitize(report)
    payload = response.to_json()
    payload["task"] = TASK_ASK
    payload["retrieval"] = retrieval
    if report is not None:
        payload["sanitize"] = report
    return payload


@dataclass(frozen=True)
class AskResponse:
    """The typed client-side view of a ``/v1/ask`` response."""

    ok: bool
    answer: tuple[str, ...]
    error: str | None
    model: str
    cached: bool
    retrieval: dict[str, Any]
    sanitize: dict[str, Any] | None = None
    latency: dict[str, Any] | None = None

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "AskResponse":
        return AskResponse(
            ok=bool(payload.get("ok")),
            answer=tuple(payload.get("answer") or ()),
            error=(
                payload["error"]
                if isinstance(payload.get("error"), str)
                else None
            ),
            model=payload.get("model", ""),
            cached=bool(payload.get("cached")),
            retrieval=payload.get("retrieval") or {},
            sanitize=payload.get("sanitize"),
            latency=payload.get("latency"),
        )


class ServeRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the engine owned by the server."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    @property
    def engine(self) -> InferenceEngine:
        return self.server.engine  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # -- plumbing -----------------------------------------------------------
    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self,
        status: int,
        error_type: str,
        message: str,
        headers: dict[str, str] | None = None,
        extra: dict[str, Any] | None = None,
    ) -> None:
        payload: dict[str, Any] = {
            "ok": False,
            "error": {"type": error_type, "message": message},
        }
        if extra:
            payload["error"].update(extra)
        self._send_json(status, payload, headers)

    # -- GET ----------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            backend = self.engine
            stats = backend.stats()
            payload: dict[str, Any] = {
                "models": stats["models"],
                "uptime_s": stats["uptime_s"],
            }
            unhealthy = bool(stats["draining"])
            if unhealthy:
                payload["status"] = "draining"
            elif hasattr(backend, "replica_states"):
                # pool backend: per-replica health; the service is down
                # only when *no* replica can take traffic — one slot
                # respawning or breaker-open is degraded, not dead.
                states = backend.replica_states()
                payload["replicas"] = states
                routable = sum(1 for s in states if s["routable"])
                payload["routable_replicas"] = routable
                if routable == 0:
                    unhealthy = True
                    payload["status"] = "unavailable"
                else:
                    payload["status"] = (
                        "ok" if routable == len(states) else "degraded"
                    )
            else:
                payload["status"] = "ok"
            retriever = getattr(self.server, "retriever", None)
            if retriever is not None:
                payload["store"] = {"docs": retriever.doc_count}
            self._send_json(503 if unhealthy else 200, payload)
            return
        if self.path == "/metrics":
            stats = self.engine.stats()
            ask_stats = getattr(self.server, "ask_stats", None)
            if ask_stats is not None:
                stats["ask"] = ask_stats.snapshot()
            self._send_json(200, stats)
            return
        self._send_error_json(404, "not_found", f"no route {self.path!r}")

    # -- POST ---------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/v1/admin/reload":
            self._handle_reload()
            return
        task = _TASK_ROUTES.get(self.path)
        if task is None:
            self._send_error_json(404, "not_found", f"no route {self.path!r}")
            return
        received = time.monotonic()
        header_deadline_s: float | None = None
        raw_deadline = self.headers.get(DEADLINE_HEADER)
        if raw_deadline is not None:
            try:
                header_deadline_ms = float(raw_deadline)
            except ValueError:
                header_deadline_ms = -1.0
            if header_deadline_ms <= 0:
                self._send_error_json(
                    400, "bad_request",
                    f"'{DEADLINE_HEADER}' must be a positive number of "
                    f"milliseconds, got {raw_deadline!r}",
                )
                return
            header_deadline_s = header_deadline_ms / 1e3
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            self._send_error_json(400, "bad_request", "bad Content-Length")
            return
        if length <= 0:
            self._send_error_json(400, "bad_request", "empty request body")
            return
        if length > MAX_BODY_BYTES:
            self._send_error_json(
                413, "payload_too_large",
                f"body of {length} bytes exceeds {MAX_BODY_BYTES}",
            )
            return
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
            parsed = parse_request_payload(task, payload)
        except json.JSONDecodeError as error:
            self._send_error_json(400, "bad_request", f"invalid JSON: {error}")
            return
        except _BadRequest as error:
            self._send_error_json(
                400, "bad_request", str(error),
                extra={"field": error.field} if error.field else None,
            )
            return
        deadline_s = (
            header_deadline_s
            if header_deadline_s is not None
            else parsed.deadline_s
        )
        if deadline_s is not None:
            # shrink the budget by frontend time already spent; the
            # backend's admission gates receive what *remains*, and a
            # budget that died in parsing is their typed rejection to
            # make (so it is counted, not silently dropped here).
            deadline_s -= time.monotonic() - received
        try:
            if task == TASK_ASK:
                retriever = getattr(self.server, "retriever", None)
                if retriever is None:
                    self._send_error_json(
                        501, "not_implemented",
                        "this server has no table store (start with "
                        "--store to enable /v1/ask)",
                    )
                    return
                ask_payload = execute_ask(
                    self.engine, retriever, parsed.sentence,
                    k=parsed.top_k or DEFAULT_ASK_TOP_K,
                    sanitize=parsed.sanitize,
                    deadline_s=deadline_s,
                    request_id=parsed.request_id,
                    ask_stats=getattr(self.server, "ask_stats", None),
                )
                self._send_json(200, ask_payload)
                return
            response = self.engine.infer(
                task, parsed.sentence, parsed.context,
                deadline_s=deadline_s, request_id=parsed.request_id,
            )
        except OverloadedError as error:
            self._send_error_json(
                429, "overloaded", str(error),
                headers={
                    "Retry-After": str(max(1, math.ceil(error.retry_after)))
                },
                extra={"retry_after_ms": round(error.retry_after * 1e3, 1)},
            )
            return
        except DeadlineExceededError as error:
            self._send_error_json(
                504, "deadline", str(error),
                extra={
                    "remaining_ms": round(error.remaining_s * 1e3, 1),
                    "estimate_ms": (
                        round(error.estimate_s * 1e3, 1)
                        if error.estimate_s is not None else None
                    ),
                },
            )
            return
        except EngineStoppedError as error:
            self._send_error_json(503, "stopping", str(error))
            return
        except ServeError as error:
            self._send_error_json(400, "bad_request", str(error))
            return
        if parsed.sanitize_report is not None:
            # counted only for requests that actually reached the model
            # (a 429/503 did no sanitizer-visible work either way).
            self.engine.note_sanitize(parsed.sanitize_report)
            response = _dc_replace(
                response, sanitize=parsed.sanitize_report
            )
        self._send_json(200, response.to_json())

    def _handle_reload(self) -> None:
        """``POST /v1/admin/reload`` — swap in the registry's defaults.

        Delegates to the server's ``reloader`` callback (wired by the
        CLI: an engine ``swap_model`` pass in single-process mode, a
        rolling replica replacement in ``--replicas`` mode).  Servers
        constructed without one answer 501: they have no registry to
        reload from.
        """
        reloader = getattr(self.server, "reloader", None)
        if reloader is None:
            self._send_error_json(
                501, "not_implemented",
                "this server has no reloader (started without a "
                "registry to reload from)",
            )
            return
        # the body is accepted-and-ignored for forward compatibility;
        # drain it so HTTP/1.1 keep-alive framing stays intact.
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except (TypeError, ValueError):
            length = 0
        if length > 0:
            self.rfile.read(min(length, MAX_BODY_BYTES))
        try:
            summary = reloader()
        except ReproError as error:
            self._send_error_json(409, "reload_failed", str(error))
            return
        except Exception as error:  # registry IO, spawn failures, …
            self._send_error_json(
                500, "reload_failed", f"{type(error).__name__}: {error}"
            )
            return
        self._send_json(200, {"ok": True, "reload": summary})


class ServeHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one inference engine."""

    daemon_threads = True
    allow_reuse_address = True
    # Overload must surface as the engine's typed 429, not as kernel-level
    # connection resets: the stdlib default backlog of 5 overflows under a
    # modest burst of reconnecting clients, long before admission control
    # gets to rule on anything.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        engine: Any,
        reloader: Any = None,
        retriever: Any = None,
    ):
        super().__init__(address, ServeRequestHandler)
        self.engine = engine
        self.verbose = False
        #: zero-arg callable performing a model reload and returning a
        #: JSON-compatible summary; ``None`` disables /v1/admin/reload.
        self.reloader = reloader
        #: :class:`repro.store.Retriever` backing ``/v1/ask``; ``None``
        #: turns the route into a 501.
        self.retriever = retriever
        self.ask_stats = AskStats() if retriever is not None else None

    @property
    def port(self) -> int:
        return self.server_address[1]


def make_server(
    engine: Any,
    host: str = "127.0.0.1",
    port: int = 0,
    reloader: Any = None,
    retriever: Any = None,
) -> ServeHTTPServer:
    """Bind a :class:`ServeHTTPServer` (``port=0`` picks a free port).

    ``engine`` is anything with the engine's serving surface —
    ``infer`` / ``stats`` / ``note_sanitize`` — i.e. an
    :class:`~repro.serve.engine.InferenceEngine` or a
    :class:`~repro.serve.pool.ReplicaPool`.  ``retriever`` (a
    :class:`repro.store.Retriever`) enables ``POST /v1/ask``.
    """
    return ServeHTTPServer(
        (host, port), engine, reloader=reloader, retriever=retriever
    )


def serve_in_thread(server: ServeHTTPServer) -> threading.Thread:
    """Run ``server.serve_forever`` on a daemon thread (tests, CLI)."""
    thread = threading.Thread(
        target=server.serve_forever, name="serve-http", daemon=True
    )
    thread.start()
    return thread


# -- clients -----------------------------------------------------------------


class _BaseClient:
    """Shared retry-on-overload behavior for both client flavors."""

    def __init__(self, retry: RetryPolicy | None = None):
        self.retry = retry

    def _with_retry(self, fn):
        """Retry *only* overload rejections under the runtime's policy.

        Same semantics as :func:`repro.runtime.retry.run_with_retry`
        (attempt budget, capped exponential backoff, never sleeping
        past the deadline), specialized to :class:`OverloadedError` —
        a 429 is the one failure where the server explicitly asked the
        client to come back, and its ``retry_after`` hint floors the
        backoff pause.  Everything else propagates immediately.
        """
        if self.retry is None:
            return fn(1)
        import time as _time

        started = _time.monotonic()
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn(attempt)
            except OverloadedError as error:
                if attempt >= self.retry.max_attempts:
                    raise
                pause = max(self.retry.delay(attempt), error.retry_after)
                if self.retry.deadline is not None:
                    remaining = self.retry.deadline - (
                        _time.monotonic() - started
                    )
                    if remaining <= 0 or pause >= remaining:
                        raise
                if pause > 0:
                    _time.sleep(pause)

    # subclasses implement _request(task, …)
    def qa(
        self,
        question: str,
        context: TableContext,
        *,
        deadline_s: float | None = None,
        sanitize: bool = False,
    ) -> InferenceResponse:
        return self._with_retry(
            lambda _attempt: self._request(
                TASK_QA, question, context, deadline_s, sanitize
            )
        )

    def verify(
        self,
        claim: str,
        context: TableContext,
        *,
        deadline_s: float | None = None,
        sanitize: bool = False,
    ) -> InferenceResponse:
        return self._with_retry(
            lambda _attempt: self._request(
                TASK_VERIFY, claim, context, deadline_s, sanitize
            )
        )

    def ask(
        self,
        question: str,
        *,
        k: int = DEFAULT_ASK_TOP_K,
        deadline_s: float | None = None,
        sanitize: bool = False,
    ) -> AskResponse:
        """``/v1/ask``: retrieve the table, then answer the question."""
        return self._with_retry(
            lambda _attempt: self._ask(question, k, deadline_s, sanitize)
        )


class ServeClient(_BaseClient):
    """In-process client: the engine without sockets (tests, loadgen)."""

    def __init__(
        self,
        engine: InferenceEngine,
        retry: RetryPolicy | None = None,
        retriever: Any = None,
    ):
        super().__init__(retry)
        self.engine = engine
        self.retriever = retriever

    def _request(
        self,
        task: str,
        sentence: str,
        context: TableContext,
        deadline_s: float | None,
        sanitize: bool = False,
    ) -> InferenceResponse:
        report = None
        if sanitize:
            # same order as the HTTP frontend: sanitize before
            # admission, so the cache is keyed on the sanitized table.
            context, report = sanitize_context(context)
        response = self.engine.infer(
            task, sentence, context, deadline_s=deadline_s
        )
        if report is not None:
            self.engine.note_sanitize(report.to_json())
            response = _dc_replace(response, sanitize=report.to_json())
        return response

    def _ask(
        self,
        question: str,
        k: int,
        deadline_s: float | None,
        sanitize: bool,
    ) -> AskResponse:
        if self.retriever is None:
            raise ServeError(
                "this client has no table store (construct with "
                "retriever=Retriever.open(...))"
            )
        payload = execute_ask(
            self.engine, self.retriever, question,
            k=k, sanitize=sanitize, deadline_s=deadline_s,
        )
        return AskResponse.from_payload(payload)

    def metrics(self) -> dict[str, Any]:
        return self.engine.stats()

    def healthz(self) -> dict[str, Any]:
        stats = self.engine.stats()
        return {
            "status": "draining" if stats["draining"] else "ok",
            "models": stats["models"],
        }


class HttpServeClient(_BaseClient):
    """Real-HTTP client over :mod:`urllib` (loadgen, smoke tests)."""

    def __init__(
        self,
        base_url: str,
        retry: RetryPolicy | None = None,
        timeout: float = 30.0,
    ):
        super().__init__(retry)
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _get(self, path: str) -> dict[str, Any]:
        with urllib.request.urlopen(
            self.base_url + path, timeout=self.timeout
        ) as reply:
            return json.loads(reply.read().decode("utf-8"))

    def metrics(self) -> dict[str, Any]:
        return self._get("/metrics")

    def healthz(self) -> dict[str, Any]:
        try:
            return self._get("/healthz")
        except urllib.error.HTTPError as error:
            if error.code == 503:
                return json.loads(error.read().decode("utf-8"))
            raise

    def _request(
        self,
        task: str,
        sentence: str,
        context: TableContext,
        deadline_s: float | None,
        sanitize: bool = False,
    ) -> InferenceResponse:
        body: dict[str, Any] = {
            _SENTENCE_FIELD[task]: sentence,
            "context": context.to_json(),
        }
        if sanitize:
            body["sanitize"] = True
        path = "/v1/qa" if task == TASK_QA else "/v1/verify"
        return response_from_json(self._post_json(path, body, deadline_s))

    def _ask(
        self,
        question: str,
        k: int,
        deadline_s: float | None,
        sanitize: bool,
    ) -> AskResponse:
        body: dict[str, Any] = {"question": question, "top_k": k}
        if sanitize:
            body["sanitize"] = True
        return AskResponse.from_payload(
            self._post_json("/v1/ask", body, deadline_s)
        )

    def _post_json(
        self,
        path: str,
        body: dict[str, Any],
        deadline_s: float | None,
    ) -> dict[str, Any]:
        """POST with the shared typed-error mapping (429/503/504 → raises)."""
        headers = {"Content-Type": "application/json"}
        if deadline_s is not None:
            # carried in the header so the frontend can start the
            # budget clock before it has parsed a single body byte.
            headers[DEADLINE_HEADER] = str(round(deadline_s * 1e3, 3))
        data = json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            headers=headers,
            method="POST",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as reply:
                payload = json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            detail = error.read().decode("utf-8", "replace")
            if error.code == 429:
                try:
                    retry_after = (
                        json.loads(detail)["error"]["retry_after_ms"] / 1e3
                    )
                except (json.JSONDecodeError, KeyError, TypeError):
                    retry_after = float(
                        error.headers.get("Retry-After", 1) or 1
                    )
                raise OverloadedError(
                    f"server overloaded: {detail}", retry_after=retry_after
                ) from error
            if error.code == 503:
                raise EngineStoppedError(f"server draining: {detail}") from error
            if error.code == 504:
                remaining = 0.0
                estimate = None
                try:
                    info = json.loads(detail)["error"]
                    remaining = (info.get("remaining_ms") or 0.0) / 1e3
                    if info.get("estimate_ms") is not None:
                        estimate = info["estimate_ms"] / 1e3
                except (json.JSONDecodeError, KeyError, TypeError):
                    pass
                raise DeadlineExceededError(
                    f"deadline exceeded: {detail}",
                    remaining_s=remaining,
                    estimate_s=estimate,
                ) from error
            raise ServeError(
                f"HTTP {error.code} from {self.base_url}: {detail}"
            ) from error
        return payload

    def reload(self, timeout: float | None = None) -> dict[str, Any]:
        """``POST /v1/admin/reload``; returns the reload summary."""
        request = urllib.request.Request(
            self.base_url + "/v1/admin/reload",
            data=b"{}",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout or self.timeout
            ) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            detail = error.read().decode("utf-8", "replace")
            raise ServeError(
                f"reload failed: HTTP {error.code}: {detail}"
            ) from error


