"""Multi-process replica pool: pre-fork serving beyond the GIL.

The thread-based :class:`~repro.serve.engine.InferenceEngine` batches
well but lives in one process, so Python's GIL caps CPU-bound QA/verify
inference no matter how many threads it runs.  :class:`ReplicaPool`
puts N *replica processes* behind the same serving surface — each
replica owns its own engine and its own model instances loaded from
the registry (shared-nothing: no shared memory, no locks across
processes), and the parent routes each request to exactly one replica
over a private pipe.

Topology::

    HTTP frontend (parent process, threads)
        │  ReplicaPool.infer(task, sentence, context)
        │  deterministic route: sha256(task·sentence·context) % N
        ├── pipe ── replica 0: InferenceEngine + model replicas
        ├── pipe ── replica 1:        "
        └── pipe ── replica N-1:      "

Routing is *deterministic*: the replica index is a stable hash of the
request content (task, normalized sentence, context digest), so a
repeated request always lands on the same replica and its response
cache — cache locality survives scale-out, and a given request's
placement is reproducible across runs of the same pool shape.

Zero-downtime reload (``reload()``): for each slot, a *fresh* replica
process is spawned loading the registry's current default version; only
after it reports ready is it swapped into the routing table, and only
then is the old replica drained — it finishes every request already
routed to it, request by request, then exits.  At every instant each
slot has a serving replica, so a sustained request stream sees zero
failures across a reload.  Responses are tagged with the serving
``model_id`` (the engine already does this) and the pool keeps
per-model-version latency windows, so ``/metrics`` reads as a canary
comparison across versions while old and new overlap.

A replica that dies unexpectedly (OOM kill, segfault) fails its
in-flight requests with error responses, is removed from the routing
table, and a replacement is spawned in the background
(``replica_restarts`` counts these).

Resilience layer (all per-request, all accounted in ``/metrics``):

* **Circuit breakers** — one :class:`~repro.serve.breaker.CircuitBreaker`
  per slot.  Replica-attributable failures (timeout, death, corrupt
  reply, lost hedge race) trip it open; the slot leaves the routing set
  and its traffic *spills* to the next live slot in a fixed clockwise
  walk, so spilled placement is as deterministic as primary placement.
  Half-open probes re-admit the replica.  :class:`OverloadedError` never
  trips a breaker: shedding load is a healthy replica doing its job.
* **Hedged dispatch** — if the routed replica has not replied within the
  :class:`~repro.serve.hedge.HedgePolicy` delay (p95 of that slot's
  recent latencies, clamped), the request is re-sent to the next
  routable slot and the first reply wins; the loser's reply slot is
  forgotten, so its late answer is dropped on the floor by the reader
  thread.  Inference is pure, so the duplicate is safe.  ``hedges_fired``
  and ``hedges_won`` account for every hedge exactly.
* **Deadline admission** — a request whose remaining end-to-end budget
  is below the routed slot's recent p50 latency is rejected up front
  with a typed ``deadline`` verdict instead of computed and discarded;
  budgets shrink as they cross each layer (HTTP → pool → replica
  engine).
* **Fault injection** — replica children inherit any installed
  :mod:`repro.serve.chaos` plan through the environment and fire
  ``hang`` / ``crash`` / ``corrupt`` faults at their pipe loop, which is
  how the chaos suite proves all of the above without patching
  internals.

Replica processes are started with the ``spawn`` method: the parent
runs many threads (HTTP handlers, pipe readers), and forking a
multi-threaded process can deadlock on locks held mid-operation by
other threads.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    DeadlineExceededError,
    EngineStoppedError,
    OverloadedError,
    ServeError,
)
from repro.serve import chaos
from repro.serve.breaker import CircuitBreaker
from repro.serve.engine import (
    EngineConfig,
    InferenceRequest,
    InferenceResponse,
    Timing,
    context_digest,
    normalize_sentence,
    response_from_json,
)
from repro.serve.hedge import HedgePolicy
from repro.serve.registry import TASKS, ModelRegistry
from repro.serve.stats import nearest_rank, nearest_rank_percentiles
from repro.telemetry import Telemetry

#: latency samples kept per task / per model version at the pool level.
_LATENCY_WINDOW = 8192

#: per-model-version windows kept for canary comparison.
_MODEL_WINDOWS = 8

#: recent per-slot latency samples backing the hedge delay and the
#: pool-side deadline admission gate.  Lives on the handle, so a
#: respawned or reloaded replica starts with a cold window.
_SLOT_WINDOW = 512

#: how long the parent waits for a freshly spawned replica's ready
#: handshake (model loading + imports happen inside this budget).
_SPAWN_TIMEOUT = 120.0

#: resubmission budget for requests that race a rolling reload: a
#: request dispatched to a replica in the same instant it begins
#: draining is bounced with a "stopped" rejection and retried on the
#: slot's fresh replica.
_REROUTE_ATTEMPTS = 3


@dataclass(frozen=True)
class ReplicaSpec:
    """What a replica process loads: registry + one model per task.

    ``versions`` maps task -> (name, version); ``version`` may be
    ``None``, meaning *resolve the registry default at load time* —
    that resolution happens inside the replica process, so a reload
    that spawns fresh replicas picks up a default pointer moved since
    the pool started.
    """

    registry_dir: str
    models: tuple[tuple[str, str, str | None], ...]  # (task, name, version)

    def resolve(self) -> dict[str, Any]:
        """Load and verify every model (runs inside the replica)."""
        registry = ModelRegistry(self.registry_dir)
        return {
            task: registry.load(name, version)
            for task, name, version in self.models
        }


@dataclass(frozen=True)
class PoolConfig:
    """Pool shape and per-replica engine policy."""

    replicas: int = 2
    engine: EngineConfig = field(default_factory=EngineConfig)
    #: parent-side wait for one response before giving up on it.
    request_timeout_s: float = 30.0
    #: respawn replicas that die unexpectedly.
    restart_dead_replicas: bool = True
    #: hedged-dispatch policy; ``None`` disables hedging entirely
    #: (single-leg dispatch, exactly the pre-resilience behavior).
    hedge: HedgePolicy | None = field(default_factory=HedgePolicy)
    #: consecutive replica-attributable failures that open a slot's
    #: circuit breaker; ``0`` disables breakers.
    breaker_threshold: int = 5
    #: how long an open breaker keeps its slot out of routing before
    #: admitting a half-open probe.
    breaker_cooldown_s: float = 1.0

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ServeError("replicas must be >= 1")
        if self.breaker_threshold < 0:
            raise ServeError("breaker_threshold must be >= 0")


def _replica_main(
    spec: ReplicaSpec, config: EngineConfig, conn, slot: int = 0
) -> None:
    """Entry point of one replica process (runs under ``spawn``).

    Protocol (parent -> replica):

    * ``("infer", rid, request_fields…)`` — submit to the engine;
      replied with ``("response", rid, response_json)`` or
      ``("rejected", rid, kind, message, retry_after)``.
    * ``("stats", rid)`` — replied with ``("stats", rid, stats_json)``.
    * ``("stop", drain)`` — drain (or fail fast) the engine, flush all
      pending replies, send ``("bye",)``, exit.

    The engine does the real work; this loop only moves messages.  A
    single reader thread (this function) submits, and a small responder
    pool relays completed results so a slow request never blocks the
    pipe behind it.

    Chaos: any :mod:`repro.serve.chaos` plan installed in the parent
    rides into this process through the (spawn-inherited) environment;
    ``REPRO_SERVE_REPLICA`` is set to ``slot`` *before* the engine is
    built so both the pipe-level injector here (hang/crash/corrupt) and
    the engine's own injector (slow) gate on the right replica index.
    """
    from concurrent.futures import ThreadPoolExecutor

    os.environ[chaos.REPLICA_ENV] = str(slot)
    injector = chaos.replica_injector()

    from repro.serve.engine import InferenceEngine

    engine = InferenceEngine(spec.resolve(), config)
    engine.start()
    send_lock = threading.Lock()
    responders = ThreadPoolExecutor(
        max_workers=max(4, config.workers * 2),
        thread_name_prefix="replica-responder",
    )

    def send(message: tuple) -> None:
        with send_lock:
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):  # parent died; exit below
                pass

    def relay(rid: int, pending) -> None:
        try:
            response = pending.result(timeout=None)
            send(("response", rid, response.to_json()))
        except Exception as error:  # never lose a reply slot
            send(("rejected", rid, "error",
                  f"{type(error).__name__}: {error}", 0.0))

    stats = engine.stats()
    send(("ready", {
        "pid": os.getpid(),
        "models": stats["models"],
    }))
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                # parent died or closed the pipe: fail fast, don't linger
                engine.stop(drain=False, timeout=5.0)
                return
            kind = message[0]
            if kind == "infer":
                _, rid, task, sentence, context, deadline_s, request_id = (
                    message
                )
                if injector is not None:
                    fault = injector.on_request()
                    if fault is not None:
                        if fault.kind == "hang":
                            # swallow the request: no reply, ever.  The
                            # parent's hedge/timeout machinery owns it.
                            continue
                        if fault.kind == "crash":
                            os._exit(fault.exit_code)
                        if fault.kind == "corrupt":
                            # a reply that is not a response dict at
                            # all; the parent must harden, not crash.
                            send(("response", rid,
                                  "\x00corrupt-reply-payload"))
                            continue
                request = InferenceRequest(
                    id=request_id, task=task, sentence=sentence,
                    context=context, deadline_s=deadline_s,
                )
                try:
                    pending = engine.submit(request)
                except OverloadedError as error:
                    send(("rejected", rid, "overloaded", str(error),
                          error.retry_after))
                except DeadlineExceededError as error:
                    send(("rejected", rid, "deadline", str(error), 0.0))
                except EngineStoppedError as error:
                    send(("rejected", rid, "stopped", str(error), 0.0))
                except ServeError as error:
                    send(("rejected", rid, "error", str(error), 0.0))
                else:
                    responders.submit(relay, rid, pending)
            elif kind == "stats":
                send(("stats", message[1], engine.stats()))
            elif kind == "stop":
                drain = bool(message[1])
                engine.stop(drain=drain)
                responders.shutdown(wait=True)
                # Grace window: an infer that raced into the pipe
                # behind the stop message would otherwise sit unread
                # until the parent's request timeout.  Reject each with
                # the typed "stopped" verdict so the parent reroutes it
                # to the slot's fresh replica immediately.
                while conn.poll(0.25):
                    try:
                        extra = conn.recv()
                    except (EOFError, OSError):
                        break
                    if extra[0] == "infer":
                        send(("rejected", extra[1], "stopped",
                              "replica draining", 0.0))
                    elif extra[0] == "stats":
                        send(("stats", extra[1], engine.stats()))
                send(("bye", engine.stats()))
                return
    finally:
        responders.shutdown(wait=False)
        try:
            conn.close()
        except OSError:
            pass


class _Waiter:
    """Parent-side slot for one in-flight cross-process request.

    ``group`` is an optional shared event also set on completion, so a
    dispatcher waiting on *any of several legs* (hedging) can block on
    one event instead of polling each waiter in turn.
    """

    __slots__ = ("event", "kind", "value", "group")

    def __init__(self, group: threading.Event | None = None) -> None:
        self.event = threading.Event()
        self.kind: str | None = None
        self.value: Any = None
        self.group = group

    def complete(self, kind: str, value: Any) -> None:
        self.kind = kind
        self.value = value
        self.event.set()
        if self.group is not None:
            self.group.set()


def _interpret(waiter: _Waiter) -> InferenceResponse:
    """Resolve a completed waiter into a response or a typed error.

    Hardened against corrupt replies: a payload that does not decode as
    a response dict (the ``corrupt`` chaos fault, or a genuinely
    garbled pipe) raises :class:`ServeError` — the caller turns that
    into a typed ``replica_failed`` outcome and a breaker strike, never
    an unhandled exception in a dispatcher thread.
    """
    if waiter.kind == "response":
        payload = waiter.value[0]
        try:
            if not isinstance(payload, dict):
                raise TypeError(
                    f"reply payload is {type(payload).__name__}, not dict"
                )
            return response_from_json(payload)
        except Exception as error:
            raise ServeError(f"corrupt replica reply: {error}") from error
    if waiter.kind == "rejected":
        verdict, message, retry_after = waiter.value
        if verdict == "overloaded":
            raise OverloadedError(message, retry_after=retry_after)
        if verdict == "deadline":
            raise DeadlineExceededError(message)
        if verdict == "stopped":
            raise EngineStoppedError(message)
        raise ServeError(message)
    raise ServeError(str(waiter.value[0]))  # "died"


class _ReplicaHandle:
    """Parent-side view of one replica process: pipe, waiters, state."""

    _ids = itertools.count(1)

    def __init__(self, spec: ReplicaSpec, config: EngineConfig, slot: int):
        self.spec = spec
        self.config = config
        self.slot = slot
        self.uid = next(self._ids)
        self.models: dict[str, str] = {}
        self.pid: int | None = None
        self.draining = False
        self.dead = False
        self._stop_sent = False
        self._send_lock = threading.Lock()
        self._waiters: dict[int, _Waiter] = {}
        self._waiters_lock = threading.Lock()
        self._rid = itertools.count(1)
        self._process = None
        self._conn = None
        self._reader: threading.Thread | None = None
        self._final_stats: dict[str, Any] | None = None
        self.started_at = time.monotonic()
        #: recent request latencies against this replica, seconds.
        #: Appends are GIL-atomic; readers snapshot via ``list()``.
        self.latency_window: deque[float] = deque(maxlen=_SLOT_WINDOW)

    # -- lifecycle ----------------------------------------------------------
    def start(self, timeout: float = _SPAWN_TIMEOUT) -> "_ReplicaHandle":
        import multiprocessing

        context = multiprocessing.get_context("spawn")
        parent_conn, child_conn = context.Pipe(duplex=True)
        self._conn = parent_conn
        self._process = context.Process(
            target=_replica_main,
            args=(self.spec, self.config, child_conn, self.slot),
            name=f"serve-replica-{self.slot}-{self.uid}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        if not parent_conn.poll(timeout):
            self.terminate()
            raise ServeError(
                f"replica {self.slot} did not come up within {timeout}s"
            )
        kind, info = parent_conn.recv()
        if kind != "ready":  # pragma: no cover - defensive
            self.terminate()
            raise ServeError(
                f"replica {self.slot} sent {kind!r} instead of ready"
            )
        self.models = dict(info["models"])
        self.pid = info["pid"]
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"replica-reader-{self.slot}-{self.uid}",
            daemon=True,
        )
        self._reader.start()
        return self

    def _read_loop(self) -> None:
        while True:
            try:
                message = self._conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "bye":
                self._final_stats = message[1]
                break
            rid = message[1]
            with self._waiters_lock:
                waiter = self._waiters.pop(rid, None)
            if waiter is not None:
                waiter.complete(kind, message[2:])
        self.dead = True
        # fail whatever is still waiting: the process is gone.
        with self._waiters_lock:
            orphans = list(self._waiters.values())
            self._waiters.clear()
        for waiter in orphans:
            waiter.complete(
                "died", ("replica process exited mid-request",)
            )

    def _send(self, message: tuple) -> None:
        with self._send_lock:
            self._conn.send(message)

    # -- requests -----------------------------------------------------------
    def submit_remote(
        self,
        request: InferenceRequest,
        group: threading.Event | None = None,
    ) -> tuple[int, _Waiter]:
        """Ship one request over the pipe without waiting for the reply.

        Returns ``(rid, waiter)``; resolve the waiter with
        :func:`_interpret` once its event fires, or :meth:`forget` it to
        drop a reply on the floor (hedge losers).  Raises
        :class:`EngineStoppedError` for a draining replica and
        :class:`ServeError` for a dead one / closed pipe — in both
        cases nothing was shipped.
        """
        if self.dead:
            raise ServeError("replica is dead")
        if self.draining:
            # fast path for the reload race: the routing table already
            # (or imminently) holds this slot's replacement.
            raise EngineStoppedError("replica is draining")
        rid = next(self._rid)
        waiter = _Waiter(group)
        with self._waiters_lock:
            self._waiters[rid] = waiter
        try:
            self._send((
                "infer", rid, request.task, request.sentence,
                request.context, request.deadline_s, request.id,
            ))
        except (BrokenPipeError, OSError) as error:
            with self._waiters_lock:
                self._waiters.pop(rid, None)
            raise ServeError(f"replica pipe closed: {error}") from error
        return rid, waiter

    def forget(self, rid: int) -> None:
        """Abandon a reply slot: a late reply for ``rid`` is dropped."""
        with self._waiters_lock:
            self._waiters.pop(rid, None)

    def infer_remote(
        self, request: InferenceRequest, timeout: float
    ) -> InferenceResponse:
        """Blocking convenience: submit, wait, interpret (single leg).

        Raises :class:`OverloadedError` / :class:`DeadlineExceededError`
        / :class:`EngineStoppedError` mirroring the replica engine's
        admission verdicts; a dead replica, corrupt reply, or
        parent-side timeout surfaces as :class:`ServeError` so the pool
        can decide how to account for it.
        """
        rid, waiter = self.submit_remote(request)
        if not waiter.event.wait(timeout):
            self.forget(rid)
            raise ServeError(
                f"timed out after {timeout}s waiting on replica "
                f"{self.slot} (pid {self.pid})"
            )
        return _interpret(waiter)

    def stats_remote(self, timeout: float = 5.0) -> dict[str, Any] | None:
        """The replica engine's stats snapshot (None if unreachable)."""
        if self.dead:
            return self._final_stats
        rid = next(self._rid)
        waiter = _Waiter()
        with self._waiters_lock:
            self._waiters[rid] = waiter
        try:
            self._send(("stats", rid))
        except (BrokenPipeError, OSError):
            return self._final_stats
        if not waiter.event.wait(timeout):
            with self._waiters_lock:
                self._waiters.pop(rid, None)
            return None
        if waiter.kind != "stats":
            return None
        return waiter.value[0]

    # -- shutdown -----------------------------------------------------------
    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Ask the replica to drain and exit, then join the process."""
        if self._stop_sent:
            self.join(timeout)
            return
        self._stop_sent = True
        try:
            self._send(("stop", drain))
        except (BrokenPipeError, OSError):
            pass
        self.join(timeout)

    def join(self, timeout: float = 60.0) -> None:
        process = self._process
        if process is None:
            return
        process.join(timeout)
        if process.is_alive():  # pragma: no cover - defensive
            process.terminate()
            process.join(5.0)
        self.dead = True

    def terminate(self) -> None:
        if self._process is not None and self._process.is_alive():
            self._process.terminate()
            self._process.join(5.0)
        self.dead = True


class ReplicaPool:
    """N pre-fork serving replicas behind the engine's serving surface.

    Exposes the same ``infer`` / ``stats`` / ``note_sanitize`` surface
    as :class:`~repro.serve.engine.InferenceEngine`, so the HTTP
    frontend and the in-process :class:`~repro.serve.http.ServeClient`
    work against either interchangeably.
    """

    def __init__(
        self,
        registry_dir: str,
        models: dict[str, tuple[str, str | None]],
        config: PoolConfig | None = None,
        telemetry: Telemetry | None = None,
    ):
        if not models:
            raise ServeError("pool needs at least one (task, model) pair")
        for task in models:
            if task not in TASKS:
                raise ServeError(f"unknown task {task!r} in models mapping")
        self.registry_dir = str(registry_dir)
        self.config = config or PoolConfig()
        self.telemetry = telemetry or Telemetry()
        self._model_names = dict(models)
        self._spec = ReplicaSpec(
            registry_dir=self.registry_dir,
            models=tuple(
                (task, name, version)
                for task, (name, version) in sorted(models.items())
            ),
        )
        # routing table: slot index -> live handle. Swapped atomically
        # under _route_lock (reads take the lock briefly; the actual
        # request wait happens outside it).
        self._slots: list[_ReplicaHandle | None] = (
            [None] * self.config.replicas
        )
        self._route_lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._draining_handles: list[_ReplicaHandle] = []
        self._started = False
        self._stopping = False
        self._started_at = time.monotonic()
        self._ids = itertools.count(1)
        # one breaker per slot, surviving handle replacement (reset on
        # respawn/reload so a fresh process starts with a clean slate).
        self._breakers: list[CircuitBreaker | None] = [
            CircuitBreaker(
                threshold=self.config.breaker_threshold,
                cooldown_s=self.config.breaker_cooldown_s,
            ) if self.config.breaker_threshold > 0 else None
            for _ in range(self.config.replicas)
        ]
        #: slots currently spawning their reload replacement (the old
        #: replica still serves; purely informational for /healthz).
        self._reloading_slots: set[int] = set()
        # pool-level accounting (own lock; replicas keep their own too)
        self._lock = threading.Lock()
        self.accepted = 0
        self.completed = 0
        self.rejected = 0
        self.errors = 0
        self.reloads = 0
        self.replica_restarts = 0
        self.deadline_rejected = 0
        self.hedges_fired = 0
        self.hedges_won = 0
        self.spills = 0
        self._latencies: dict[str, Any] = {}
        self._latencies_by_model: dict[str, Any] = {}
        self._sanitize = {
            "requests": 0,
            "tables_changed": 0,
            "cells_repaired": 0,
            "cells_nulled": 0,
            "cells_kept_text": 0,
            "structure_repairs": 0,
            "stage_errors": 0,
        }

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "ReplicaPool":
        """Spawn every replica and wait for all ready handshakes."""
        if self._started:
            return self
        for slot in range(self.config.replicas):
            handle = _ReplicaHandle(self._spec, self.config.engine, slot)
            handle.start()
            with self._route_lock:
                self._slots[slot] = handle
        self._started = True
        self._started_at = time.monotonic()
        return self

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop every replica (with ``drain``, in-flight work finishes)."""
        self._stopping = True
        with self._route_lock:
            handles = [h for h in self._slots if h is not None]
            draining = list(self._draining_handles)
            self._draining_handles = []
        for handle in handles + draining:
            handle.stop(drain=drain, timeout=timeout)
        self._started = False

    def __enter__(self) -> "ReplicaPool":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop(drain=True)

    @property
    def draining(self) -> bool:
        return self._stopping

    # -- routing ------------------------------------------------------------
    def route(self, task: str, sentence: str, digest: str) -> int:
        """Deterministic slot index for one request's content."""
        key = f"{task}\x1f{normalize_sentence(sentence)}\x1f{digest}"
        bucket = int.from_bytes(
            hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
        )
        return bucket % self.config.replicas

    def _handle_for(self, slot: int) -> _ReplicaHandle:
        with self._route_lock:
            handle = self._slots[slot]
        if handle is None or handle.dead:
            raise ServeError(f"slot {slot} has no live replica")
        return handle

    def _routable_slot(
        self, primary: int, exclude: frozenset[int] = frozenset()
    ) -> tuple[int, _ReplicaHandle]:
        """First routable slot walking clockwise from ``primary``.

        A slot is routable when it has a live, non-draining handle and
        its breaker admits traffic.  The clockwise walk makes spilled
        placement deterministic: for a given pool shape and breaker
        state, a request's spill target is as reproducible as its
        primary route.  When every live slot's breaker refuses (all
        open at once), the first live slot is used anyway — the pool
        fails *open*, because serving through a suspect replica beats
        a self-inflicted total outage, and one success re-closes its
        breaker.
        """
        with self._route_lock:
            slots = list(self._slots)
        fail_open: tuple[int, _ReplicaHandle] | None = None
        for offset in range(self.config.replicas):
            slot = (primary + offset) % self.config.replicas
            if slot in exclude:
                continue
            handle = slots[slot]
            if handle is None or handle.dead or handle.draining:
                continue
            breaker = self._breakers[slot]
            if breaker is None or breaker.allow():
                return slot, handle
            if fail_open is None:
                fail_open = (slot, handle)
        if fail_open is not None:
            return fail_open
        raise ServeError(
            f"no routable replica for slot {primary} "
            f"(excluded: {sorted(exclude) or 'none'})"
        )

    # -- serving surface ----------------------------------------------------
    def infer(
        self,
        task: str,
        sentence: str,
        context: Any,
        *,
        deadline_s: float | None = None,
        request_id: str | None = None,
        timeout: float | None = None,
    ) -> InferenceResponse:
        """Route one request to its replica and wait for the response.

        Mirrors the engine's accounting contract: every call is
        *accepted*; it ends *rejected* (overload/shutdown — the typed
        exception propagates) or *completed* (a response came back,
        possibly ``ok=false``).  A request that races a rolling reload
        onto a replica in its first instant of draining is transparently
        resubmitted to the slot's fresh replica — callers never see a
        drain artifact as a failure.
        """
        if task not in self._model_names:
            raise ServeError(
                f"no model loaded for task {task!r} "
                f"(serving: {', '.join(sorted(self._model_names))})"
            )
        wait = timeout if timeout is not None else (
            self.config.request_timeout_s
        )
        request = InferenceRequest(
            id=request_id or f"p{next(self._ids)}",
            task=task,
            sentence=sentence,
            context=context,
            deadline_s=deadline_s,
        )
        with self._lock:
            self.accepted += 1
            self.telemetry.increment("serve", "pool_accepted")
            if self._stopping:
                self.rejected += 1
                self.telemetry.increment("serve", "pool_rejected")
                raise EngineStoppedError(
                    "pool is stopped/draining; not accepting requests"
                )
        digest = context_digest(context)
        slot = self.route(task, sentence, digest)
        started = time.monotonic()
        if request.deadline_s is not None:
            # pool-side deadline admission: if the remaining budget is
            # below the routed slot's recent p50 latency, reject before
            # shipping anything over a pipe.
            try:
                window = list(self._handle_for(slot).latency_window)
            except ServeError:
                window = []
            estimate = nearest_rank(window, 0.50) if window else 0.0
            if request.deadline_s <= 0 or (
                estimate > 0 and request.deadline_s < estimate
            ):
                with self._lock:
                    self.rejected += 1
                    self.deadline_rejected += 1
                    self.telemetry.increment("serve", "pool_rejected")
                    self.telemetry.increment(
                        "serve", "pool_deadline_rejected"
                    )
                raise DeadlineExceededError(
                    f"deadline budget {max(0.0, request.deadline_s):.3f}s "
                    f"below slot {slot} recent p50 latency "
                    f"{estimate:.3f}s; rejecting before dispatch",
                    remaining_s=max(0.0, request.deadline_s),
                    estimate_s=estimate if request.deadline_s > 0 else None,
                )
        try:
            response = self._dispatch(request, slot, wait, started)
        except (OverloadedError, DeadlineExceededError,
                EngineStoppedError) as error:
            with self._lock:
                self.rejected += 1
                self.telemetry.increment("serve", "pool_rejected")
                if isinstance(error, DeadlineExceededError):
                    self.deadline_rejected += 1
                    self.telemetry.increment(
                        "serve", "pool_deadline_rejected"
                    )
            raise
        except ServeError as error:
            # replica died / timed out / corrupt reply: surface as an
            # error *response* (compute may have happened; this is not
            # an admission rejection) so load generators count it as a
            # failure.
            response = InferenceResponse(
                id=request.id, task=task, ok=False,
                error=f"replica_failed: {error}",
                model=self._models_snapshot().get(task, ""),
                timing=Timing(
                    0.0, 0.0, time.monotonic() - started, 1
                ),
            )
        total_s = time.monotonic() - started
        with self._lock:
            self.completed += 1
            self.telemetry.increment("serve", "pool_completed")
            if not response.ok:
                self.errors += 1
            self._note_latency(task, response.model, total_s)
        return response

    @staticmethod
    def _shrunk(
        request: InferenceRequest, started: float
    ) -> InferenceRequest:
        """The request with its deadline budget shrunk by elapsed time.

        Raises :class:`DeadlineExceededError` if nothing remains — the
        budget is end-to-end, so time burned in the parent (waiting out
        a hedge delay, rerouting around a drain) comes out of what the
        replica engine is allowed to spend.
        """
        if request.deadline_s is None:
            return request
        remaining = request.deadline_s - (time.monotonic() - started)
        if remaining <= 0:
            raise DeadlineExceededError(
                "deadline budget exhausted before dispatch",
                remaining_s=0.0,
            )
        return dataclasses.replace(request, deadline_s=remaining)

    def _dispatch(
        self,
        request: InferenceRequest,
        primary: int,
        wait: float,
        started: float,
    ) -> InferenceResponse:
        """Dispatch with reroute, hedging, and breaker accounting.

        One or two *legs* (primary + at most one hedge/failover) race
        for the first interpretable reply.  Every leg ends in exactly
        one of: won (response returned), failed (typed exception
        collected), or forgotten (lost the race; its late reply is
        dropped by the reader thread).  Breakers hear about
        replica-attributable failures and about losing a hedge race —
        that lost race is precisely how a *hung* replica, which never
        reports anything, accumulates strikes.
        """
        group = threading.Event()
        deadline_at = started + wait
        hedge = self.config.hedge
        legs: list[dict[str, Any]] = []
        failures: list[ServeError] = []
        failed_slots: set[int] = set()
        legs_started = 0

        def note_failure(slot: int, error: ServeError) -> None:
            failures.append(error)
            failed_slots.add(slot)
            breaker = self._breakers[slot]
            if breaker is not None and not isinstance(
                error,
                (OverloadedError, EngineStoppedError, DeadlineExceededError),
            ):
                breaker.record_failure()

        def start_leg(exclude: frozenset[int], is_primary: bool) -> bool:
            """Route + submit one leg; False if no leg went in flight."""
            nonlocal legs_started
            tried = exclude
            for attempt in range(_REROUTE_ATTEMPTS):
                try:
                    slot, handle = self._routable_slot(primary, tried)
                except ServeError as error:
                    failures.append(error)
                    return False
                try:
                    leg_request = self._shrunk(request, started)
                except DeadlineExceededError as error:
                    failures.append(error)
                    return False
                try:
                    rid, waiter = handle.submit_remote(leg_request, group)
                except EngineStoppedError:
                    # the slot began draining under us (rolling reload);
                    # its replacement is (or will be) in the routing
                    # table — brief backoff, then retry the same walk.
                    if attempt == _REROUTE_ATTEMPTS - 1:
                        failures.append(
                            EngineStoppedError("replica is draining")
                        )
                        return False
                    time.sleep(0.05 * (attempt + 1))
                    continue
                except ServeError as error:
                    note_failure(slot, error)
                    tried = tried | {slot}
                    continue
                if is_primary and slot != primary:
                    with self._lock:
                        self.spills += 1
                        self.telemetry.increment("serve", "pool_spills")
                legs.append({
                    "slot": slot, "handle": handle, "rid": rid,
                    "waiter": waiter, "t0": time.monotonic(),
                    "is_hedge": not is_primary,
                })
                legs_started += 1
                return True
            failures.append(
                ServeError("could not place request on any replica")
            )
            return False

        if not start_leg(frozenset(), is_primary=True):
            raise failures[0]
        hedge_at: float | None = None
        if hedge is not None and self.config.replicas > 1:
            hedge_at = legs[0]["t0"] + hedge.delay_s(
                list(legs[0]["handle"].latency_window)
            )
        while True:
            group.clear()
            # harvest any completed legs (first interpretable win ends
            # the race; terminal failures are collected and may trigger
            # an immediate failover below).
            for leg in list(legs):
                if not leg["waiter"].event.is_set():
                    continue
                legs.remove(leg)
                elapsed = time.monotonic() - leg["t0"]
                try:
                    response = _interpret(leg["waiter"])
                except (OverloadedError, DeadlineExceededError,
                        EngineStoppedError) as error:
                    failures.append(error)
                except ServeError as error:
                    note_failure(leg["slot"], error)
                else:
                    breaker = self._breakers[leg["slot"]]
                    if breaker is not None:
                        breaker.record_success()
                    leg["handle"].latency_window.append(elapsed)
                    if leg["is_hedge"]:
                        with self._lock:
                            self.hedges_won += 1
                            self.telemetry.increment(
                                "serve", "pool_hedges_won"
                            )
                    for loser in legs:
                        loser["handle"].forget(loser["rid"])
                        if leg["is_hedge"]:
                            # the primary lost the race it should have
                            # won by the hedge delay's margin: that is
                            # a strike, and the only signal a *hung*
                            # replica ever produces.
                            loser_breaker = self._breakers[loser["slot"]]
                            if loser_breaker is not None:
                                loser_breaker.record_failure()
                    return response
            now = time.monotonic()
            if not legs:
                # every started leg failed terminally.  With hedging
                # enabled and the second leg unused, fail over at once:
                # inference is pure, so re-dispatch is safe.
                if (
                    hedge is not None
                    and legs_started < 2
                    and now < deadline_at
                    and not any(
                        isinstance(f, DeadlineExceededError)
                        for f in failures
                    )
                ):
                    if start_leg(frozenset(failed_slots), is_primary=False):
                        with self._lock:
                            self.hedges_fired += 1
                            self.telemetry.increment(
                                "serve", "pool_hedges_fired"
                            )
                        hedge_at = None
                        continue
                raise failures[0]
            if now >= deadline_at:
                for leg in legs:
                    leg["handle"].forget(leg["rid"])
                    note_failure(
                        leg["slot"],
                        ServeError(
                            f"timed out after {wait}s waiting on replica "
                            f"{leg['slot']}"
                        ),
                    )
                raise failures[-1]
            if (
                hedge_at is not None
                and now >= hedge_at
                and legs_started < 2
                and len(legs) == 1
            ):
                hedge_at = None
                # timer hedges duplicate live work, so they draw from
                # the policy's load budget; a saturated pool where
                # *every* request crosses the p95 delay must not hedge
                # its whole workload.  (Failover after a terminal
                # failure, above, is exempt — it duplicates nothing.)
                with self._lock:
                    can_hedge = self.hedges_fired < hedge.budget(
                        self.accepted
                    )
                exclude = frozenset(
                    failed_slots | {leg["slot"] for leg in legs}
                )
                if can_hedge and start_leg(exclude, is_primary=False):
                    with self._lock:
                        self.hedges_fired += 1
                        self.telemetry.increment(
                            "serve", "pool_hedges_fired"
                        )
            horizon = deadline_at
            if hedge_at is not None and hedge_at < horizon:
                horizon = hedge_at
            group.wait(max(0.0, min(horizon - time.monotonic(), 0.25)))

    def _note_latency(
        self, task: str, model_id: str, total_s: float
    ) -> None:
        """Record one completed request (caller holds the pool lock)."""
        from collections import deque

        window = self._latencies.get(task)
        if window is None:
            window = deque(maxlen=_LATENCY_WINDOW)
            self._latencies[task] = window
        window.append(total_s)
        if model_id:
            by_model = self._latencies_by_model.get(model_id)
            if by_model is None:
                while len(self._latencies_by_model) >= _MODEL_WINDOWS:
                    self._latencies_by_model.pop(
                        next(iter(self._latencies_by_model))
                    )
                by_model = deque(maxlen=_LATENCY_WINDOW)
                self._latencies_by_model[model_id] = by_model
            by_model.append(total_s)

    def note_sanitize(self, report: dict[str, Any]) -> None:
        """Fold one sanitize report into pool-level accounting."""
        cells = report.get("cells", {}) or {}
        structure = report.get("structure", {}) or {}
        errors = report.get("errors", []) or []
        changed = bool(
            structure
            or cells.get("repaired", 0)
            or cells.get("nulled", 0)
        )
        with self._lock:
            self._sanitize["requests"] += 1
            self._sanitize["tables_changed"] += 1 if changed else 0
            self._sanitize["cells_repaired"] += cells.get("repaired", 0)
            self._sanitize["cells_nulled"] += cells.get("nulled", 0)
            self._sanitize["cells_kept_text"] += cells.get("kept_text", 0)
            self._sanitize["structure_repairs"] += sum(structure.values())
            self._sanitize["stage_errors"] += len(errors)

    # -- reload -------------------------------------------------------------
    def reload(
        self, models: dict[str, tuple[str, str | None]] | None = None
    ) -> dict[str, Any]:
        """Zero-downtime rolling reload of every replica.

        Slot by slot: spawn a fresh replica (which resolves the
        registry's *current* default versions — or the explicit
        ``models`` override), wait for its ready handshake, swap it
        into the routing table, then drain the old replica
        request-by-request.  Capacity never drops below N-per-slot
        because the swap happens only after the replacement is ready.
        Returns ``{"old": {...}, "new": {...}, "replicas": N}``.
        """
        with self._reload_lock:
            if models is not None:
                for task in models:
                    if task not in self._model_names:
                        raise ServeError(
                            f"cannot reload unknown task {task!r}"
                        )
                merged = {**self._model_names, **models}
            else:
                merged = dict(self._model_names)
            spec = ReplicaSpec(
                registry_dir=self.registry_dir,
                models=tuple(
                    (task, name, version)
                    for task, (name, version) in sorted(merged.items())
                ),
            )
            old_models = self._models_snapshot()
            drained: list[_ReplicaHandle] = []
            for slot in range(self.config.replicas):
                with self._lock:
                    self._reloading_slots.add(slot)
                try:
                    fresh = _ReplicaHandle(spec, self.config.engine, slot)
                    fresh.start()
                    with self._route_lock:
                        old = self._slots[slot]
                        self._slots[slot] = fresh
                    breaker = self._breakers[slot]
                    if breaker is not None:
                        # the process behind this slot is brand new;
                        # strikes against its predecessor don't apply.
                        breaker.reset()
                finally:
                    with self._lock:
                        self._reloading_slots.discard(slot)
                if old is not None:
                    old.draining = True
                    # drain synchronously: every request already routed
                    # to the old replica completes before its process
                    # exits, one slot at a time.
                    old.stop(drain=True)
                    drained.append(old)
            self._model_names = merged
            self._spec = spec
            with self._lock:
                self.reloads += 1
                self.telemetry.increment("serve", "pool_reloads")
            return {
                "old": old_models,
                "new": self._models_snapshot(),
                "replicas": self.config.replicas,
            }

    def _restart_slot(self, slot: int, dead: _ReplicaHandle) -> None:
        """Replace a dead replica (background thread)."""
        try:
            fresh = _ReplicaHandle(self._spec, self.config.engine, slot)
            fresh.start()
        except Exception:  # spawn failed; slot stays dead
            return
        with self._route_lock:
            if self._slots[slot] is dead:
                self._slots[slot] = fresh
                with self._lock:
                    self.replica_restarts += 1
                breaker = self._breakers[slot]
                if breaker is not None:
                    breaker.reset()
            else:  # someone else (a reload) already replaced it
                fresh.stop(drain=False)

    def ensure_live(self) -> None:
        """Respawn any dead slots (called opportunistically by stats)."""
        if not self.config.restart_dead_replicas or self._stopping:
            return
        with self._route_lock:
            dead = [
                (slot, handle)
                for slot, handle in enumerate(self._slots)
                if handle is not None and handle.dead
                and not handle.draining
            ]
        for slot, handle in dead:
            threading.Thread(
                target=self._restart_slot, args=(slot, handle),
                name=f"replica-restart-{slot}", daemon=True,
            ).start()

    # -- health -------------------------------------------------------------
    def replica_states(self) -> list[dict[str, Any]]:
        """Per-slot health, the shape ``/healthz`` reports.

        ``state`` is one of ``ready`` / ``breaker_open`` / ``reloading``
        / ``respawning`` / ``draining``; ``routable`` says whether the
        dispatcher would currently send this slot traffic (breakers
        half-open count as routable — probes are traffic).
        """
        with self._route_lock:
            slots = list(self._slots)
        with self._lock:
            reloading = set(self._reloading_slots)
        out: list[dict[str, Any]] = []
        for slot, handle in enumerate(slots):
            breaker = self._breakers[slot]
            breaker_state = breaker.state if breaker is not None else None
            if handle is None or handle.dead:
                state, routable = "respawning", False
            elif handle.draining:
                state, routable = "draining", False
            elif breaker_state == CircuitBreaker.OPEN:
                state, routable = "breaker_open", False
            elif slot in reloading:
                # replacement is spawning; the incumbent still serves.
                state, routable = "reloading", True
            else:
                state, routable = "ready", True
            entry: dict[str, Any] = {
                "slot": slot,
                "state": state,
                "routable": routable,
            }
            if breaker_state is not None:
                entry["breaker"] = breaker_state
            out.append(entry)
        return out

    def any_routable(self) -> bool:
        """True while at least one replica can take traffic."""
        return any(entry["routable"] for entry in self.replica_states())

    # -- stats --------------------------------------------------------------
    def _models_snapshot(self) -> dict[str, str]:
        """task -> model_id as currently routed (newest slot wins)."""
        out: dict[str, str] = {}
        with self._route_lock:
            handles = [h for h in self._slots if h is not None]
        for handle in handles:
            out.update(handle.models)
        return out

    def stats(self) -> dict[str, Any]:
        """Aggregated + per-replica serving stats.

        The top-level keys mirror the engine's snapshot so ``/metrics``
        consumers (and the smoke tests) read both backends identically;
        ``replicas`` adds the per-replica engine snapshots and
        ``latency_by_model`` the canary view across model versions.
        """
        self.ensure_live()
        states = {
            entry["slot"]: entry for entry in self.replica_states()
        }
        with self._route_lock:
            handles = [
                (slot, handle)
                for slot, handle in enumerate(self._slots)
                if handle is not None
            ]
        replica_stats: list[dict[str, Any]] = []
        agg = {
            "batches": 0, "batched_requests": 0, "max_batch": 0,
            "cache_hits": 0, "cache_misses": 0, "cache_entries": 0,
            "queue_depth": 0, "deadline_expired": 0,
        }
        for slot, handle in handles:
            snapshot = handle.stats_remote()
            entry: dict[str, Any] = {
                "slot": slot,
                "pid": handle.pid,
                "models": dict(handle.models),
                "alive": not handle.dead,
                "draining": handle.draining,
                "state": states[slot]["state"],
                "uptime_s": round(
                    time.monotonic() - handle.started_at, 3
                ),
            }
            breaker = self._breakers[slot]
            if breaker is not None:
                entry["breaker"] = breaker.stats()
            if snapshot is not None:
                entry["engine"] = snapshot
                agg["batches"] += snapshot["batches"]["count"]
                agg["batched_requests"] += snapshot["batches"]["requests"]
                agg["max_batch"] = max(
                    agg["max_batch"], snapshot["batches"]["max_size"]
                )
                agg["cache_hits"] += snapshot["cache"]["hits"]
                agg["cache_misses"] += snapshot["cache"]["misses"]
                agg["cache_entries"] += snapshot["cache"]["entries"]
                agg["queue_depth"] += snapshot["queue_depth"]
                agg["deadline_expired"] += snapshot["deadline_expired"]
            replica_stats.append(entry)
        with self._lock:
            in_flight = self.accepted - self.completed - self.rejected
            uptime = max(1e-9, time.monotonic() - self._started_at)
            latencies = {
                task: nearest_rank_percentiles(list(window))
                for task, window in self._latencies.items()
            }
            latencies_by_model = {
                model_id: nearest_rank_percentiles(list(window))
                for model_id, window in self._latencies_by_model.items()
            }
            snapshot = {
                "uptime_s": round(uptime, 3),
                "accepted": self.accepted,
                "completed": self.completed,
                "rejected": self.rejected,
                "in_flight": in_flight,
                "queue_depth": agg["queue_depth"],
                "errors": self.errors,
                "deadline_expired": agg["deadline_expired"],
                "throughput_rps": round(self.completed / uptime, 2),
                "batches": {
                    "count": agg["batches"],
                    "requests": agg["batched_requests"],
                    "mean_size": round(
                        agg["batched_requests"] / agg["batches"], 3
                    ) if agg["batches"] else 0.0,
                    "max_size": agg["max_batch"],
                },
                "cache": {
                    "hits": agg["cache_hits"],
                    "misses": agg["cache_misses"],
                    "entries": agg["cache_entries"],
                    "hit_rate": round(
                        agg["cache_hits"]
                        / max(1, agg["cache_hits"] + agg["cache_misses"]),
                        4,
                    ),
                },
                "latency": latencies,
                "latency_by_model": latencies_by_model,
                "sanitize": dict(self._sanitize),
                "models": self._models_snapshot(),
                "reloads": self.reloads,
                "replica_restarts": self.replica_restarts,
                "deadline_rejected": self.deadline_rejected,
                "hedges": {
                    "fired": self.hedges_fired,
                    "won": self.hedges_won,
                },
                "spills": self.spills,
                "draining": self._stopping,
                "workers": self.config.engine.workers,
                "max_batch_size": self.config.engine.max_batch_size,
                "replicas": replica_stats,
                "reconciles": (
                    self.accepted
                    == self.completed + self.rejected + in_flight
                ),
            }
        return snapshot


def pool_from_registry(
    registry_dir: str,
    names: list[str] | None = None,
    config: PoolConfig | None = None,
    telemetry: Telemetry | None = None,
) -> ReplicaPool:
    """Build a :class:`ReplicaPool` serving one model per task.

    ``names`` picks specific registered models (like ``repro serve
    --model``); by default every registered model is served, one per
    task.  Model *records* are inspected in the parent for task
    routing, but the artifacts themselves are only unpickled inside
    the replica processes (shared-nothing).
    """
    registry = ModelRegistry(registry_dir)
    chosen = names or sorted(registry.models())
    if not chosen:
        raise ServeError(f"no models registered in {registry_dir}")
    models: dict[str, tuple[str, str | None]] = {}
    for name in chosen:
        record = registry.record(name)
        if record.task in models:
            raise ServeError(
                f"both {models[record.task][0]!r} and {name!r} serve "
                f"task {record.task!r}; pass names to pick one per task"
            )
        models[record.task] = (name, None)
    return ReplicaPool(
        str(registry_dir), models, config=config, telemetry=telemetry
    )
