"""Per-replica circuit breakers for the serving pool.

A tiny three-state machine, one instance per replica slot:

``closed``
    healthy: requests route normally.  Each failure increments a
    consecutive-failure counter; any success resets it.  Reaching
    ``threshold`` consecutive failures trips the breaker open.
``open``
    the replica leaves the routing set; its traffic spills to siblings
    deterministically (the pool walks slots in a fixed order).  After
    ``cooldown_s`` the next routing decision is allowed through as a
    half-open probe.
``half_open``
    probe requests are admitted at most one per probe interval
    (``cooldown_s / probes``).  A probe success closes the breaker
    (full re-admission); a probe failure re-opens it and restarts the
    cooldown clock.  Probe admission is time-throttled rather than
    in-flight-counted on purpose: a probe whose outcome is never
    reported (e.g. a hedge loser whose reply was discarded) self-heals
    at the next interval instead of leaking a probe slot forever.

What counts as a failure is the *caller's* decision — the pool reports
replica-attributable outcomes (timeout, death, corrupt reply, lost
hedge race) and deliberately does not report :class:`OverloadedError`,
which is healthy load shedding, not replica sickness.

Thread-safe; every transition is recorded so ``/metrics`` can expose
trip/probe counts alongside the live state.
"""

from __future__ import annotations

import threading
import time


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probe re-admission."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 1.0,
        probes: int = 1,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.probe_interval_s = cooldown_s / max(1, probes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._last_probe_at: float | None = None
        # cumulative transition counters for /metrics
        self._trips = 0
        self._probes_fired = 0
        self._reclosures = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            # cooldown elapsed: the next allow() becomes a probe.
            self._state = self.HALF_OPEN
            self._last_probe_at = None
        return self._state

    def allow(self) -> bool:
        """May a request route to this replica right now?

        In ``half_open`` a ``True`` admits a probe; follow up with
        :meth:`record_success` or :meth:`record_failure` when its
        outcome is known (an unreported probe simply ages out).
        """
        with self._lock:
            state = self._state_locked()
            if state == self.CLOSED:
                return True
            if state == self.OPEN:
                return False
            now = self._clock()
            if (
                self._last_probe_at is not None
                and now - self._last_probe_at < self.probe_interval_s
            ):
                return False
            self._last_probe_at = now
            self._probes_fired += 1
            return True

    def record_success(self) -> None:
        with self._lock:
            if self._state != self.CLOSED:
                # a success is proof of life whatever state we thought
                # the replica was in — re-close immediately.
                self._reclosures += 1
            self._state = self.CLOSED
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                # a failed probe re-opens immediately; cooldown restarts.
                self._trip_locked()
                return
            if self._state == self.OPEN:
                # stragglers from before the trip; nothing to update.
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.threshold:
                self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = self.OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = self.threshold
        self._trips += 1

    def reset(self) -> None:
        """Force-close, e.g. after the replica is respawned or reloaded."""
        with self._lock:
            self._state = self.CLOSED
            self._consecutive_failures = 0
            self._last_probe_at = None

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._consecutive_failures,
                "trips": self._trips,
                "probes_fired": self._probes_fired,
                "reclosures": self._reclosures,
            }
