"""Checkpoint/resume for generation runs: never lose completed work.

Layout of a checkpoint directory::

    <dir>/
      manifest.json    # versioned summary, atomically replaced each flush
      results.jsonl    # one line per completed context, append + fsync

``results.jsonl`` is append-only: each completed context is written and
fsynced immediately, so a SIGKILL can lose at most the context that was
in flight (a torn final line is detected and dropped on load).  The
manifest is rewritten atomically (temp file + ``os.replace``) every
``every`` completions and at finalization; it carries a *fingerprint*
binding the checkpoint to its run — seed-derived pipeline key, config,
and the context uid sequence — so resuming against different inputs
fails loudly with :class:`~repro.errors.CheckpointError` instead of
silently splicing unrelated samples.

Resume (:func:`load_checkpoint` → ``UCTR.generate(resume_from=...)``)
replays completed contexts from disk byte-identically (samples
round-trip through the same ``to_json``/``from_json`` pair used by
:mod:`repro.io`) and re-executes only the remainder; previously
quarantined contexts stay quarantined, their records carried forward
into the resumed run's telemetry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.errors import CheckpointError
from repro.fsio import atomic_write_text, fsync_handle
from repro.pipelines.samples import ReasoningSample
from repro.pipelines.uctr import GenerationState
from repro.runtime.quarantine import QuarantineRecord
from repro.tables.context import TableContext

#: bump when the on-disk layout changes incompatibly.
CHECKPOINT_SCHEMA_VERSION = 1

CHECKPOINT_KIND = "uctr-checkpoint"

MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.jsonl"


def run_fingerprint(
    state: GenerationState, contexts: Sequence[TableContext]
) -> str:
    """A digest binding a checkpoint to (seed, config, context sequence)."""
    payload = {
        "pipeline_key": state.pipeline_key,
        "config": asdict(state.config),
        "uids": [context.uid for context in contexts],
    }
    text = json.dumps(payload, sort_keys=True, default=list)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]


@dataclass
class CheckpointData:
    """Everything :func:`load_checkpoint` recovers from a directory."""

    fingerprint: str
    total: int
    completed: dict[int, list[ReasoningSample]] = field(default_factory=dict)
    quarantined: list[QuarantineRecord] = field(default_factory=list)
    telemetry: dict[str, Any] | None = None
    complete: bool = False

    @property
    def quarantined_indices(self) -> set[int]:
        return {record.index for record in self.quarantined}


def load_checkpoint(directory: str | Path) -> CheckpointData:
    """Read a checkpoint directory back; tolerates a torn final line."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise CheckpointError(f"no checkpoint manifest in {directory}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise CheckpointError(
            f"corrupt checkpoint manifest {manifest_path}: {error}"
        ) from error
    if manifest.get("kind") != CHECKPOINT_KIND:
        raise CheckpointError(
            f"{manifest_path} is not a {CHECKPOINT_KIND} manifest"
        )
    if manifest.get("schema_version") != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            "unsupported checkpoint schema_version "
            f"{manifest.get('schema_version')!r}"
        )
    completed: dict[int, list[ReasoningSample]] = {}
    results_path = directory / RESULTS_NAME
    if results_path.exists():
        # Ride the shared degradation path (`on_error="collect"` in
        # repro.io) instead of ad-hoc tolerant parsing: intact lines
        # come back numbered, casualties come back as structured
        # rejects.  The only casualty append+fsync can legitimately
        # produce is a torn *final* line (a mid-write SIGKILL); any
        # other reject means real corruption and fails the load.
        from repro.io import iter_jsonl

        rejects: list = []
        numbered = list(
            iter_jsonl(results_path, on_error="collect", rejects=rejects)
        )
        last_line = max(
            [line for line, _ in numbered]
            + [reject.line_number for reject in rejects],
            default=0,
        )
        for reject in rejects:
            if reject.line_number == last_line and reject.reason == "invalid_json":
                continue  # torn final line from a mid-write kill
            raise CheckpointError(
                f"{results_path}:{reject.line_number}: corrupt result "
                f"line ({reject.reason}: {reject.detail})"
            )
        for line_number, record in numbered:
            try:
                completed[int(record["index"])] = [
                    ReasoningSample.from_json(payload)
                    for payload in record["samples"]
                ]
            except (KeyError, TypeError, ValueError) as error:
                raise CheckpointError(
                    f"{results_path}:{line_number}: result record does "
                    f"not deserialize ({error!r})"
                ) from error
    return CheckpointData(
        fingerprint=manifest.get("fingerprint", ""),
        total=int(manifest.get("contexts", 0)),
        completed=completed,
        quarantined=[
            QuarantineRecord.from_json(payload)
            for payload in manifest.get("quarantined", [])
        ],
        telemetry=manifest.get("telemetry"),
        complete=bool(manifest.get("complete", False)),
    )


class CheckpointManager:
    """Streams completed contexts to disk; survives SIGKILL at any point."""

    def __init__(
        self,
        directory: str | Path,
        *,
        fingerprint: str,
        total: int,
        every: int = 16,
    ):
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.total = total
        self.every = max(1, every)
        self._completed: set[int] = set()
        self._quarantined: dict[int, QuarantineRecord] = {}
        self._since_flush = 0
        self._handle = None

    # -- lifecycle ----------------------------------------------------------
    def open(self, seed_from: CheckpointData | None = None) -> "CheckpointManager":
        """Create/continue the directory; ``seed_from`` resumes in place."""
        self.directory.mkdir(parents=True, exist_ok=True)
        mode = "a"
        if seed_from is not None:
            if seed_from.fingerprint != self.fingerprint:
                raise CheckpointError(
                    "checkpoint fingerprint mismatch: resuming "
                    f"{seed_from.fingerprint} into run {self.fingerprint}"
                )
            self._completed = set(seed_from.completed)
            self._quarantined = {
                record.index: record for record in seed_from.quarantined
            }
        else:
            # fresh run: discard any stale results from a prior run in
            # the same directory (fingerprint may differ).
            (self.directory / RESULTS_NAME).unlink(missing_ok=True)
            mode = "w"
        self._handle = (self.directory / RESULTS_NAME).open(
            mode, encoding="utf-8"
        )
        self._write_manifest(complete=False)
        return self

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- recording ----------------------------------------------------------
    def record(self, index: int, samples: list[ReasoningSample]) -> None:
        """Persist one completed context (append + fsync, crash-safe)."""
        if self._handle is None:
            raise CheckpointError("checkpoint manager is not open")
        if index in self._completed:
            return
        line = json.dumps(
            {
                "index": index,
                "samples": [sample.to_json() for sample in samples],
            },
            ensure_ascii=False,
        )
        self._handle.write(line + "\n")
        fsync_handle(self._handle)
        self._completed.add(index)
        self._since_flush += 1
        if self._since_flush >= self.every:
            self._write_manifest(complete=False)

    def quarantine(self, record: QuarantineRecord) -> None:
        """Note a quarantined context (carried in the manifest)."""
        self._quarantined[record.index] = record
        self._since_flush += 1
        if self._since_flush >= self.every:
            self._write_manifest(complete=False)

    def finalize(
        self,
        *,
        telemetry: dict[str, Any] | None = None,
        partial: bool = False,
    ) -> Path:
        """Write the closing manifest; ``partial`` marks an interrupted run."""
        path = self._write_manifest(
            complete=not partial, telemetry=telemetry
        )
        self.close()
        return path

    # -- internals ----------------------------------------------------------
    def _write_manifest(
        self,
        *,
        complete: bool,
        telemetry: dict[str, Any] | None = None,
    ) -> Path:
        self._since_flush = 0
        manifest = {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "kind": CHECKPOINT_KIND,
            "fingerprint": self.fingerprint,
            "contexts": self.total,
            "completed": sorted(self._completed),
            "quarantined": [
                self._quarantined[index].to_json()
                for index in sorted(self._quarantined)
            ],
            "complete": complete,
        }
        if telemetry is not None:
            manifest["telemetry"] = telemetry
        return atomic_write_text(
            self.directory / MANIFEST_NAME,
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        )
