"""Per-context quarantine: isolate a poisoned context, keep the run.

The paper's Algorithm 1 already treats failing *programs* as
discard-and-continue filter signals; this module extends the same
philosophy one level up, to whole contexts.  A context whose execution
raises — after the retry policy is exhausted — is *quarantined*: the
run records a structured :class:`QuarantineRecord` (index, uid,
exception type, traceback digest, attempt count) in telemetry, emits
zero samples for that context, and moves on.  Nothing else in the run
is perturbed, because every context draws from its own RNG stream.

Retries use a scratch :class:`~repro.telemetry.Telemetry` per attempt
and merge only the *successful* attempt into the caller's sink, so a
context that fails twice and succeeds on the third try contributes
exactly one context's worth of attempt/reject counters — the
``attempts == successes + rejects`` reconciliation stays exact.  Failed
attempts are tallied separately in the ``retries`` section.
"""

from __future__ import annotations

import hashlib
import traceback
from dataclasses import dataclass

from repro.pipelines.samples import ReasoningSample
from repro.pipelines.uctr import GenerationState, generate_for_one_context
from repro.runtime import faults
from repro.runtime.retry import RetryPolicy, run_with_retry
from repro.tables.context import TableContext
from repro.telemetry import Telemetry


def traceback_digest(error: BaseException, length: int = 12) -> str:
    """A short stable digest of an exception's traceback text."""
    text = "".join(
        traceback.format_exception(type(error), error, error.__traceback__)
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:length]


@dataclass(frozen=True)
class QuarantineRecord:
    """One quarantined context, as it appears in telemetry and reports."""

    index: int
    uid: str
    reason: str  # "exception" | "worker_death" | "timeout"
    error: str = ""  # exception type name, when reason == "exception"
    detail: str = ""  # first line of the exception message
    digest: str = ""  # traceback digest, for grouping repeat offenders
    attempts: int = 0
    stage: str = "serial"  # "serial" | "worker" | "parent"

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "uid": self.uid,
            "reason": self.reason,
            "error": self.error,
            "detail": self.detail,
            "digest": self.digest,
            "attempts": self.attempts,
            "stage": self.stage,
        }

    @staticmethod
    def from_json(payload: dict) -> "QuarantineRecord":
        return QuarantineRecord(
            index=int(payload["index"]),
            uid=payload.get("uid", ""),
            reason=payload.get("reason", "exception"),
            error=payload.get("error", ""),
            detail=payload.get("detail", ""),
            digest=payload.get("digest", ""),
            attempts=int(payload.get("attempts", 0)),
            stage=payload.get("stage", "serial"),
        )


@dataclass(frozen=True)
class ContextOutcome:
    """Result of executing one context: samples, or a quarantine record."""

    index: int
    samples: list[ReasoningSample]
    quarantine: QuarantineRecord | None = None

    @property
    def ok(self) -> bool:
        return self.quarantine is None


def record_quarantine(telemetry: Telemetry, record: QuarantineRecord) -> None:
    """File a quarantine record in a telemetry sink (event + drop)."""
    label = record.error or record.reason
    telemetry.drop("runtime", f"quarantine:{label}")
    telemetry.event("quarantine", record.to_json())


def run_context(
    state: GenerationState,
    index: int,
    context: TableContext,
    telemetry: Telemetry,
    policy: RetryPolicy | None = None,
    *,
    stage: str = "serial",
) -> ContextOutcome:
    """Algorithm 1 on one context, wrapped in retry + quarantine.

    Never raises for an :class:`Exception` from the context — the
    failure becomes a :class:`QuarantineRecord` and an empty sample
    list.  ``KeyboardInterrupt`` propagates so checkpointing can land.
    """
    policy = policy or RetryPolicy()
    attempts_used = 0

    def attempt_once(attempt: int) -> tuple[list[ReasoningSample], Telemetry]:
        nonlocal attempts_used
        attempts_used = attempt
        faults.inject(index, attempt)
        scratch = Telemetry()
        samples = generate_for_one_context(state, index, context, scratch)
        return samples, scratch

    def on_retry(attempt: int, error: BaseException) -> None:
        telemetry.increment("retries", f"context/{type(error).__name__}")

    try:
        samples, scratch = run_with_retry(
            attempt_once,
            policy,
            jitter_key=state.pipeline_key,
            stream=f"context/{index}",
            on_retry=on_retry,
        )
    except Exception as error:
        record = QuarantineRecord(
            index=index,
            uid=context.uid,
            reason="exception",
            error=type(error).__name__,
            detail=str(error).splitlines()[0] if str(error) else "",
            digest=traceback_digest(error),
            attempts=attempts_used,
            stage=stage,
        )
        record_quarantine(telemetry, record)
        return ContextOutcome(index=index, samples=[], quarantine=record)
    telemetry.merge(scratch)
    return ContextOutcome(index=index, samples=samples, quarantine=None)
