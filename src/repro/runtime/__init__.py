"""The fault-tolerant generation runtime.

UCTR synthesis runs are long, embarrassingly parallel jobs; this package
makes them survive the failures such jobs actually hit:

* :mod:`repro.runtime.retry` — :class:`RetryPolicy`: bounded attempts,
  exponential backoff with *deterministic* jitter (drawn from the run's
  RNG key, so retry schedules never perturb samples), and a per-context
  wall-clock deadline.
* :mod:`repro.runtime.quarantine` — :func:`run_context` wraps Algorithm 1
  on one context; an exhausted failure becomes a structured
  :class:`QuarantineRecord` and zero samples instead of a dead run.
* :mod:`repro.runtime.checkpoint` — append-and-fsync results plus an
  atomically replaced manifest; ``UCTR.generate(resume_from=...)``
  replays completed contexts byte-identically after any crash.
* :mod:`repro.runtime.faults` — the test-only fault-injection harness
  (raise / kill / slow / interrupt, attempt-aware, one-shot sentinels)
  that lets CI exercise every path above deterministically.

The process-pool driver that uses all of this lives in
:mod:`repro.parallel`.
"""

from repro.runtime.checkpoint import (
    CHECKPOINT_KIND,
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointData,
    CheckpointManager,
    load_checkpoint,
    run_fingerprint,
)
from repro.runtime.quarantine import (
    ContextOutcome,
    QuarantineRecord,
    record_quarantine,
    run_context,
    traceback_digest,
)
from repro.runtime.retry import (
    RetryPolicy,
    deterministic_jitter,
    run_with_retry,
)

__all__ = [
    "CHECKPOINT_KIND",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointData",
    "CheckpointManager",
    "ContextOutcome",
    "QuarantineRecord",
    "RetryPolicy",
    "deterministic_jitter",
    "load_checkpoint",
    "record_quarantine",
    "run_context",
    "run_fingerprint",
    "run_with_retry",
    "traceback_digest",
]
