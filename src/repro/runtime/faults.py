"""Deterministic fault injection for exercising the runtime in tests.

A :class:`FaultPlan` maps context indices to faults:

``raise``
    raise :class:`FaultInjectedError` inside the context's execution —
    exercises per-context quarantine and (with ``attempts=N``) the
    retry path, since the fault only fires while ``attempt <= N``.
``kill``
    ``os._exit`` the hosting process — exercises worker-death
    detection, pool respawn, and chunk bisection.
``slow``
    sleep ``seconds`` before generating — exercises the per-context
    deadline and the parent-side kill.
``interrupt``
    raise :class:`KeyboardInterrupt` — exercises the SIGINT
    final-checkpoint path without sending a real signal.

The plan travels to worker processes through the ``REPRO_FAULTS``
environment variable (inherited by both ``fork`` and ``spawn``
children), so nothing in the production pickle path changes.  One-shot
faults use an ``once_path`` sentinel file created with ``O_EXCL``: the
first process to claim it injects, every later attempt — in any process
— passes clean.  This is test-only machinery: with the variable unset,
:func:`inject` is a dictionary miss and two attribute reads.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ReproError

#: environment variable carrying the JSON-encoded plan to workers.
FAULTS_ENV = "REPRO_FAULTS"


class FaultInjectedError(ReproError):
    """The error raised by ``raise``-kind injected faults."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject for one context index."""

    kind: str  # "raise" | "kill" | "slow" | "interrupt"
    #: inject only while the 1-based attempt number is <= this
    #: (None = every attempt).  ``attempts=1`` makes a transient fault
    #: that a single retry clears.
    attempts: int | None = None
    #: sleep duration for ``slow`` faults.
    seconds: float = 0.0
    #: sentinel file making the fault fire at most once across processes.
    once_path: str | None = None
    #: exit status for ``kill`` faults (visible in pool diagnostics).
    exit_code: int = 66

    KINDS = ("raise", "kill", "slow", "interrupt")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "attempts": self.attempts,
            "seconds": self.seconds,
            "once_path": self.once_path,
            "exit_code": self.exit_code,
        }

    @staticmethod
    def from_json(payload: dict) -> "FaultSpec":
        return FaultSpec(
            kind=payload["kind"],
            attempts=payload.get("attempts"),
            seconds=payload.get("seconds", 0.0),
            once_path=payload.get("once_path"),
            exit_code=payload.get("exit_code", 66),
        )


@dataclass(frozen=True)
class FaultPlan:
    """Context index → fault, JSON-serializable for the environment."""

    specs: dict[int, FaultSpec] = field(default_factory=dict)

    def for_context(self, index: int) -> FaultSpec | None:
        return self.specs.get(index)

    def to_json(self) -> dict:
        return {str(i): spec.to_json() for i, spec in self.specs.items()}

    @staticmethod
    def from_json(payload: dict) -> "FaultPlan":
        return FaultPlan(
            {int(i): FaultSpec.from_json(s) for i, s in payload.items()}
        )


def install(plan: FaultPlan) -> None:
    """Activate ``plan`` for this process and all future children."""
    os.environ[FAULTS_ENV] = json.dumps(plan.to_json(), sort_keys=True)


def clear() -> None:
    """Deactivate fault injection."""
    os.environ.pop(FAULTS_ENV, None)


def active_plan() -> FaultPlan | None:
    """The currently installed plan, or None."""
    raw = os.environ.get(FAULTS_ENV)
    if not raw:
        return None
    return FaultPlan.from_json(json.loads(raw))


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


def claim_once(path: str) -> bool:
    """Atomically claim a one-shot sentinel; True == we fire the fault.

    ``O_EXCL`` makes the claim race-free across processes: exactly one
    claimant — in any worker, replica, or the parent — wins.  Shared
    with the serving-side fault injector (:mod:`repro.serve.chaos`),
    which reuses the same once-sentinel discipline.
    """
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


#: backwards-compatible alias (pre-chaos name).
_claim_once = claim_once


# -- corruption faults -------------------------------------------------------
#
# Unlike the execution faults above (which fire *inside* a running
# context), corruption faults damage *files at rest* — the scenario the
# integrity layer (:mod:`repro.validate`) exists to catch.  They are
# deterministic by construction: every parameter is explicit, so a test
# that flips bit 3 of byte 17 today flips bit 3 of byte 17 forever.

CORRUPTION_KINDS = ("bit-flip", "truncate", "manifest-drop")


@dataclass(frozen=True)
class CorruptionSpec:
    """One deterministic act of file damage.

    ``bit-flip``
        XOR one bit (``bit``, 0–7) of the byte at ``offset``.
    ``truncate``
        drop everything from ``offset`` onward (``offset=-n`` keeps all
        but the last ``n`` bytes, the torn-tail shape).
    ``manifest-drop``
        unlink the file's sidecar integrity manifest, leaving the data
        untouched — the "someone cleaned up the wrong file" failure.
    """

    kind: str
    offset: int = 0
    bit: int = 0

    def __post_init__(self) -> None:
        if self.kind not in CORRUPTION_KINDS:
            raise ValueError(f"unknown corruption kind {self.kind!r}")
        if not 0 <= self.bit <= 7:
            raise ValueError(f"bit must be 0-7, got {self.bit}")


def corrupt_file(path: str | os.PathLike, spec: CorruptionSpec) -> None:
    """Apply ``spec`` to the file at ``path`` (in place, no backup)."""
    if spec.kind == "manifest-drop":
        from repro.validate.manifest import manifest_path

        manifest_path(path).unlink(missing_ok=True)
        return
    data = bytearray(open(path, "rb").read())
    if spec.kind == "truncate":
        remaining = data[:spec.offset] if spec.offset else data[:0]
        with open(path, "wb") as handle:
            handle.write(bytes(remaining))
        return
    offset = spec.offset % len(data) if data else 0
    if not data:
        raise ValueError(f"cannot bit-flip empty file {path}")
    data[offset] ^= 1 << spec.bit
    with open(path, "wb") as handle:
        handle.write(bytes(data))


def inject(index: int, attempt: int = 1) -> None:
    """Fire the installed fault for ``index``, if any.

    Called by the runtime at the top of every context execution attempt.
    No-op unless a plan is installed and names this index.
    """
    plan = active_plan()
    if plan is None:
        return
    spec = plan.for_context(index)
    if spec is None:
        return
    if spec.attempts is not None and attempt > spec.attempts:
        return
    if spec.once_path is not None and not _claim_once(spec.once_path):
        return
    if spec.kind == "slow":
        time.sleep(spec.seconds)
        return
    if spec.kind == "kill":
        os._exit(spec.exit_code)
    if spec.kind == "interrupt":
        raise KeyboardInterrupt(f"injected interrupt at context {index}")
    raise FaultInjectedError(
        f"injected fault at context {index} (attempt {attempt})"
    )
