"""Retry with exponential backoff, deterministic jitter, and a deadline.

The generation runtime retries two kinds of work: a context whose
execution raised (the fault may be transient — an injected test fault,
a flaky resource) and a chunk lost to worker-process death.  Both use
the same :class:`RetryPolicy`.

Jitter is *deterministic*: instead of ``random.random()`` it draws from
a named stream derived from the run's RNG key
(:func:`repro.rng.rng_from_key`), so two runs of the same seed back off
by exactly the same amounts and the retry schedule never perturbs the
samples.  The policy is a frozen dataclass and pickles cheaply, which is
how it travels to worker processes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.rng import rng_from_key

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, how long to wait, when to give up.

    ``deadline`` is a per-unit wall-clock budget in seconds: retries
    stop (and, in the parallel runtime, a running chunk is killed) once
    it is exhausted.  ``None`` means no time limit.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")

    def delay(self, attempt: int, jitter: float = 1.0) -> float:
        """Seconds to sleep after failed attempt number ``attempt``."""
        raw = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        return raw * jitter

    def chunk_deadline(self, size: int) -> float | None:
        """The wall-clock budget for a chunk of ``size`` contexts."""
        if self.deadline is None:
            return None
        return self.deadline * max(1, size)


def deterministic_jitter(key: str, stream: str, attempt: int) -> float:
    """A jitter factor in ``[0.5, 1.0)`` that depends only on its name.

    Same ``(key, stream, attempt)`` → same factor, on any process or
    platform; distinct streams decorrelate so a thundering herd of
    retrying chunks spreads out.
    """
    rng = rng_from_key(key, "retry-jitter", stream, str(attempt))
    return 0.5 + rng.random() / 2


def run_with_retry(
    fn: Callable[[int], T],
    policy: RetryPolicy,
    *,
    jitter_key: str = "",
    stream: str = "",
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Call ``fn(attempt)`` until it succeeds or the policy is spent.

    ``fn`` receives the 1-based attempt number (fault-injection hooks
    are attempt-aware).  Only :class:`Exception` is retried —
    ``KeyboardInterrupt``/``SystemExit`` always propagate so Ctrl-C
    still lands a final checkpoint.  The last error is re-raised when
    attempts or the deadline run out.

    The deadline bounds the backoff pause too: a pause never exceeds
    the remaining budget, and when the pause would consume everything
    that remains the last error is re-raised instead — the function
    never sleeps past the deadline and never launches an attempt after
    it expired.
    """
    started = clock()
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn(attempt)
        except Exception as error:
            if attempt >= policy.max_attempts:
                raise
            factor = (
                deterministic_jitter(jitter_key, stream, attempt)
                if jitter_key
                else 1.0
            )
            pause = policy.delay(attempt, factor)
            if policy.deadline is not None:
                remaining = policy.deadline - (clock() - started)
                # Backing off for ``pause`` would leave nothing of the
                # budget for the attempt itself: give up now rather than
                # sleep past the deadline and retry after expiry.
                if remaining <= 0 or pause >= remaining:
                    raise
            if on_retry is not None:
                on_retry(attempt, error)
            if pause > 0:
                sleep(pause)
