"""FEVEROUS score: joint retrieval + verdict metric.

The paper reports label accuracy on *gold* evidence and the FEVEROUS
score with the original paper's trained retriever.  We pair the verdict
model with a :class:`SimulatedRetriever` — a lexical-overlap cell/
sentence ranker standing in for the dense retriever — so the score
retains its defining property: it is much lower than label accuracy
because a prediction only counts when the retrieved evidence covers the
gold evidence *and* the verdict is right.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.features import tokenize
from repro.pipelines.samples import EvidenceType, ReasoningSample
from repro.sampling.labeler import ClaimLabel


@dataclass(frozen=True)
class SimulatedRetriever:
    """Ranks table cells by lexical overlap with the claim.

    ``max_cells`` caps the retrieved evidence set, mirroring FEVEROUS'
    five-cell budget; text evidence is retrieved as whole sentences by
    the same overlap scoring.
    """

    max_cells: int = 5
    max_sentences: int = 2

    def retrieve_cells(
        self, sample: ReasoningSample
    ) -> frozenset[tuple[int, str]]:
        claim_tokens = set(tokenize(sample.sentence))
        table = sample.table
        scored: list[tuple[float, tuple[int, str]]] = []
        for row_index in range(table.n_rows):
            row_tokens = set(
                tokenize(" ".join(cell.raw for cell in table.rows[row_index]))
            )
            row_score = len(claim_tokens & row_tokens)
            for column in table.column_names:
                cell = table.cell(row_index, column)
                if cell.is_null:
                    continue
                cell_tokens = set(tokenize(cell.raw)) | set(tokenize(column))
                score = 2.0 * len(claim_tokens & cell_tokens) + 0.5 * row_score
                if score > 0:
                    scored.append((score, (row_index, column)))
        scored.sort(key=lambda pair: -pair[0])
        return frozenset(cell for _, cell in scored[: self.max_cells])

    def retrieves_text(self, sample: ReasoningSample) -> bool:
        """Whether the top-ranked sentences cover the claim's text need."""
        if not sample.context.has_text:
            return False
        claim_tokens = set(tokenize(sample.sentence))
        scored = sorted(
            sample.context.sentences,
            key=lambda sentence: -len(claim_tokens & set(tokenize(sentence))),
        )
        top = scored[: self.max_sentences]
        best_overlap = max(
            (len(claim_tokens & set(tokenize(sentence))) for sentence in top),
            default=0,
        )
        return best_overlap >= 3


def feverous_score(
    samples: list[ReasoningSample],
    predictions: list[ClaimLabel],
    retriever: SimulatedRetriever | None = None,
) -> float:
    """The strict FEVEROUS score in [0, 100].

    A sample scores iff (a) the predicted label is correct and (b) the
    retrieved evidence covers the gold evidence: every gold cell is in
    the retrieved cell set, and text-evidence claims additionally need a
    sufficiently overlapping retrieved sentence.
    """
    if len(samples) != len(predictions):
        raise ValueError("samples and predictions must align")
    if not samples:
        return 0.0
    retriever = retriever or SimulatedRetriever()
    hits = 0
    for sample, predicted in zip(samples, predictions):
        if sample.label != predicted:
            continue
        retrieved = retriever.retrieve_cells(sample)
        if sample.evidence_cells and not sample.evidence_cells <= retrieved:
            continue
        if sample.evidence_type in (EvidenceType.TEXT, EvidenceType.TABLE_TEXT):
            if not retriever.retrieves_text(sample):
                continue
        hits += 1
    return 100.0 * hits / len(samples)
