"""Diversity statistics for synthetic corpora.

The paper argues UCTR generates "diverse and human-like training
samples with complex logic" while MQA-QG "can only cover a small
fraction of reasoning types".  These statistics quantify that claim:
lexical diversity (distinct n-grams), structural diversity (distinct
program patterns), and reasoning-category coverage.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.models.features import tokenize
from repro.pipelines.samples import ReasoningSample


@dataclass(frozen=True)
class DiversityReport:
    """Diversity measurements over one sample corpus."""

    n_samples: int
    distinct_1: float  # distinct unigrams / total unigrams
    distinct_2: float  # distinct bigrams / total bigrams
    type_token_ratio: float
    n_categories: int
    category_entropy: float
    n_patterns: int
    mean_evidence_cells: float

    def as_row(self) -> dict[str, object]:
        return {
            "Samples": self.n_samples,
            "Distinct-1": round(self.distinct_1, 3),
            "Distinct-2": round(self.distinct_2, 3),
            "Categories": self.n_categories,
            "Category entropy": round(self.category_entropy, 2),
            "Patterns": self.n_patterns,
            "Evidence cells/sample": round(self.mean_evidence_cells, 2),
        }


def diversity_report(samples: list[ReasoningSample]) -> DiversityReport:
    """Compute diversity statistics for a corpus."""
    import math

    unigrams: Counter = Counter()
    bigrams: Counter = Counter()
    categories: Counter = Counter()
    patterns: set[str] = set()
    evidence_sizes: list[int] = []
    for sample in samples:
        tokens = tokenize(sample.sentence)
        unigrams.update(tokens)
        bigrams.update(zip(tokens, tokens[1:]))
        category = sample.provenance.get("category", "unknown")
        categories[category] += 1
        pattern = sample.provenance.get("pattern")
        if pattern:
            patterns.add(pattern)
        evidence_sizes.append(len(sample.evidence_cells))
    total_unigrams = sum(unigrams.values()) or 1
    total_bigrams = sum(bigrams.values()) or 1
    total_categories = sum(categories.values()) or 1
    entropy = -sum(
        (count / total_categories) * math.log2(count / total_categories)
        for count in categories.values()
    )
    return DiversityReport(
        n_samples=len(samples),
        distinct_1=len(unigrams) / total_unigrams,
        distinct_2=len(bigrams) / total_bigrams,
        type_token_ratio=len(unigrams) / total_unigrams,
        n_categories=len(categories),
        category_entropy=entropy,
        n_patterns=len(patterns),
        mean_evidence_cells=(
            sum(evidence_sizes) / len(evidence_sizes) if evidence_sizes else 0.0
        ),
    )
