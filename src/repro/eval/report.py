"""Plain-text rendering of result tables (the benchmark harness output)."""

from __future__ import annotations

from typing import Mapping, Sequence


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Mapping[str, object]],
) -> str:
    """Render rows as a fixed-width table, paper style."""
    widths = {column: len(column) for column in columns}
    rendered_rows: list[dict[str, str]] = []
    for row in rows:
        rendered: dict[str, str] = {}
        for column in columns:
            value = row.get(column, "")
            text = _fmt(value)
            rendered[column] = text
            widths[column] = max(widths[column], len(text))
        rendered_rows.append(rendered)
    lines = [title]
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for rendered in rendered_rows:
        lines.append(
            " | ".join(rendered[column].ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def em_f1(em: float, f1: float) -> str:
    """Render the paper's "EM / F1" cell format."""
    return f"{em:.1f} / {f1:.1f}"
